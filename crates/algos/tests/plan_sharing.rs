//! Structural plan-sharing properties of `tcu_algos::plan_memo`.
//!
//! The memo's contract (ISSUE 8): two builders that record the *same
//! structure* — differing only in buffer names and/or any
//! dependency-respecting recording order — produce equal shape-hashes
//! and converge on **one** memo entry (same `Rc`), while a dimension or
//! region change must miss and plan its own schedule. The positive
//! cases here use fully independent op streams (disjoint output
//! rectangles, reads from unwritten inputs), for which *every*
//! permutation of the recording is dependency-respecting.
#![cfg(feature = "sched")]

use std::rc::Rc;

use proptest::prelude::*;
use tcu_algos::plan_memo::{plan_cache_stats, plan_cached};
use tcu_core::{ModelTensorUnit, TensorOp};
use tcu_sched::{BufferId, OpGraph, OperandRef};

const DIM: usize = 32;
const S: usize = 8;
const Q: usize = DIM / S;

/// Record the `Q × Q` independent block products `C[j,k] = A[j,k] ·
/// B[k,j]` with the given buffer `names`, starting at position `rot` of
/// the (j, k) enumeration and wrapping — a cyclic recording-order
/// shuffle that is always dependency-respecting because every output
/// rectangle is distinct and reads touch only unwritten inputs.
fn build(names: [&'static str; 3], rot: usize, shrink: usize) -> (OpGraph, Vec<BufferId>) {
    let mut g = OpGraph::new();
    let a = g.buffer(names[0], DIM, DIM);
    let b = g.buffer(names[1], DIM, DIM);
    let c = g.buffer(names[2], DIM, DIM - shrink);
    let total = Q * Q;
    for i in 0..total {
        let idx = (i + rot) % total;
        let (j, k) = (idx / Q, idx % Q);
        g.record(
            TensorOp::padded(S, S, S),
            OperandRef::new(a, j * S, k * S, S, S),
            OperandRef::new(b, k * S, j * S, S, S),
            OperandRef::new(c, j * S, (k * S).min(DIM - shrink - S), S, S),
        );
    }
    (g, vec![a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Name- and order-differing recordings of one structure: equal
    // shape-hashes, one shared memo entry, zero extra planning.
    #[test]
    fn renamed_reordered_builders_share_one_memo_entry(seed in 0u64..10_000) {
        let rot = (seed as usize % (Q * Q - 1)) + 1;
        let (g1, _) = build(["A", "B", "C"], 0, 0);
        let (g2, _) = build(["Left", "Right", "Out"], rot, 0);
        prop_assert_eq!(g1.shape_hash(), g2.shape_hash());
        prop_assert!(g1.shape_eq(&g2));

        // Distinct parameter keys (the latency differs per seed) force
        // the parameter level to miss, so sharing must come from the
        // structural level.
        let unit = ModelTensorUnit::new(S * S, seed);
        let before = plan_cache_stats();
        let first = plan_cached("share-prop-a", [DIM, S, 0, 0], &unit, 1, || {
            build(["A", "B", "C"], 0, 0)
        });
        let second = plan_cached("share-prop-b", [DIM, S, rot, 0], &unit, 1, || {
            build(["Left", "Right", "Out"], rot, 0)
        });
        let after = plan_cache_stats();
        prop_assert!(
            Rc::ptr_eq(&first, &second),
            "shape-equal builders must share one entry"
        );
        prop_assert!(
            after.misses - before.misses <= 1,
            "at most the first builder's plan is computed"
        );

        // Negative: a buffer-dimension change misses the structural
        // level and plans its own schedule.
        let shrunk = plan_cached("share-prop-c", [DIM, S, rot, 1], &unit, 1, || {
            build(["Left", "Right", "Out"], rot, S)
        });
        prop_assert!(!Rc::ptr_eq(&first, &shrunk), "dim change must miss");

        // Negative: a region change (every op funneled into the last
        // admissible column) misses too.
        let (g_moved, _) = build(["A", "B", "C"], 0, S);
        prop_assert_ne!(g1.shape_hash(), g_moved.shape_hash());
        prop_assert!(!g1.shape_eq(&g_moved));
    }
}
