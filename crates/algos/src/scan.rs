//! Reduction and prefix sums on the tensor unit — the algorithms of
//! Dakkak, Li, Xiong, Gelado & Hwu, *Accelerating reduction and scan
//! using tensor core units* (ICS 2019), which the paper cites as \[9\] and
//! credits with coining the "TCU" terminology. Implementing them in the
//! (m, ℓ)-TCU model shows how the model prices the original TCU
//! algorithms that motivated it.
//!
//! * **Reduction**: arrange the `n` inputs as an `n/√m × √m` matrix `X`;
//!   `X · 1⃗` (as the first column of a `√m × √m` ones-column matrix)
//!   yields row sums in one tall invocation; recurse on the `n/√m` row
//!   sums. Time `O(n + ℓ·log_m n)`.
//! * **Prefix scan**: `X·U + L·(row-sums-scan broadcast)` where `U` is
//!   upper-triangular ones — one tall multiplication computes every
//!   within-row prefix, a recursive scan over the `n/√m` row sums
//!   supplies the offsets. Time `O(n + ℓ·log_m n)`.

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Matrix, Scalar};

/// Sum of a sequence via tensor-unit reduction.
#[must_use]
pub fn reduce<T: Scalar, U: TensorUnit, E: Executor>(mach: &mut TcuMachine<U, E>, xs: &[T]) -> T {
    let s = mach.sqrt_m();
    if xs.is_empty() {
        return T::ZERO;
    }
    if xs.len() <= s {
        // Small tail: CPU sum.
        mach.charge(xs.len() as u64);
        return xs.iter().fold(T::ZERO, |acc, &x| acc.add(x));
    }
    // X: ⌈n/√m⌉ × √m (zero-padded); ones-column matrix reduces each row.
    let rows = xs.len().div_ceil(s);
    let x = Matrix::from_fn(rows, s, |i, j| {
        xs.get(i * s + j).copied().unwrap_or(T::ZERO)
    });
    let ones_col = Matrix::from_fn(s, s, |_, j| if j == 0 { T::ONE } else { T::ZERO });
    let prod = mach.tensor_mul_padded_view(x.view(), ones_col.view());
    let row_sums: Vec<T> = (0..rows).map(|i| prod[(i, 0)]).collect();
    reduce(mach, &row_sums)
}

/// Inclusive prefix sums via tensor-unit scan.
#[must_use]
pub fn prefix_sum<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    xs: &[T],
) -> Vec<T> {
    let s = mach.sqrt_m();
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= s {
        mach.charge(n as u64);
        let mut out = Vec::with_capacity(n);
        let mut acc = T::ZERO;
        for &x in xs {
            acc = acc.add(x);
            out.push(acc);
        }
        return out;
    }
    // Row-major layout X : rows × √m; X·U gives within-row prefixes
    // (U upper-triangular ones: prod[i][j] = Σ_{t ≤ j} X[i][t]).
    let rows = n.div_ceil(s);
    let x = Matrix::from_fn(rows, s, |i, j| {
        xs.get(i * s + j).copied().unwrap_or(T::ZERO)
    });
    let upper = Matrix::from_fn(s, s, |i, j| if i <= j { T::ONE } else { T::ZERO });
    let within = mach.tensor_mul_padded_view(x.view(), upper.view());

    // Recursive scan over the row totals (last column) gives offsets.
    let totals: Vec<T> = (0..rows).map(|i| within[(i, s - 1)]).collect();
    let offsets = prefix_sum(mach, &totals);

    // Broadcast: out[i·√m + j] = within[i][j] + offset[i−1]. One add each.
    mach.charge(n as u64);
    (0..n)
        .map(|idx| {
            let (i, j) = (idx / s, idx % s);
            let base = if i == 0 { T::ZERO } else { offsets[i - 1] };
            within[(i, j)].add(base)
        })
        .collect()
}

/// Simulated-time charge of the CPU baselines (1 add per element).
#[must_use]
pub fn host_scan_time(n: u64) -> u64 {
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::TcuMachine;
    use tcu_linalg::Fp61;

    #[test]
    fn reduce_matches_cpu_sum() {
        let mut mach = TcuMachine::model(16, 5);
        for n in [0usize, 1, 3, 4, 5, 16, 17, 64, 1000] {
            let xs: Vec<i64> = (0..n as i64).map(|i| (i * 7 % 23) - 11).collect();
            let want: i64 = xs.iter().sum();
            assert_eq!(reduce(&mut mach, &xs), want, "n = {n}");
        }
    }

    #[test]
    fn prefix_sum_matches_cpu_scan() {
        let mut mach = TcuMachine::model(16, 5);
        for n in [0usize, 1, 4, 5, 16, 17, 63, 64, 65, 500] {
            let xs: Vec<i64> = (0..n as i64).map(|i| (i * 13 % 17) - 8).collect();
            let mut want = Vec::new();
            let mut acc = 0i64;
            for &x in &xs {
                acc += x;
                want.push(acc);
            }
            assert_eq!(prefix_sum(&mut mach, &xs), want, "n = {n}");
        }
    }

    #[test]
    fn scan_is_exact_over_fp() {
        let mut mach = TcuMachine::model(64, 0);
        let xs: Vec<Fp61> = (0..300).map(|i| Fp61::new(i * 0x9e37_79b9)).collect();
        let got = prefix_sum(&mut mach, &xs);
        let mut acc = Fp61::ZERO;
        for (i, &x) in xs.iter().enumerate() {
            acc = acc.add(x);
            assert_eq!(got[i], acc, "position {i}");
        }
    }

    #[test]
    fn latency_is_paid_per_level_not_per_element() {
        // n = m^2 elements: level 1 scans n/√m rows, level 2 scans
        // n/m ≤ √m... tensor calls = O(log_m n), not O(n/m).
        let (n, m, l) = (65536usize, 256usize, 1_000_000u64);
        let xs = vec![1i64; n];
        let mut mach = TcuMachine::model(m, l);
        let out = prefix_sum(&mut mach, &xs);
        assert_eq!(out[n - 1], n as i64);
        assert!(
            mach.stats().tensor_calls <= 3,
            "calls = {}",
            mach.stats().tensor_calls
        );
        // Stream term is Θ(n): time ≈ n·(1 + 1/√m·√m) + levels·ℓ.
        assert!(mach.time() < 6 * n as u64 + 4 * l);
    }

    #[test]
    fn reduce_on_weak_machine_still_correct() {
        let mut weak = TcuMachine::weak(16, 3);
        let xs: Vec<i64> = (0..100).collect();
        assert_eq!(reduce(&mut weak, &xs), 4950);
    }
}
