//! Output-sensitive sparse matrix multiplication on the TCU — §4.1,
//! Theorem 3 (after Jacob & Stöckel).
//!
//! The balanced-output case: compress the rows of `A` and the columns of
//! `B` down to the sets that can actually contribute to `C = A·B` —
//! non-empty rows of `A` (≈ `√Z` of them in balanced instances) and
//! non-empty columns of `B` — re-index ("a compression algorithm able to
//! build a re-ordering of the matrix A", §4.1), run ONE dense rectangular
//! product `Â·B̂` of shape `√Z × √n × √Z` through the Strassen-like TCU
//! kernel of Theorem 1, and scatter the non-zeros back. Time
//! `O(√(n/Z)·(Z/m)^{ω₀}·(m + ℓ) + I)`.
//!
//! **Scope note (documented substitution).** Jacob & Stöckel hash rows
//! into `Θ(√Z)` buckets and recover collisions with multiple rounds; this
//! reproduction uses the *deterministic rank compression* that is exact
//! whenever the non-empty rows of `A` (resp. columns of `B`) number
//! `O(√Z)` — which is precisely the balanced-output regime Theorem 3
//! addresses, and what [`crate::workloads::random_sparse_pair`] generates.
//! Inputs outside that regime are still multiplied correctly; they simply
//! degrade toward the dense bound (the compressed dimensions grow).

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Matrix, Scalar};

/// Compressed sparse row matrix over a square `dim × dim` index space.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    dim: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build from a dense matrix, dropping exact zeros.
    ///
    /// # Panics
    /// Panics unless `dense` is square.
    #[must_use]
    pub fn from_dense(dense: &Matrix<T>) -> Self {
        assert!(dense.is_square(), "CSR substrate models square operands");
        let dim = dense.rows();
        let mut row_ptr = Vec::with_capacity(dim + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for i in 0..dim {
            for j in 0..dim {
                let v = dense[(i, j)];
                if v != T::ZERO {
                    col_idx.push(j);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            dim,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build from (row, col, value) triplets (later duplicates overwrite
    /// earlier ones).
    ///
    /// # Panics
    /// Panics if an index is out of range.
    #[must_use]
    pub fn from_triplets(dim: usize, triplets: &[(usize, usize, T)]) -> Self {
        let mut dense = Matrix::<T>::zeros(dim, dim);
        for &(i, j, v) in triplets {
            assert!(i < dim && j < dim, "triplet out of range");
            dense[(i, j)] = v;
        }
        Self::from_dense(&dense)
    }

    /// Densify.
    #[must_use]
    pub fn to_dense(&self) -> Matrix<T> {
        let mut out = Matrix::<T>::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[(i, self.col_idx[p])] = self.vals[p];
            }
        }
        out
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterate row `i` as `(col, value)` pairs.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        (self.row_ptr[i]..self.row_ptr[i + 1]).map(move |p| (self.col_idx[p], self.vals[p]))
    }

    /// Number of entries with `|value| > tol` (for `f64` matrices coming
    /// out of Strassen-based paths, where exact zeros acquire epsilon
    /// residues from the extra additions/subtractions).
    #[must_use]
    pub fn nnz_above(&self, tol: f64) -> usize
    where
        T: Into<f64> + Copy,
    {
        self.vals
            .iter()
            .filter(|&&v| Into::<f64>::into(v).abs() > tol)
            .count()
    }

    /// Indices of rows holding at least one non-zero.
    #[must_use]
    pub fn nonempty_rows(&self) -> Vec<usize> {
        (0..self.dim)
            .filter(|&i| self.row_ptr[i] < self.row_ptr[i + 1])
            .collect()
    }

    /// Indices of columns holding at least one non-zero.
    #[must_use]
    pub fn nonempty_cols(&self) -> Vec<usize> {
        let mut seen = vec![false; self.dim];
        for &c in &self.col_idx {
            seen[c] = true;
        }
        (0..self.dim).filter(|&j| seen[j]).collect()
    }
}

/// Theorem 3: sparse × sparse through compression plus one dense
/// rectangular TCU product. Returns the product in CSR form.
///
/// # Panics
/// Panics on dimension mismatch.
#[must_use]
pub fn multiply_tcu<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> CsrMatrix<T> {
    assert_eq!(a.dim, b.dim, "dimension mismatch");
    let d = a.dim;
    let input_nnz = (a.nnz() + b.nnz()) as u64;

    // Scan for the compression maps: O(I).
    mach.charge(input_nnz);
    let rows = a.nonempty_rows();
    let cols = b.nonempty_cols();
    let (ra, cb) = (rows.len(), cols.len());
    if ra == 0 || cb == 0 {
        return CsrMatrix::from_triplets(d, &[]);
    }

    // Scatter into the compressed dense operands: Â (ra × d) keeps only
    // contributing rows; B̂ (d × cb) only contributing columns. O(I).
    mach.charge(input_nnz);
    let mut a_hat = Matrix::<T>::zeros(ra, d);
    for (ci, &i) in rows.iter().enumerate() {
        for (j, v) in a.row_iter(i) {
            a_hat[(ci, j)] = v;
        }
    }
    let col_rank: std::collections::HashMap<usize, usize> =
        cols.iter().enumerate().map(|(r, &c)| (c, r)).collect();
    let mut b_hat = Matrix::<T>::zeros(d, cb);
    for i in 0..d {
        for (j, v) in b.row_iter(i) {
            if let Some(&cj) = col_rank.get(&j) {
                b_hat[(i, cj)] = v;
            }
        }
    }

    // Dense √Z × √n × √Z product through the Strassen-like kernel: split
    // the inner dimension into square chunks of the (power-of-two padded)
    // compressed size, Strassen each, and accumulate.
    let zdim = ra.max(cb).next_power_of_two();
    let chunks = d.div_ceil(zdim);
    let mut acc = Matrix::<T>::zeros(zdim, zdim);
    for c in 0..chunks {
        let w = zdim.min(d - c * zdim);
        let a_blk = a_hat.block(0, c * zdim, ra, w).into_padded(zdim, zdim);
        let b_blk = b_hat.block(c * zdim, 0, w, cb).into_padded(zdim, zdim);
        let p = crate::strassen::multiply_strassen(mach, &a_blk, &b_blk);
        mach.charge((zdim * zdim) as u64);
        acc.add_assign(&p);
    }

    // Scatter non-zeros back through the rank maps: O(ra·cb) = O(Z).
    mach.charge((ra * cb) as u64);
    let mut triplets = Vec::new();
    for (ci, &i) in rows.iter().enumerate() {
        for (cj, &j) in cols.iter().enumerate() {
            let v = acc[(ci, cj)];
            if v != T::ZERO {
                triplets.push((i, j, v));
            }
        }
    }
    CsrMatrix::from_triplets(d, &triplets)
}

/// Host row-wise SpGEMM — oracle and the `O(flops)` RAM baseline.
/// Returns the product and the number of multiply-adds performed.
#[must_use]
pub fn multiply_host<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> (CsrMatrix<T>, u64) {
    assert_eq!(a.dim, b.dim, "dimension mismatch");
    let d = a.dim;
    let mut flops = 0u64;
    let mut triplets = Vec::new();
    let mut acc = vec![T::ZERO; d];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..d {
        for (k, av) in a.row_iter(i) {
            for (j, bv) in b.row_iter(k) {
                if acc[j] == T::ZERO {
                    touched.push(j);
                }
                acc[j] = acc[j].add(av.mul(bv));
                flops += 1;
            }
        }
        for &j in &touched {
            if acc[j] != T::ZERO {
                triplets.push((i, j, acc[j]));
            }
            acc[j] = T::ZERO;
        }
        touched.clear();
    }
    (CsrMatrix::from_triplets(d, &triplets), flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_sparse_pair;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;
    use tcu_linalg::ops::{matmul_naive, max_abs_diff};

    #[test]
    fn csr_roundtrip() {
        let dense = Matrix::from_rows(&[
            vec![0.0f64, 1.5, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![2.0, 0.0, -3.0],
        ]);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.nonempty_rows(), vec![0, 2]);
        assert_eq!(csr.nonempty_cols(), vec![0, 1, 2]);
    }

    #[test]
    fn triplets_and_row_iter() {
        let csr = CsrMatrix::from_triplets(4, &[(1, 2, 5i64), (3, 0, -1), (1, 0, 2)]);
        assert_eq!(csr.nnz(), 3);
        let row1: Vec<_> = csr.row_iter(1).collect();
        assert_eq!(row1, vec![(0, 2), (2, 5)]);
    }

    #[test]
    fn tcu_matches_host_and_dense_oracle() {
        let mut rng = StdRng::seed_from_u64(1);
        for (d, ra, cb, per) in [
            (16usize, 3usize, 3usize, 4usize),
            (32, 4, 6, 5),
            (64, 8, 8, 10),
            (32, 1, 1, 1),
        ] {
            let (da, db) = random_sparse_pair(d, ra, cb, per, &mut rng);
            let a = CsrMatrix::from_dense(&da);
            let b = CsrMatrix::from_dense(&db);
            let mut mach = TcuMachine::model(16, 11);
            let got = multiply_tcu(&mut mach, &a, &b).to_dense();
            let (host, _) = multiply_host(&a, &b);
            assert!(
                max_abs_diff(&got, &host.to_dense()) < 1e-9,
                "host mismatch d={d}"
            );
            assert!(
                max_abs_diff(&got, &matmul_naive(&da, &db)) < 1e-9,
                "dense mismatch d={d}"
            );
        }
    }

    #[test]
    fn empty_operands_short_circuit() {
        let zero = CsrMatrix::<f64>::from_triplets(8, &[]);
        let some = CsrMatrix::from_triplets(8, &[(0, 0, 1.0)]);
        let mut mach = TcuMachine::model(16, 5);
        assert_eq!(multiply_tcu(&mut mach, &zero, &some).nnz(), 0);
        assert_eq!(multiply_tcu(&mut mach, &some, &zero).nnz(), 0);
        assert_eq!(
            mach.stats().tensor_calls,
            0,
            "no tensor work for empty products"
        );
    }

    #[test]
    fn integer_exactness() {
        let a = CsrMatrix::from_triplets(8, &[(0, 3, 2i64), (5, 1, -4), (5, 3, 7)]);
        let b = CsrMatrix::from_triplets(8, &[(3, 6, 3), (1, 6, 5)]);
        let mut mach = TcuMachine::model(4, 0);
        let c = multiply_tcu(&mut mach, &a, &b);
        // c[0,6] = 2·3 = 6; c[5,6] = −4·5 + 7·3 = 1.
        assert_eq!(c.to_dense()[(0, 6)], 6);
        assert_eq!(c.to_dense()[(5, 6)], 1);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn time_scales_with_output_not_input_dimension() {
        // Same nnz structure embedded in a 4× larger index space: the
        // compressed product grows only with the inner-dimension scan,
        // not with d² — the point of output sensitivity.
        let mut rng = StdRng::seed_from_u64(2);
        let (small_d, big_d) = (32usize, 128usize);
        let (da, db) = random_sparse_pair(small_d, 4, 4, 6, &mut rng);
        let (biga, bigb) = random_sparse_pair(big_d, 4, 4, 6, &mut rng);

        let mut mach_small = TcuMachine::model(16, 10);
        let _ = multiply_tcu(
            &mut mach_small,
            &CsrMatrix::from_dense(&da),
            &CsrMatrix::from_dense(&db),
        );
        let mut mach_big = TcuMachine::model(16, 10);
        let _ = multiply_tcu(
            &mut mach_big,
            &CsrMatrix::from_dense(&biga),
            &CsrMatrix::from_dense(&bigb),
        );
        // 4× the inner dimension costs at most ~4× the time (linear in d,
        // not quadratic): allow generous slack.
        assert!(mach_big.time() < mach_small.time() * 8);

        // And a dense d × d product at the bigger size would cost far more.
        let dense_cost = crate::dense::multiply_time(big_d as u64, 4, 10);
        assert!(
            mach_big.time() < dense_cost / 2,
            "{} vs {}",
            mach_big.time(),
            dense_cost
        );
    }
}
