//! Strassen-like multiplication on the TCU — §4.1, Theorem 1.
//!
//! A Strassen-like algorithm with base-case parameters `(n₀, p₀)` runs the
//! recursion until a subproblem *fits the tensor unit* (`n ≤ m`, i.e.
//! dimension `≤ √m`), where the product costs one `O(m + ℓ)` invocation.
//! Theorem 1: total time `O((n/m)^{ω₀} (m + ℓ))` with `ω₀ = log_{n₀} p₀`.
//!
//! Two instances are provided, matching the paper's own discussion:
//!
//! * [`multiply_recursive`] — the standard eight-product recursion
//!   (`n₀ = 4, p₀ = 8`, `ω₀ = 3/2`), giving
//!   `O(n^{3/2}/m^{1/2} + (n/m)^{3/2} ℓ)`;
//! * [`multiply_strassen`] — Strassen's seven-product recursion
//!   (`n₀ = 4, p₀ = 7`, `ω₀ = log₄ 7 ≈ 1.4037`), giving
//!   `O(n^{1.4037}/m^{0.4037} + (n/m)^{1.4037} ℓ)`.
//!
//! The recursion threshold is exposed for the base-case ablation of
//! experiment E1 (the paper's choice `n ≤ m` is the sweet spot: stopping
//! earlier wastes the unit on sub-footprint tiles, stopping later wastes
//! CPU additions on products the unit could absorb).

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Matrix, MatrixView, Scalar};

/// Standard recursive multiplication (8 products per level), tensor-unit
/// base case at dimension `≤ √m`.
///
/// # Panics
/// Panics unless operands are square, of equal power-of-two dimension.
#[must_use]
pub fn multiply_recursive<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let base = mach.sqrt_m();
    multiply_recursive_with_base(mach, a, b, base)
}

/// [`multiply_recursive`] with an explicit base-case dimension (ablation
/// hook; `base_dim ≥ √m` stops early and finishes each base product with
/// the blocked Theorem 2 routine, `base_dim ≤ √m` behaves like `√m`).
///
/// # Panics
/// Panics unless operands are square, of equal power-of-two dimension.
#[must_use]
pub fn multiply_recursive_with_base<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    base_dim: usize,
) -> Matrix<T> {
    check_square_pow2(a.view(), b.view());
    rec_standard(mach, a.view(), b.view(), base_dim.max(1))
}

/// Strassen multiplication (7 products per level), tensor-unit base case
/// at dimension `≤ √m` (Theorem 1 with `p₀ = 7`).
///
/// # Panics
/// Panics unless operands are square, of equal power-of-two dimension.
#[must_use]
pub fn multiply_strassen<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let base = mach.sqrt_m();
    multiply_strassen_with_base(mach, a, b, base)
}

/// [`multiply_strassen`] with an explicit base-case dimension.
///
/// # Panics
/// Panics unless operands are square, of equal power-of-two dimension.
#[must_use]
pub fn multiply_strassen_with_base<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    base_dim: usize,
) -> Matrix<T> {
    check_square_pow2(a.view(), b.view());
    rec_strassen(mach, a.view(), b.view(), base_dim.max(1))
}

/// Deferred fast path (feature `sched`): the standard eight-product
/// recursion with every base product recorded into one `tcu-sched` op
/// graph before anything executes. The recursion only ever multiplies
/// sub-blocks of the *original* operands (all combining additions come
/// after the products), so the whole product tree is a single batch of
/// independent ops over regions of `A` and `B` — one wave the scheduler
/// may reorder, coalesce, and strip-cache at will. Base products are
/// emitted grouped by left-operand block with column-adjacent weight
/// blocks consecutive, which is exactly the shape width-merging fuses:
/// with a base dimension below `√m` (see
/// [`multiply_recursive_scheduled_with_base`]) pairs of products
/// collapse into one invocation. Results are bit-identical to
/// [`multiply_recursive`] for every scalar type (the leaf products
/// write disjoint slots, so merging fuses truly independent ops and no
/// sum is reassociated), and at base `√m` the simulated `Stats` totals
/// match the eager recursion exactly.
///
/// # Panics
/// Panics unless operands are square, of equal power-of-two dimension.
#[cfg(feature = "sched")]
#[must_use]
pub fn multiply_recursive_scheduled<T: Scalar, U: TensorUnit + 'static, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let base = mach.sqrt_m();
    multiply_recursive_scheduled_with_base(mach, a, b, base)
}

/// Largest leaf-product count for which the scheduled recursion's graph
/// and plan are memoized across calls (see [`crate::plan_memo`]).
///
/// Below this bound the record + coalesce + plan pipeline dominates the
/// actual products on repeated small multiplies (the `strassen d=64`
/// wall cliff the benchmarks exposed), so the plan is cached and
/// replayed; above it, planning is a vanishing fraction of the work and
/// the memory for a retained graph would be wasted.
#[cfg(feature = "sched")]
pub const PLAN_MEMO_MAX_LEAVES: usize = 4096;

/// [`multiply_recursive_scheduled`] with an explicit base-case
/// dimension `≤ √m` (the coalescing ablation hook).
///
/// # Panics
/// Panics unless operands are square of equal power-of-two dimension
/// and `1 ≤ base_dim ≤ √m`.
#[cfg(feature = "sched")]
#[must_use]
pub fn multiply_recursive_scheduled_with_base<T: Scalar, U: TensorUnit + 'static, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    base_dim: usize,
) -> Matrix<T> {
    try_multiply_recursive_scheduled_with_base(mach, a, b, base_dim)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`multiply_recursive_scheduled_with_base`]:
/// execution faults surface as [`tcu_core::TcuError`] instead of
/// panicking. Shape preconditions still panic — they are caller bugs,
/// not runtime faults.
///
/// # Errors
/// Propagates any [`tcu_core::TcuError`] from [`tcu_sched::Schedule::try_run`].
#[cfg(feature = "sched")]
pub fn try_multiply_recursive_scheduled_with_base<
    T: Scalar,
    U: TensorUnit + 'static,
    E: Executor,
>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    base_dim: usize,
) -> Result<Matrix<T>, tcu_core::TcuError> {
    use crate::plan_memo::{plan_cached, PlannedGraph};
    use std::rc::Rc;
    use tcu_sched::{ExecEnv, OpGraph, Scheduler};

    check_square_pow2(a.view(), b.view());
    let d = a.rows();
    let s = mach.sqrt_m();
    assert!(
        (1..=s).contains(&base_dim),
        "scheduled base dimension must satisfy 1 ≤ base ≤ √m = {s}"
    );
    // Leaf tile side: halve until the tile fits the base case.
    let mut tile = d;
    while tile > base_dim {
        tile /= 2;
    }
    let leaves = {
        let mut n = 1usize;
        let mut t = d;
        while t > tile {
            n *= 8;
            t /= 2;
        }
        n
    };

    let build = || {
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let pb = g.buffer("P", tile, leaves * tile);
        let mut next = 0usize;
        record_products(&mut g, ab, bb, pb, 0, 0, 0, 0, d, tile, &mut next);
        debug_assert_eq!(next, leaves);
        (g, vec![ab, bb, pb])
    };
    // Small recursions pay more for planning than for the products, so
    // their plans are memoized; past the leaf bound the plan is a
    // vanishing cost and is rebuilt fresh.
    let planned = if leaves <= PLAN_MEMO_MAX_LEAVES {
        plan_cached("strassen8", [d, tile, 0, 0], mach.unit(), 1, build)
    } else {
        let (graph, bufs) = build();
        let plan = Scheduler::new().plan(&graph, mach.unit());
        Rc::new(PlannedGraph { graph, bufs, plan })
    };
    let (ab, bb, pb) = (planned.bufs[0], planned.bufs[1], planned.bufs[2]);

    let mut products = Matrix::<T>::zeros(tile, leaves * tile);
    let mut env = ExecEnv::new(&planned.graph);
    env.try_bind_input(ab, a.view())?;
    env.try_bind_input(bb, b.view())?;
    env.try_bind_output(pb, products.view_mut())?;
    planned.plan.try_run(mach, &mut env)?;

    let mut next = 0usize;
    Ok(combine_products(mach, &products, d, tile, &mut next))
}

/// Emit the recursion's base products in left-operand-major order:
/// for each `A` quadrant, its two weight quadrants are column- (or
/// row-) adjacent regions of the original `B`, so consecutive leaf
/// pairs share the left strip against adjacent weights — the width-
/// merge shape. `(ar, ac)` / `(br, bc)` anchor the current sub-blocks.
#[cfg(feature = "sched")]
#[allow(clippy::too_many_arguments)]
fn record_products(
    g: &mut tcu_sched::OpGraph,
    ab: tcu_sched::BufferId,
    bb: tcu_sched::BufferId,
    pb: tcu_sched::BufferId,
    ar: usize,
    ac: usize,
    br: usize,
    bc: usize,
    d: usize,
    tile: usize,
    next: &mut usize,
) {
    use tcu_sched::OperandRef;
    if d <= tile {
        let idx = *next;
        *next += 1;
        g.record(
            tcu_core::TensorOp::padded(tile, tile, tile),
            OperandRef::new(ab, ar, ac, tile, tile),
            OperandRef::new(bb, br, bc, tile, tile),
            OperandRef::new(pb, 0, idx * tile, tile, tile),
        );
        return;
    }
    let h = d / 2;
    // (a11, b11), (a11, b12): same left block, adjacent weight columns.
    let mut rec = |dar, dac, dbr, dbc| {
        record_products(
            g,
            ab,
            bb,
            pb,
            ar + dar * h,
            ac + dac * h,
            br + dbr * h,
            bc + dbc * h,
            h,
            tile,
            next,
        );
    };
    rec(0, 0, 0, 0); // a11·b11
    rec(0, 0, 0, 1); // a11·b12
    rec(0, 1, 1, 0); // a12·b21
    rec(0, 1, 1, 1); // a12·b22
    rec(1, 0, 0, 0); // a21·b11
    rec(1, 0, 0, 1); // a21·b12
    rec(1, 1, 1, 0); // a22·b21
    rec(1, 1, 1, 1); // a22·b22
}

/// Reassemble the product batch bottom-up, consuming leaves in the
/// emission order of [`record_products`] and billing the combining
/// additions exactly as the eager recursion does.
#[cfg(feature = "sched")]
fn combine_products<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    products: &Matrix<T>,
    d: usize,
    tile: usize,
    next: &mut usize,
) -> Matrix<T> {
    if d <= tile {
        let idx = *next;
        *next += 1;
        return products.block(0, idx * tile, tile, tile);
    }
    let h = d / 2;
    let m1 = combine_products(mach, products, h, tile, next); // a11·b11
    let m2 = combine_products(mach, products, h, tile, next); // a11·b12
    let m3 = combine_products(mach, products, h, tile, next); // a12·b21
    let m4 = combine_products(mach, products, h, tile, next); // a12·b22
    let m5 = combine_products(mach, products, h, tile, next); // a21·b11
    let m6 = combine_products(mach, products, h, tile, next); // a21·b12
    let m7 = combine_products(mach, products, h, tile, next); // a22·b21
    let m8 = combine_products(mach, products, h, tile, next); // a22·b22
    mach.charge(4 * (h * h) as u64);
    assemble(&m1.add(&m3), &m2.add(&m4), &m5.add(&m7), &m6.add(&m8))
}

fn check_square_pow2<T: Scalar>(a: MatrixView<'_, T>, b: MatrixView<'_, T>) {
    let d = a.rows();
    assert!(
        a.cols() == d && b.rows() == d && b.cols() == d,
        "operands must be d×d"
    );
    assert!(d.is_power_of_two(), "dimension must be a power of two");
}

/// Base product for a tile that fits the unit (dimension ≤ √m): one
/// (padded) invocation, cost `m + ℓ`.
fn base_mul<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
) -> Matrix<T> {
    mach.tensor_mul_padded_view(a, b)
}

/// Base product for an early-stopped recursion (tile still larger than
/// √m): the blocked Theorem 2 routine.
fn base_or_blocked<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
) -> Matrix<T> {
    if a.rows() <= mach.sqrt_m() {
        base_mul(mach, a, b)
    } else {
        crate::dense::multiply_view(mach, a, b)
    }
}

/// The four quadrants as zero-copy views — the recursion descends
/// through the original backing buffers without materializing a single
/// sub-block.
fn quadrants<T: Scalar>(x: MatrixView<'_, T>) -> [MatrixView<'_, T>; 4] {
    let h = x.rows() / 2;
    [
        x.subview(0, 0, h, h),
        x.subview(0, h, h, h),
        x.subview(h, 0, h, h),
        x.subview(h, h, h, h),
    ]
}

/// Element-wise combination of two views, materialized (the recursion's
/// combining terms are genuinely new values, so they must own storage).
fn combine_views<T: Scalar>(
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    f: impl Fn(T, T) -> T,
) -> Matrix<T> {
    debug_assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let mut out = Matrix::<T>::zeros(a.rows(), a.cols());
    for i in 0..a.rows() {
        let (ra, rb) = (a.row(i), b.row(i));
        for (o, (&x, &y)) in out.row_mut(i).iter_mut().zip(ra.iter().zip(rb)) {
            *o = f(x, y);
        }
    }
    out
}

/// `a + b` over views.
fn add_views<T: Scalar>(a: MatrixView<'_, T>, b: MatrixView<'_, T>) -> Matrix<T> {
    combine_views(a, b, T::add)
}

/// `a − b` over views.
fn sub_views<T: Scalar>(a: MatrixView<'_, T>, b: MatrixView<'_, T>) -> Matrix<T> {
    combine_views(a, b, T::sub)
}

fn assemble<T: Scalar>(
    c11: &Matrix<T>,
    c12: &Matrix<T>,
    c21: &Matrix<T>,
    c22: &Matrix<T>,
) -> Matrix<T> {
    let h = c11.rows();
    let mut c = Matrix::<T>::zeros(2 * h, 2 * h);
    c.set_block(0, 0, c11);
    c.set_block(0, h, c12);
    c.set_block(h, 0, c21);
    c.set_block(h, h, c22);
    c
}

fn rec_standard<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    base_dim: usize,
) -> Matrix<T> {
    let d = a.rows();
    if d <= base_dim {
        return base_or_blocked(mach, a, b);
    }
    let h = d / 2;
    let [a11, a12, a21, a22] = quadrants(a);
    let [b11, b12, b21, b22] = quadrants(b);

    // Eight recursive products, four Θ(h²) combining additions.
    let p1 = rec_standard(mach, a11, b11, base_dim);
    let p2 = rec_standard(mach, a12, b21, base_dim);
    let p3 = rec_standard(mach, a11, b12, base_dim);
    let p4 = rec_standard(mach, a12, b22, base_dim);
    let p5 = rec_standard(mach, a21, b11, base_dim);
    let p6 = rec_standard(mach, a22, b21, base_dim);
    let p7 = rec_standard(mach, a21, b12, base_dim);
    let p8 = rec_standard(mach, a22, b22, base_dim);
    mach.charge(4 * (h * h) as u64);
    assemble(&p1.add(&p2), &p3.add(&p4), &p5.add(&p6), &p7.add(&p8))
}

fn rec_strassen<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    base_dim: usize,
) -> Matrix<T> {
    let d = a.rows();
    if d <= base_dim {
        return base_or_blocked(mach, a, b);
    }
    let h = d / 2;
    let [a11, a12, a21, a22] = quadrants(a);
    let [b11, b12, b21, b22] = quadrants(b);

    // Ten pre-additions.
    mach.charge(10 * (h * h) as u64);
    let s1 = add_views(a11, a22);
    let s2 = add_views(b11, b22);
    let s3 = add_views(a21, a22);
    let s4 = sub_views(b12, b22);
    let s5 = sub_views(b21, b11);
    let s6 = add_views(a11, a12);
    let s7 = sub_views(a21, a11);
    let s8 = add_views(b11, b12);
    let s9 = sub_views(a12, a22);
    let s10 = add_views(b21, b22);

    // Seven recursive products.
    let m1 = rec_strassen(mach, s1.view(), s2.view(), base_dim);
    let m2 = rec_strassen(mach, s3.view(), b11, base_dim);
    let m3 = rec_strassen(mach, a11, s4.view(), base_dim);
    let m4 = rec_strassen(mach, a22, s5.view(), base_dim);
    let m5 = rec_strassen(mach, s6.view(), b22, base_dim);
    let m6 = rec_strassen(mach, s7.view(), s8.view(), base_dim);
    let m7 = rec_strassen(mach, s9.view(), s10.view(), base_dim);

    // Eight post-additions.
    mach.charge(8 * (h * h) as u64);
    let c11 = m1.add(&m4).sub(&m5).add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let c22 = m1.sub(&m2).add(&m3).add(&m6);
    assemble(&c11, &c12, &c21, &c22)
}

/// Exact simulated time of [`multiply_recursive`] on a model machine:
/// mirrors the recursion's charges (`8 T(d/2) + 4(d/2)²`, base `m + ℓ`).
#[must_use]
pub fn recursive_time(d: u64, s: u64, l: u64) -> u64 {
    if d <= s {
        return s * s + l;
    }
    let h = d / 2;
    8 * recursive_time(h, s, l) + 4 * h * h
}

/// Exact simulated time of [`multiply_strassen`] on a model machine
/// (`7 T(d/2) + 18(d/2)²`, base `m + ℓ`).
#[must_use]
pub fn strassen_time(d: u64, s: u64, l: u64) -> u64 {
    if d <= s {
        return s * s + l;
    }
    let h = d / 2;
    7 * strassen_time(h, s, l) + 18 * h * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::TcuMachine;
    use tcu_linalg::ops::matmul_naive;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 67 + j as i64 * 29 + seed).wrapping_mul(16807) >> 6) % 41 - 20
        })
    }

    #[test]
    fn both_recursions_match_naive() {
        let mut mach = TcuMachine::model(16, 13);
        for d in [2usize, 4, 8, 16, 32] {
            let a = pseudo(d, d, 1);
            let b = pseudo(d, d, 2);
            let want = matmul_naive(&a, &b);
            assert_eq!(
                multiply_recursive(&mut mach, &a, &b),
                want,
                "standard d={d}"
            );
            assert_eq!(multiply_strassen(&mut mach, &a, &b), want, "strassen d={d}");
        }
    }

    #[test]
    fn costs_match_recurrence_formulas() {
        let (m, l) = (16usize, 777u64);
        for d in [4u64, 8, 16, 32, 64] {
            let a = pseudo(d as usize, d as usize, 3);
            let b = pseudo(d as usize, d as usize, 4);

            let mut mach = TcuMachine::model(m, l);
            let _ = multiply_recursive(&mut mach, &a, &b);
            assert_eq!(mach.time(), recursive_time(d, 4, l), "standard d={d}");

            let mut mach = TcuMachine::model(m, l);
            let _ = multiply_strassen(&mut mach, &a, &b);
            assert_eq!(mach.time(), strassen_time(d, 4, l), "strassen d={d}");
        }
    }

    #[test]
    fn base_call_counts_follow_p0() {
        // (d/√m)^{log2 p0} base invocations at recursion depth log2(d/√m).
        let m = 16usize;
        let d = 64usize; // depth 4 over √m = 4
        let a = pseudo(d, d, 5);
        let b = pseudo(d, d, 6);

        let mut mach = TcuMachine::model(m, 0);
        let _ = multiply_recursive(&mut mach, &a, &b);
        assert_eq!(mach.stats().tensor_calls, 8u64.pow(4));

        let mut mach = TcuMachine::model(m, 0);
        let _ = multiply_strassen(&mut mach, &a, &b);
        assert_eq!(mach.stats().tensor_calls, 7u64.pow(4));
    }

    #[test]
    fn strassen_wins_for_large_ratio() {
        // Strassen's advantage is in the base-call count ((n/m)^{1.4} vs
        // (n/m)^{1.5} invocations), so it wins once each invocation is
        // expensive (large ℓ) — with ℓ = 0 its 18-adds-per-level constant
        // pushes the crossover out to d/√m ≈ 2^10.
        assert!(strassen_time(256, 4, 10_000) < recursive_time(256, 4, 10_000));
        assert!(strassen_time(4096, 4, 0) < recursive_time(4096, 4, 0));
        // Below the crossover the standard recursion is cheaper: the
        // latency-free, small-ratio regime.
        assert!(strassen_time(64, 4, 0) > recursive_time(64, 4, 0));
    }

    #[test]
    fn early_stop_ablation_is_correct_and_costlier_in_latency() {
        let (m, l) = (16usize, 0u64);
        let d = 32usize;
        let a = pseudo(d, d, 7);
        let b = pseudo(d, d, 8);
        let want = matmul_naive(&a, &b);

        // Stop at 2·√m and finish blocks with Theorem 2: still correct.
        let mut mach = TcuMachine::model(m, l);
        assert_eq!(multiply_strassen_with_base(&mut mach, &a, &b, 8), want);

        // Stop below √m: recursion continues past the footprint and pays
        // full-footprint charges for quarter-size tiles — strictly worse.
        let mut fine = TcuMachine::model(m, l);
        let _ = multiply_strassen_with_base(&mut fine, &a, &b, 2);
        let mut canonical = TcuMachine::model(m, l);
        let _ = multiply_strassen(&mut canonical, &a, &b);
        assert!(fine.time() > canonical.time());
    }

    #[test]
    fn works_on_weak_machine() {
        let mut weak = TcuMachine::weak(16, 9);
        let a = pseudo(16, 16, 9);
        let b = pseudo(16, 16, 10);
        assert_eq!(multiply_strassen(&mut weak, &a, &b), matmul_naive(&a, &b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut mach = TcuMachine::model(16, 0);
        let a = pseudo(12, 12, 11);
        let _ = multiply_strassen(&mut mach, &a, &a.clone());
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_recursion_matches_eager_results_and_stats() {
        let (m, l) = (16usize, 777u64);
        for d in [4usize, 8, 16, 32] {
            let a = pseudo(d, d, 31);
            let b = pseudo(d, d, 32);
            let mut eager = TcuMachine::model(m, l);
            let want = multiply_recursive(&mut eager, &a, &b);
            let mut sched = TcuMachine::model(m, l);
            let got = multiply_recursive_scheduled(&mut sched, &a, &b);
            assert_eq!(got, want, "d = {d}");
            assert_eq!(sched.stats(), eager.stats(), "d = {d}");
        }
    }

    #[cfg(feature = "sched")]
    #[test]
    fn sub_footprint_base_coalesces_product_pairs() {
        // Base 2 on a √m = 4 machine: leaf products come in (same left
        // block, adjacent weight columns) pairs, which width-merging
        // fuses — half the invocations of the eager base-2 ablation,
        // same full-footprint charge per invocation, same result.
        let (m, l) = (16usize, 1000u64);
        let d = 16usize;
        let a = pseudo(d, d, 33);
        let b = pseudo(d, d, 34);
        let mut eager = TcuMachine::model(m, l);
        let want = multiply_recursive_with_base(&mut eager, &a, &b, 2);
        let mut sched = TcuMachine::model(m, l);
        let got = multiply_recursive_scheduled_with_base(&mut sched, &a, &b, 2);
        assert_eq!(got, want);
        assert_eq!(got, matmul_naive(&a, &b));
        assert_eq!(
            sched.stats().tensor_calls * 2,
            eager.stats().tensor_calls,
            "width merging must halve the base-product invocations"
        );
        assert!(sched.time() < eager.time());
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_recursion_is_float_exact() {
        // Width merges never reassociate a sum, so even f64 results are
        // bit-identical to the eager recursion — including with a
        // sub-footprint base where merging actually happens.
        let d = 16usize;
        let a = Matrix::from_fn(d, d, |i, j| (i as f64 - 3.5) * 0.25 + j as f64 * 0.125);
        let b = Matrix::from_fn(d, d, |i, j| (j as f64 - 8.0) * 0.5 - i as f64 * 0.0625);
        for base in [4usize, 2] {
            let mut eager = TcuMachine::model(16, 5);
            let want = multiply_recursive_with_base(&mut eager, &a, &b, base);
            let mut sched = TcuMachine::model(16, 5);
            let got = multiply_recursive_scheduled_with_base(&mut sched, &a, &b, base);
            assert_eq!(got, want, "base = {base}");
        }
    }
}
