//! Dense multiplication on *parallel* tensor units — the algorithmic side
//! of the §6 extension in [`tcu_core::parallel`].
//!
//! Theorem 2's blocked multiplication issues `(d/√m)²` independent tall
//! invocations (one per weight block `B_{k,j}`); on a `p`-unit machine
//! they schedule as a batch, so the tensor term divides by `p` while the
//! CPU accumulation stays serial:
//!
//! ```text
//!   T_p(n) = Θ( n^{3/2}/(p·√m) + (n/(p·m))·ℓ + n^{3/2}/√m_CPU-adds )
//! ```
//!
//! i.e. Amdahl-limited by the strip summation: speedup saturates at
//! `(tensor work)/(CPU work) + 1 ≈ 2` for the plain algorithm unless the
//! accumulation is tree-reduced on the units too — which
//! [`multiply_parallel_fused`] models (via the hardware's fused
//! accumulate), restoring near-linear speedup. The
//! EP1 experiment sweeps `p` over both variants.

use tcu_core::parallel::ParallelTcuMachine;
use tcu_core::{Executor, TensorUnit};
use tcu_linalg::{Matrix, MatrixView, Scalar};

/// Blocked multiplication with the `(d/√m)²` weight-block invocations
/// batched across units; strip accumulation on the (serial) CPU.
///
/// # Panics
/// Panics unless operands are square of equal dimension `d` with `√m | d`.
#[must_use]
pub fn multiply_parallel<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut ParallelTcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let d = a.rows();
    assert!(
        a.is_square() && b.is_square() && b.rows() == d,
        "operands must be d×d"
    );
    let s = mach.sqrt_m();
    assert!(d.is_multiple_of(s), "√m = {s} must divide d = {d}");
    let q = d / s;

    // All q² products are independent: one batch of zero-copy views
    // (strips and weight blocks are carved straight out of A and B).
    let ops: Vec<(MatrixView<'_, T>, MatrixView<'_, T>)> = (0..q * q)
        .map(|kj| {
            let strip = a.col_strip_view((kj / q) * s, s);
            let block = b.subview((kj / q) * s, (kj % q) * s, s, s);
            (strip, block)
        })
        .collect();
    let prods = mach.tensor_mul_batch_views(&ops);

    // Serial CPU accumulation per output column-block.
    let mut c = Matrix::<T>::zeros(d, d);
    for j in 0..q {
        let mut acc = prods[j].clone();
        for k in 1..q {
            mach.charge((d * s) as u64);
            acc.add_assign(&prods[k * q + j]);
        }
        c.set_block_view(0, j * s, acc.view());
    }
    c
}

/// Like [`multiply_parallel`], but the strip accumulation is folded into
/// the tensor batches as well (pairwise tree reduction expressed as
/// multiplications by stacked identity weights), so the whole algorithm
/// parallelizes and speedup stays near `p`.
///
/// The reduction trick: `X + Y = [X | Y] · [I; I]` — a `d × 2√m` by
/// `2√m × √m`… which exceeds the unit's width, so instead each level
/// stacks `X` over `Y` as a `2·d_rows × √m` tall operand against the
/// identity and lets the *unit* stream the adds: `[X; Y]ᵀ`-style folding
/// needs an addition unit, which the model lacks — so the honest version
/// here keeps CPU adds but splits them across the `q` column blocks
/// *between* batches, overlapping nothing; what it demonstrates is the
/// Amdahl ceiling itself. (Kept as a distinct entry point so EP1 can
/// report both curves; a fused-accumulate hardware mode — TCs do offer
/// `D = A·B + C` — would lift the ceiling, and is modelled by passing
/// `fused = true`.)
///
/// With `fused = true` the per-block accumulation is treated as absorbed
/// into the invocation (the FMA semantics of real tensor cores, §2.1),
/// removing the CPU term entirely.
///
/// # Panics
/// Panics unless operands are square of equal dimension `d` with `√m | d`.
#[must_use]
pub fn multiply_parallel_fused<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut ParallelTcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    fused: bool,
) -> Matrix<T> {
    let d = a.rows();
    assert!(
        a.is_square() && b.is_square() && b.rows() == d,
        "operands must be d×d"
    );
    let s = mach.sqrt_m();
    assert!(d.is_multiple_of(s), "√m = {s} must divide d = {d}");
    let q = d / s;

    let ops: Vec<(MatrixView<'_, T>, MatrixView<'_, T>)> = (0..q * q)
        .map(|kj| {
            let strip = a.col_strip_view((kj / q) * s, s);
            let block = b.subview((kj / q) * s, (kj % q) * s, s, s);
            (strip, block)
        })
        .collect();
    let prods = mach.tensor_mul_batch_views(&ops);

    let mut c = Matrix::<T>::zeros(d, d);
    for j in 0..q {
        let mut acc = prods[j].clone();
        for k in 1..q {
            if !fused {
                mach.charge((d * s) as u64);
            }
            acc.add_assign(&prods[k * q + j]);
        }
        c.set_block(0, j * s, &acc);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::{ModelTensorUnit, TcuMachine};
    use tcu_linalg::ops::matmul_naive;

    fn pseudo(d: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(d, d, |i, j| {
            ((i as i64 * 11 + j as i64 * 3 + seed) % 13) - 6
        })
    }

    #[test]
    fn parallel_product_is_correct() {
        let a = pseudo(32, 1);
        let b = pseudo(32, 2);
        for p in [1usize, 2, 4, 16, 64] {
            let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(16, 9), p);
            assert_eq!(
                multiply_parallel(&mut mach, &a, &b),
                matmul_naive(&a, &b),
                "p = {p}"
            );
        }
    }

    #[test]
    fn one_unit_matches_serial_theorem_2_time() {
        let a = pseudo(32, 3);
        let b = pseudo(32, 4);
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 50), 1);
        let _ = multiply_parallel(&mut par, &a, &b);
        let mut ser = TcuMachine::model(16, 50);
        let _ = crate::dense::multiply(&mut ser, &a, &b);
        assert_eq!(par.time(), ser.time());
    }

    #[test]
    fn tensor_term_divides_by_p() {
        let a = pseudo(64, 5);
        let b = pseudo(64, 6);
        let q = 16u64; // d/s = 64/4
        let per_call = 64 * 4 + 10;
        for p in [1usize, 2, 4, 8] {
            let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(16, 10), p);
            let _ = multiply_parallel(&mut mach, &a, &b);
            let makespan = (q * q).div_ceil(p as u64) * per_call;
            let cpu = q * (q - 1) * 64 * 4;
            assert_eq!(mach.time(), makespan + cpu, "p = {p}");
        }
    }

    #[test]
    fn amdahl_ceiling_and_fused_escape() {
        // Unfused speedup saturates (CPU adds serial); fused keeps scaling.
        let a = pseudo(64, 7);
        let b = pseudo(64, 8);
        let time_with = |p: usize, fused: bool| {
            let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), p);
            let c = multiply_parallel_fused(&mut mach, &a, &b, fused);
            assert_eq!(c, matmul_naive(&a, &b));
            mach.time()
        };
        let s1 = time_with(1, false) as f64;
        let s64 = time_with(64, false) as f64;
        let f1 = time_with(1, true) as f64;
        let f64_ = time_with(64, true) as f64;
        let unfused_speedup = s1 / s64;
        let fused_speedup = f1 / f64_;
        assert!(
            unfused_speedup < 3.0,
            "Amdahl-limited: {unfused_speedup:.2}"
        );
        assert!(
            fused_speedup > 30.0,
            "fused accumulate scales: {fused_speedup:.2}"
        );
    }
}
