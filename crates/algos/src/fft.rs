//! Discrete Fourier Transform on the TCU — §4.5, Theorem 7.
//!
//! The Cooley–Tukey decomposition with `n₁ = √m`, `n₂ = n/√m`: the input
//! vector is arranged as an `n₁ × n₂` matrix in row-major order; the `n₂`
//! column DFTs of size `√m` are *one* tall tensor multiplication by the
//! Fourier matrix `W_{√m}` (the weights stay resident while all columns
//! stream through); each entry is scaled by its twiddle factor; the `n₁`
//! row DFTs of size `n₂` recurse; and the result is read out column-major.
//! Theorem 7: time `O((n + ℓ)·log_m n)`.
//!
//! Everything here is *batched*: [`dft_rows`] transforms every row of a
//! matrix at once, so at each recursion level the whole batch forms a
//! single tall left operand and the per-level charge is `O(total + ℓ)`
//! rather than `ℓ` per subproblem. This is exactly the latency-hiding
//! observation the paper uses in the stencil upper bound (Lemma 1), and
//! it generalizes the `n₁ = 4` scheme of Sorna et al. that the paper
//! cites as a special case.
//!
//! Complex arithmetic runs natively on the model's κ-bit words (§4.5
//! "we assume that the TCU model can perform operations on complex
//! numbers"; the constant-factor removal is discussed there too).

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Complex64, Matrix, Scalar};

/// The `n × n` Fourier matrix `W[r,c] = ω_n^{rc}`, `ω_n = e^{−2πi/n}`.
#[must_use]
pub fn fourier_matrix(n: usize) -> Matrix<Complex64> {
    Matrix::from_fn(n, n, |r, c| Complex64::root_of_unity(n, (r * c) as i64))
}

/// DFT of a single vector on the TCU (length a power of two).
///
/// # Panics
/// Panics unless `x.len()` is a power of two and, when `x.len() > √m`,
/// `√m` is itself a power of two (so that `√m | n` at every level).
#[must_use]
pub fn dft<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &[Complex64],
) -> Vec<Complex64> {
    let data = Matrix::from_vec(1, x.len(), x.to_vec());
    dft_rows(mach, &data).as_slice().to_vec()
}

/// Inverse DFT via conjugation: `idft(x) = conj(dft(conj(x)))/n`.
#[must_use]
pub fn idft<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &[Complex64],
) -> Vec<Complex64> {
    let n = x.len();
    mach.charge(n as u64);
    let conj: Vec<Complex64> = x.iter().map(|z| z.conj()).collect();
    let y = dft(mach, &conj);
    mach.charge(2 * n as u64);
    let scale = 1.0 / n as f64;
    y.into_iter().map(|z| z.conj().scale(scale)).collect()
}

/// Batched DFT: transform *every row* of `data` (all rows share one
/// power-of-two length). The whole batch streams through the tensor unit
/// together, so latency is paid once per recursion level for the entire
/// batch.
///
/// # Panics
/// Panics unless the row length is a power of two (and `√m` is a power of
/// two whenever the row length exceeds it).
#[must_use]
pub fn dft_rows<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    data: &Matrix<Complex64>,
) -> Matrix<Complex64> {
    let nc = data.cols();
    assert!(
        nc.is_power_of_two(),
        "DFT length must be a power of two (got {nc})"
    );
    let s = mach.sqrt_m();
    if nc > s {
        assert!(
            s.is_power_of_two(),
            "√m = {s} must be a power of two to divide the DFT length at every level"
        );
    }
    rec(mach, data)
}

fn rec<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    data: &Matrix<Complex64>,
) -> Matrix<Complex64> {
    let nc = data.cols();
    let batch = data.rows();
    let s = mach.sqrt_m();

    if nc == 1 {
        return data.clone();
    }
    if nc <= s {
        // Base case: multiplication by the Fourier matrix. When nc < √m,
        // pack g = √m/nc independent instances side by side against a
        // block-diagonal diag(W_nc, …, W_nc) weight matrix, so the full
        // hardware footprint is used and the charge stays O(batch·nc)
        // instead of O(batch·√m).
        let g = (s / nc).max(1);
        if g <= 1 || batch == 1 {
            mach.charge((nc * nc) as u64); // assemble W_nc
            let w = fourier_matrix(nc);
            return mach.tensor_mul_padded_view(data.view(), w.view());
        }
        mach.charge((g * nc * nc) as u64); // assemble diag(W_nc, …)
        let w = fourier_matrix(nc);
        let bd = Matrix::from_fn(g * nc, g * nc, |i, j| {
            if i / nc == j / nc {
                w[(i % nc, j % nc)]
            } else {
                Complex64::ZERO
            }
        });
        let packed_rows = batch.div_ceil(g);
        let packed = Matrix::from_fn(packed_rows, g * nc, |p, q| {
            let r = p * g + q / nc;
            if r < batch {
                data[(r, q % nc)]
            } else {
                Complex64::ZERO
            }
        });
        let prod = mach.tensor_mul_padded_view(packed.view(), bd.view());
        return Matrix::from_fn(batch, nc, |r, k| prod[(r / g, (r % g) * nc + k)]);
    }

    let n1 = s;
    let n2 = nc / s;

    // Step 1 — all column DFTs of size n1 at once: row (r, j) of G holds
    // column j of row r's n1 × n2 arrangement; one multiplication by
    // W_{n1} transforms every column of every batch row.
    mach.charge((n1 * n1) as u64); // assemble W_{√m}
    let w1 = fourier_matrix(n1);
    let g = Matrix::from_fn(batch * n2, n1, |rj, i| {
        let (r, j) = (rj / n2, rj % n2);
        data[(r, i * n2 + j)]
    });
    let u = mach.tensor_mul_padded_view(g.view(), w1.view());

    // Step 2 — twiddles and transposition into row-DFT layout: H row
    // (r, k1) holds U[(r, ·), k1] · ω_nc^{k1 ·}. The paper charges O(n)
    // for twiddles plus transposition; we charge one op per element for
    // each.
    mach.charge(2 * (batch * nc) as u64);
    let h = Matrix::from_fn(batch * n1, n2, |rk, j| {
        let (r, k1) = (rk / n1, rk % n1);
        let tw = Complex64::root_of_unity(nc, (k1 * j) as i64);
        u[(r * n2 + j, k1)].mul(tw)
    });

    // Step 3 — the n1 row DFTs of size n2, recursively (batched).
    let v = rec(mach, &h);

    // Step 4 — column-major readout: y[k1 + n1·k2] = V[(r, k1), k2].
    mach.charge((batch * nc) as u64);
    Matrix::from_fn(batch, nc, |r, k| {
        let (k1, k2) = (k % n1, k / n1);
        v[(r * n1 + k1, k2)]
    })
}

/// Exact simulated time of [`dft_rows`] on a model machine (mirrors the
/// recursion's charges).
#[must_use]
pub fn dft_rows_time(nc: u64, batch: u64, s: u64, l: u64) -> u64 {
    if nc == 1 {
        return 0;
    }
    if nc <= s {
        let g = (s / nc).max(1);
        if g <= 1 || batch == 1 {
            return nc * nc + batch.max(s) * s + l;
        }
        return g * nc * nc + batch.div_ceil(g).max(s) * s + l;
    }
    let n2 = nc / s;
    s * s + (batch * n2).max(s) * s + l + 3 * batch * nc + dft_rows_time(n2, batch * s, s, l)
}

/// Host oracle: the definition-based `Θ(n²)` DFT.
#[must_use]
pub fn dft_direct_host(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter().enumerate().fold(Complex64::ZERO, |acc, (t, &v)| {
                acc.add(v.mul(Complex64::root_of_unity(n, (t * k) as i64)))
            })
        })
        .collect()
}

/// Host radix-2 FFT (iterative, bit-reversed), used as the fast oracle and
/// as the RAM baseline of experiment E7.
///
/// # Panics
/// Panics unless the length is a power of two.
#[must_use]
pub fn fft_host(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut a = x.to_vec();
    if n <= 1 {
        return a;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let w_len = Complex64::root_of_unity(len, 1);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for off in 0..len / 2 {
                let even = a[start + off];
                let odd = a[start + off + len / 2].mul(w);
                a[start + off] = even.add(odd);
                a[start + off + len / 2] = even.sub(odd);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
    a
}

/// Simulated-time charge of running the radix-2 host FFT on the TCU's
/// CPU (the E7 baseline): ~10 ops per butterfly, `n/2·log₂ n` butterflies.
#[must_use]
pub fn fft_host_time(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * n * n.ilog2() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_vector_c64;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;

    fn max_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.sub(*y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_direct_dft_across_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mach = TcuMachine::model(16, 9);
        for n in [1usize, 2, 4, 8, 16, 32, 64, 256] {
            let x = random_vector_c64(n, &mut rng);
            let got = dft(&mut mach, &x);
            let want = dft_direct_host(&x);
            assert!(max_diff(&got, &want) < 1e-9 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn fft_host_matches_direct() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 2, 8, 64, 512] {
            let x = random_vector_c64(n, &mut rng);
            assert!(
                max_diff(&fft_host(&x), &dft_direct_host(&x)) < 1e-8,
                "n = {n}"
            );
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mach = TcuMachine::model(16, 5);
        for n in [4usize, 64, 128] {
            let x = random_vector_c64(n, &mut rng);
            let forward = dft(&mut mach, &x);
            let back = idft(&mut mach, &forward);
            assert!(max_diff(&back, &x) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut mach = TcuMachine::model(4, 0);
        let n = 16;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        let y = dft(&mut mach, &x);
        for v in y {
            assert!(v.sub(Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mach = TcuMachine::model(16, 0);
        let n = 64;
        let x = random_vector_c64(n, &mut rng);
        let y = dft(&mut mach, &x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-8 * ey.max(1.0));
    }

    #[test]
    fn batched_rows_equal_individual_transforms() {
        let mut rng = StdRng::seed_from_u64(5);
        let nc = 32;
        let rows: Vec<Vec<Complex64>> = (0..5).map(|_| random_vector_c64(nc, &mut rng)).collect();
        let data = Matrix::from_rows(&rows);
        let mut mach = TcuMachine::model(16, 3);
        let batched = dft_rows(&mut mach, &data);
        for (r, row) in rows.iter().enumerate() {
            let single = dft_direct_host(row);
            let got: Vec<Complex64> = batched.row(r).to_vec();
            assert!(max_diff(&got, &single) < 1e-9, "row {r}");
        }
    }

    #[test]
    fn cost_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(6);
        for (n, m, l) in [
            (64usize, 16usize, 0u64),
            (256, 16, 1000),
            (1024, 64, 33),
            (8, 16, 5),
        ] {
            let x = random_vector_c64(n, &mut rng);
            let mut mach = TcuMachine::model(m, l);
            let _ = dft(&mut mach, &x);
            let s = (m as f64).sqrt() as u64;
            assert_eq!(mach.time(), dft_rows_time(n as u64, 1, s, l), "n={n} m={m}");
        }
    }

    #[test]
    fn input_of_size_m_uses_two_tensor_calls() {
        // The paper's base-case remark: n ≤ m needs the unit once for the
        // n₂ column DFTs and once for the n₁ row DFTs.
        let mut rng = StdRng::seed_from_u64(7);
        let (n, m) = (16usize, 16usize);
        let x = random_vector_c64(n, &mut rng);
        let mut mach = TcuMachine::model(m, 0);
        let _ = dft(&mut mach, &x);
        assert_eq!(mach.stats().tensor_calls, 2);
    }

    #[test]
    fn latency_scales_with_levels_not_subproblems() {
        // Batching means each level pays ℓ once: levels = 1 + log_{√m}(n/√m)
        // tensor calls in total (plus the W builds).
        let (n, m, l) = (4096usize, 16usize, 1_000_000u64);
        let x = vec![Complex64::ONE; n];
        let mut mach = TcuMachine::model(m, l);
        let _ = dft(&mut mach, &x);
        // levels: 4096 -> 1024 -> 256 -> 64 -> 16 -> 4 -> 1 tensor call at
        // nc=4 base: calls = 6.
        assert_eq!(mach.stats().tensor_calls, 6);
        assert_eq!(mach.stats().tensor_latency_time, 6 * l);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_length() {
        let mut mach = TcuMachine::model(16, 0);
        let x = vec![Complex64::ONE; 12];
        let _ = dft(&mut mach, &x);
    }
}
