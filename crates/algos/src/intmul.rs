//! Long-integer multiplication on the TCU — §4.7, Theorems 9 and 10.
//!
//! Integers are vectors of κ′-bit limbs (κ′ = 16 here, so limb products
//! and their `√m`-length accumulations fit comfortably in a 64-bit word —
//! the paper's "κ′ = κ/4 avoids overflow" argument).
//!
//! **Theorem 9 (schoolbook on the tensor unit).** Writing the operands as
//! polynomials `A(x), B(x)` of degree `n′ − 1` (`n′` limbs), the product's
//! coefficients are exactly the entries of `C′ = A′·B′` where `A′` is the
//! `(n′+√m−1) × √m` banded matrix of all √m-length windows of `A`'s
//! coefficient sequence and `B′` packs `B`'s coefficients column-major —
//! each anti-diagonal-ish family `{C′[i,j] : i + j√m = const}` sums to one
//! coefficient `C_h`. One tall multiplication per `√m`-column block of
//! `B′` gives time `O(n²/(κ²√m) + n·ℓ/(κ·m))`.
//!
//! **Theorem 10 (Karatsuba hybrid).** Karatsuba's three-way recursion with
//! the Theorem 9 routine as base case once operands fit `√m` limbs:
//! `O((n/(κ√m))^{log 3}·(√m + ℓ/√m))`.
//!
//! Host baselines (schoolbook and pure Karatsuba) serve as correctness
//! oracles and as the RAM comparison curves in experiments E9/E10.

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::Matrix;

/// Limb width in bits (κ′). Limbs are stored in `u64`s but always lie in
/// `[0, 2^16)`.
pub const LIMB_BITS: u32 = 16;
/// Limb base `2^{κ′}`.
pub const LIMB_BASE: u64 = 1 << LIMB_BITS;

/// Little-endian κ′-bit limb representation of a non-negative integer.
/// The canonical form has no trailing zero limbs (except the zero value,
/// which is the empty vector).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigNat {
    limbs: Vec<u64>,
}

impl BigNat {
    /// The zero value.
    #[must_use]
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// From a `u64`.
    #[must_use]
    pub fn from_u64(mut x: u64) -> Self {
        let mut limbs = Vec::new();
        while x > 0 {
            limbs.push(x & (LIMB_BASE - 1));
            x >>= LIMB_BITS;
        }
        Self { limbs }
    }

    /// From raw little-endian limbs (each `< 2^16`); trailing zeros are
    /// trimmed.
    ///
    /// # Panics
    /// Panics if a limb is out of range.
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        assert!(
            limbs.iter().all(|&l| l < LIMB_BASE),
            "limbs must be < 2^{LIMB_BITS}"
        );
        let mut v = Self { limbs };
        v.trim();
        v
    }

    /// The little-endian limbs (canonical, no trailing zeros).
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant limbs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.limbs.len()
    }

    /// `true` iff the value is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Bit length of the value.
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * u64::from(LIMB_BITS)
                    + u64::from(64 - top.leading_zeros())
            }
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Hexadecimal rendering (for examples and debugging).
    #[must_use]
    pub fn to_hex(&self) -> String {
        if self.limbs.is_empty() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (i, &l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(&format!("{l:x}"));
            } else {
                out.push_str(&format!("{l:04x}"));
            }
        }
        out
    }

    /// Schoolbook addition.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let s = a + b + carry;
            out.push(s & (LIMB_BASE - 1));
            carry = s >> LIMB_BITS;
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// Schoolbook subtraction (`self − other`); callers guarantee
    /// `self ≥ other`.
    ///
    /// # Panics
    /// Panics on underflow.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = other.limbs.get(i).copied().unwrap_or(0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += LIMB_BASE as i64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        assert!(
            borrow == 0 && other.limbs.len() <= self.limbs.len(),
            "BigNat::sub underflow"
        );
        Self::from_limbs(out)
    }

    /// `self · 2^{κ′·k}` (shift left by `k` limbs).
    #[must_use]
    pub fn shl_limbs(&self, k: usize) -> Self {
        if self.limbs.is_empty() {
            return Self::zero();
        }
        let mut out = vec![0u64; k];
        out.extend_from_slice(&self.limbs);
        Self { limbs: out }
    }

    /// The low `k` limbs.
    #[must_use]
    pub fn low(&self, k: usize) -> Self {
        Self::from_limbs(self.limbs.iter().copied().take(k).collect())
    }

    /// The limbs from position `k` upward.
    #[must_use]
    pub fn high(&self, k: usize) -> Self {
        if k >= self.limbs.len() {
            return Self::zero();
        }
        Self::from_limbs(self.limbs[k..].to_vec())
    }
}

/// Host schoolbook product (`Θ(n′²)` limb operations) — the oracle.
#[must_use]
pub fn mul_host(a: &BigNat, b: &BigNat) -> BigNat {
    if a.is_empty() || b.is_empty() {
        return BigNat::zero();
    }
    let mut acc = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.limbs.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.limbs.iter().enumerate() {
            acc[i + j] += ai * bj; // ≤ 2^32 per product; n′ < 2^31 keeps sums in u64
        }
    }
    carry_normalize(&acc)
}

/// Simulated-time charge of the host schoolbook product on the TCU CPU
/// (the E9 baseline): one multiply-add per limb pair plus carries.
#[must_use]
pub fn mul_host_time(na: u64, nb: u64) -> u64 {
    2 * na * nb + (na + nb)
}

fn carry_normalize(acc: &[u64]) -> BigNat {
    let mut limbs = Vec::with_capacity(acc.len() + 2);
    let mut carry = 0u64;
    for &c in acc {
        let s = c + carry;
        limbs.push(s & (LIMB_BASE - 1));
        carry = s >> LIMB_BITS;
    }
    while carry > 0 {
        limbs.push(carry & (LIMB_BASE - 1));
        carry >>= LIMB_BITS;
    }
    BigNat::from_limbs(limbs)
}

/// Theorem 9: schoolbook multiplication through the tensor unit.
///
/// Builds the banded window matrix `A′` and the column-packed `B′`,
/// multiplies them with one tall invocation per `√m`-column block of
/// `B′`, folds the product entries into the convolution coefficients, and
/// carry-propagates.
#[must_use]
pub fn mul_tcu_schoolbook<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &BigNat,
    b: &BigNat,
) -> BigNat {
    if a.is_empty() || b.is_empty() {
        return BigNat::zero();
    }
    let s = mach.sqrt_m();
    // Common limb count, rounded up to a multiple of √m.
    let np = a.len().max(b.len()).div_ceil(s) * s;

    // A′: row i holds the window [A_{i−(√m−1)}, …, A_i] (increasing
    // exponent), zero outside the range — the "all segments of length √m
    // of 0^{√m−1}, A_0, …, A_{n′−1}, 0^{√m−1}" construction.
    let a_limb = |idx: i64| -> u64 {
        if idx >= 0 && (idx as usize) < a.len() {
            a.limbs[idx as usize]
        } else {
            0
        }
    };
    let b_limb = |idx: usize| -> u64 { b.limbs.get(idx).copied().unwrap_or(0) };
    let rows = np + s - 1;
    let aprime = Matrix::from_fn(rows, s, |i, t| a_limb(i as i64 - (s as i64 - 1) + t as i64));

    // B′: √m × (n′/√m), column j holding the reversed j-th segment:
    // B′[t, j] = B_{n′−1−t−j√m}.
    let cols = np / s;
    let bprime = Matrix::from_fn(s, cols, |t, j| b_limb_rev(np, t, j, s, &b_limb));

    // C′ = A′·B′, one tall call per √m-column block of B′.
    let cprime = crate::dense::multiply_rect(mach, &aprime, &bprime);

    // Fold: C_h = Σ_j C′[h − n′ + √m + j√m − ... ] — concretely, entry
    // (i, j) carries exponent h = n′ + i − √m − j√m + (√m−1)·0 … derived
    // in the module docs: h(i, j) = i − (√m − 1) + (n′ − 1 − j√m).
    let mut coeffs = vec![0u64; 2 * np];
    let mut fold_ops = 0u64;
    for i in 0..rows {
        for j in 0..cols {
            let h = i as i64 - (s as i64 - 1) + (np as i64 - 1 - (j * s) as i64);
            if (0..coeffs.len() as i64).contains(&h) {
                coeffs[h as usize] += cprime[(i, j)];
                fold_ops += 1;
            }
        }
    }
    // Fold additions plus the final evaluation c = C(2^{κ′}) (carries).
    mach.charge(fold_ops + 2 * coeffs.len() as u64);
    carry_normalize(&coeffs)
}

fn b_limb_rev(np: usize, t: usize, j: usize, s: usize, b_limb: &impl Fn(usize) -> u64) -> u64 {
    let idx = np as i64 - 1 - t as i64 - (j * s) as i64;
    if idx >= 0 {
        b_limb(idx as usize)
    } else {
        0
    }
}

/// Theorem 10: Karatsuba recursion with the Theorem 9 routine at the base.
///
/// The paper stops recursing at `n′ ≤ √m` limbs, costing each base case
/// `√m + ℓ/√m` by extrapolating Theorem 9's formula; a real invocation
/// cannot cost less than `Θ(m + ℓ)`, so the cost-optimal threshold is
/// higher. The default here is `16·√m` limbs (the minimizer of
/// `3·T₉(n/2) + Θ(n) ≥ T₉(n)` under the honest base cost, confirmed by
/// the E10 ablation); use
/// [`mul_tcu_karatsuba_with_threshold`] with `√m` for the paper-literal
/// recursion.
#[must_use]
pub fn mul_tcu_karatsuba<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &BigNat,
    b: &BigNat,
) -> BigNat {
    let s = mach.sqrt_m();
    mul_tcu_karatsuba_with_threshold(mach, a, b, 16 * s)
}

/// [`mul_tcu_karatsuba`] with an explicit base-case limb count (ablation
/// hook for the crossover experiment E10).
#[must_use]
pub fn mul_tcu_karatsuba_with_threshold<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &BigNat,
    b: &BigNat,
    threshold_limbs: usize,
) -> BigNat {
    let n = a.len().max(b.len());
    if n <= threshold_limbs.max(1) {
        return mul_tcu_schoolbook(mach, a, b);
    }
    let h = n / 2;
    let (a0, a1) = (a.low(h), a.high(h));
    let (b0, b1) = (b.low(h), b.high(h));

    // Combine work is Θ(n) limb operations per level (paper: O(n/κ)).
    mach.charge(6 * n as u64);
    let p0 = mul_tcu_karatsuba_with_threshold(mach, &a0, &b0, threshold_limbs);
    let p2 = mul_tcu_karatsuba_with_threshold(mach, &a1, &b1, threshold_limbs);
    let asum = a0.add(&a1);
    let bsum = b0.add(&b1);
    let p1full = mul_tcu_karatsuba_with_threshold(mach, &asum, &bsum, threshold_limbs);
    let p1 = p1full.sub(&p0).sub(&p2);

    p0.add(&p1.shl_limbs(h)).add(&p2.shl_limbs(2 * h))
}

/// Host Karatsuba (`Θ(n′^{log₂3})` limb ops) — oracle and RAM baseline.
#[must_use]
pub fn mul_host_karatsuba(a: &BigNat, b: &BigNat) -> BigNat {
    let n = a.len().max(b.len());
    if n <= 16 {
        return mul_host(a, b);
    }
    let h = n / 2;
    let (a0, a1) = (a.low(h), a.high(h));
    let (b0, b1) = (b.low(h), b.high(h));
    let p0 = mul_host_karatsuba(&a0, &b0);
    let p2 = mul_host_karatsuba(&a1, &b1);
    let p1 = mul_host_karatsuba(&a0.add(&a1), &b0.add(&b1))
        .sub(&p0)
        .sub(&p2);
    p0.add(&p1.shl_limbs(h)).add(&p2.shl_limbs(2 * h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_limbs;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;

    fn rand_nat(limbs: usize, rng: &mut StdRng) -> BigNat {
        BigNat::from_limbs(random_limbs(limbs, rng))
    }

    #[test]
    fn bignat_roundtrip_and_hex() {
        let x = BigNat::from_u64(0xdead_beef_cafe);
        assert_eq!(x.to_hex(), "deadbeefcafe");
        assert_eq!(x.len(), 3);
        assert_eq!(x.bits(), 48);
        assert_eq!(BigNat::zero().to_hex(), "0");
        assert_eq!(BigNat::from_limbs(vec![5, 0, 0]), BigNat::from_u64(5));
    }

    #[test]
    fn add_sub_shift_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = rand_nat(9, &mut rng);
            let b = rand_nat(5, &mut rng);
            assert_eq!(a.add(&b).sub(&b), a);
            assert_eq!(a.shl_limbs(3).high(3), a);
            assert_eq!(a.shl_limbs(3).low(3), BigNat::zero());
        }
    }

    #[test]
    fn host_schoolbook_known_values() {
        let a = BigNat::from_u64(0xffff_ffff);
        let b = BigNat::from_u64(0xffff_ffff);
        // (2^32 − 1)² = 2^64 − 2^33 + 1 = 0xFFFFFFFE00000001
        assert_eq!(mul_host(&a, &b).to_hex(), "fffffffe00000001");
        assert_eq!(mul_host(&a, &BigNat::zero()), BigNat::zero());
        assert_eq!(mul_host(&a, &BigNat::from_u64(1)), a);
    }

    #[test]
    fn host_karatsuba_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(2);
        for limbs in [1usize, 7, 16, 33, 64, 127] {
            let a = rand_nat(limbs, &mut rng);
            let b = rand_nat(limbs, &mut rng);
            assert_eq!(
                mul_host_karatsuba(&a, &b),
                mul_host(&a, &b),
                "limbs={limbs}"
            );
        }
    }

    #[test]
    fn tcu_schoolbook_matches_host() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mach = TcuMachine::model(16, 5);
        for (la, lb) in [
            (1usize, 1usize),
            (4, 4),
            (5, 3),
            (16, 16),
            (33, 18),
            (64, 64),
        ] {
            let a = rand_nat(la, &mut rng);
            let b = rand_nat(lb, &mut rng);
            assert_eq!(
                mul_tcu_schoolbook(&mut mach, &a, &b),
                mul_host(&a, &b),
                "la={la} lb={lb}"
            );
        }
    }

    #[test]
    fn tcu_schoolbook_extreme_limbs() {
        // All limbs at maximum: the hardest carry chain.
        let mut mach = TcuMachine::model(16, 0);
        let a = BigNat::from_limbs(vec![LIMB_BASE - 1; 20]);
        let b = BigNat::from_limbs(vec![LIMB_BASE - 1; 20]);
        assert_eq!(mul_tcu_schoolbook(&mut mach, &a, &b), mul_host(&a, &b));
    }

    #[test]
    fn tcu_karatsuba_matches_host() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mach = TcuMachine::model(16, 7);
        for limbs in [2usize, 8, 15, 32, 70, 128] {
            let a = rand_nat(limbs, &mut rng);
            let b = rand_nat(limbs, &mut rng);
            assert_eq!(
                mul_tcu_karatsuba(&mut mach, &a, &b),
                mul_host(&a, &b),
                "limbs={limbs}"
            );
        }
    }

    #[test]
    fn schoolbook_tensor_cost_follows_theorem_9() {
        // n′/m tall calls of n′ + √m − 1 rows each.
        let (m, l) = (16usize, 1_000u64);
        let s = 4u64;
        let limbs = 64usize;
        let mut rng = StdRng::seed_from_u64(5);
        let a = rand_nat(limbs, &mut rng);
        let b = rand_nat(limbs, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = mul_tcu_schoolbook(&mut mach, &a, &b);
        let np = limbs as u64;
        assert_eq!(mach.stats().tensor_calls, np / (s * s));
        assert_eq!(mach.stats().tensor_rows, (np / (s * s)) * (np + s - 1));
        assert_eq!(mach.stats().tensor_latency_time, np / (s * s) * l);
    }

    #[test]
    fn karatsuba_beats_schoolbook_for_large_n() {
        // Theorem 10 vs Theorem 9. A real base-case invocation costs
        // Θ(m + ℓ) (one cannot pay less than a full call), not the
        // √m + ℓ/√m the paper gets by extrapolating Theorem 9's formula
        // below its range — so the streaming crossover needs
        // (4/3)^{log₂(n′/√m)} > √m and latency favours *schoolbook*
        // (2^t·ℓ/√m vs 3^t·ℓ latency terms). E10 maps this; here we pin
        // a point past the crossover at ℓ = 0.
        let mut rng = StdRng::seed_from_u64(6);
        let limbs = 2048usize;
        let a = rand_nat(limbs, &mut rng);
        let b = rand_nat(limbs, &mut rng);

        let mut school = TcuMachine::model(16, 0);
        let _ = mul_tcu_schoolbook(&mut school, &a, &b);
        let mut kara = TcuMachine::model(16, 0);
        let _ = mul_tcu_karatsuba(&mut kara, &a, &b);
        assert!(
            kara.time() < school.time(),
            "karatsuba {} vs schoolbook {}",
            kara.time(),
            school.time()
        );

        // And with heavy latency the ordering flips: schoolbook's tall
        // streaming pays ℓ only n′/m times while Karatsuba pays it per
        // base-case product.
        let mut school_l = TcuMachine::model(16, 1_000_000);
        let _ = mul_tcu_schoolbook(&mut school_l, &a, &b);
        let mut kara_l = TcuMachine::model(16, 1_000_000);
        let _ = mul_tcu_karatsuba(&mut kara_l, &a, &b);
        assert!(school_l.time() < kara_l.time());
    }

    #[test]
    fn zero_and_identity_cases() {
        let mut mach = TcuMachine::model(16, 0);
        let a = BigNat::from_u64(12345);
        assert_eq!(
            mul_tcu_schoolbook(&mut mach, &a, &BigNat::zero()),
            BigNat::zero()
        );
        assert_eq!(
            mul_tcu_karatsuba(&mut mach, &BigNat::zero(), &a),
            BigNat::zero()
        );
        assert_eq!(mul_tcu_schoolbook(&mut mach, &a, &BigNat::from_u64(1)), a);
    }
}
