//! Triangle counting on the tensor unit — the fast-matrix-multiplication
//! application the paper cites from Björklund, Pagh, Vassilevska Williams
//! & Zwick, *Listing triangles* (ICALP 2014, the paper's \[5\]): plugging
//! the TCU multiplication of Theorems 1–2 into the classic
//! `trace(A³)/6` counting scheme (and the per-edge variant
//! `Δ(u,v) = (A²)[u,v]` for `(u,v) ∈ E`).
//!
//! Cost: one `n × n` integer product (Theorem 2 or Theorem 1 shape) plus
//! `Θ(n²)` CPU — `O(n³/√m + (n²/m)ℓ + n²)` with the standard recursion.

use crate::dense;
use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::Matrix;

/// Number of triangles in an undirected simple graph, via `A²⊙A` on the
/// tensor unit.
///
/// # Panics
/// Panics unless `adj` is a square, symmetric 0/1 matrix with zero
/// diagonal.
#[must_use]
pub fn count_triangles<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    adj: &Matrix<i64>,
) -> u64 {
    let n = adj.rows();
    assert!(adj.is_square(), "adjacency matrix must be square");
    for i in 0..n {
        assert_eq!(adj[(i, i)], 0, "no self loops");
        for j in 0..n {
            let x = adj[(i, j)];
            assert!(x == 0 || x == 1, "entries must be 0/1");
            assert_eq!(x, adj[(j, i)], "graph must be undirected");
        }
    }
    // A² on the unit, then Σ_{(u,v)∈E} (A²)[u,v] = 6·#triangles.
    let a2 = dense::multiply_rect(mach, adj, adj);
    mach.charge(2 * (n * n) as u64);
    let mut six_t = 0i64;
    for i in 0..n {
        for j in 0..n {
            if adj[(i, j)] == 1 {
                six_t += a2[(i, j)];
            }
        }
    }
    (six_t / 6) as u64
}

/// Per-edge triangle counts: for each edge `(u, v)` the number of common
/// neighbours — the quantity triangle-listing algorithms enumerate from.
/// Returns `(u, v, count)` triples for `u < v`, counting only edges that
/// participate in at least one triangle.
#[must_use]
pub fn edge_triangle_counts<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    adj: &Matrix<i64>,
) -> Vec<(usize, usize, i64)> {
    let n = adj.rows();
    let a2 = dense::multiply_rect(mach, adj, adj);
    mach.charge((n * n) as u64);
    let mut out = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if adj[(u, v)] == 1 && a2[(u, v)] > 0 {
                out.push((u, v, a2[(u, v)]));
            }
        }
    }
    out
}

/// Host oracle: enumerate all vertex triples (`Θ(n³)`).
#[must_use]
pub fn count_triangles_host(adj: &Matrix<i64>) -> u64 {
    let n = adj.rows();
    let mut t = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            if adj[(i, j)] == 0 {
                continue;
            }
            for k in j + 1..n {
                if adj[(i, k)] == 1 && adj[(j, k)] == 1 {
                    t += 1;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_connected_graph;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;

    #[test]
    fn known_small_graphs() {
        let mut mach = TcuMachine::model(16, 3);
        // Triangle graph K3.
        let k3 = Matrix::from_fn(3, 3, |i, j| i64::from(i != j));
        assert_eq!(count_triangles(&mut mach, &k3), 1);
        // K4 has 4 triangles.
        let k4 = Matrix::from_fn(4, 4, |i, j| i64::from(i != j));
        assert_eq!(count_triangles(&mut mach, &k4), 4);
        // A 4-cycle has none.
        let c4 = Matrix::from_fn(4, 4, |i, j| i64::from((i + 1) % 4 == j || (j + 1) % 4 == i));
        assert_eq!(count_triangles(&mut mach, &c4), 0);
    }

    #[test]
    fn matches_host_enumeration() {
        let mut mach = TcuMachine::model(16, 5);
        for n in [8usize, 16, 33, 64] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let adj = random_connected_graph(n, 0.2, &mut rng);
            assert_eq!(
                count_triangles(&mut mach, &adj),
                count_triangles_host(&adj),
                "n = {n}"
            );
        }
    }

    #[test]
    fn edge_counts_sum_to_three_per_triangle() {
        let mut rng = StdRng::seed_from_u64(9);
        let adj = random_connected_graph(24, 0.25, &mut rng);
        let mut mach = TcuMachine::model(16, 0);
        let per_edge = edge_triangle_counts(&mut mach, &adj);
        let total: i64 = per_edge.iter().map(|&(_, _, c)| c).sum();
        let triangles = count_triangles_host(&adj);
        assert_eq!(total as u64, 3 * triangles, "each triangle has 3 edges");
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn rejects_directed_graphs() {
        let mut adj = Matrix::<i64>::zeros(4, 4);
        adj[(0, 1)] = 1;
        let mut mach = TcuMachine::model(4, 0);
        let _ = count_triangles(&mut mach, &adj);
    }
}
