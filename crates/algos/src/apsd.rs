//! All-pairs shortest distances via Seidel's algorithm on the TCU —
//! §4.4, Theorem 6.
//!
//! For an unweighted, undirected, *connected* graph `G`, Seidel's
//! algorithm squares the graph (`G⁽²⁾` connects every pair at distance
//! ≤ 2), recursively computes `D⁽²⁾ = APSD(G⁽²⁾)`, and recovers
//! `D[u,v] ∈ {2·D⁽²⁾[u,v], 2·D⁽²⁾[u,v] − 1}` from the sign test
//! `C[u,v] ≥ deg(v)·D⁽²⁾[u,v]` with `C = D⁽²⁾·A`. Each of the
//! `⌈log₂ n⌉` levels performs two `n × n` integer matrix products, which
//! run on the tensor unit through the dense Theorem 2 kernel; the paper
//! quotes the Theorem 1 form `O((n²/m)^{ω₀}(m + ℓ)·log n)`.
//!
//! The CPU side of each level (entry-wise squaring test, degree
//! computation, parity correction) charges `Θ(n²)`.

use crate::dense;
use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::Matrix;

/// Maximum recursion depth guard: Seidel halves the diameter each level,
/// so `2·log₂ n + 4` levels suffice for any connected graph; exceeding it
/// means the input was disconnected (the algorithm would never reach the
/// complete-graph base case).
fn depth_limit(n: usize) -> usize {
    2 * (usize::BITS - n.leading_zeros()) as usize + 4
}

/// Seidel's APSD. `adj` must be the symmetric 0/1 adjacency matrix (zero
/// diagonal) of a connected graph on `n ≥ 1` vertices. Returns the
/// `n × n` distance matrix.
///
/// # Panics
/// Panics if the matrix is not square/0-1/symmetric/hollow, or if the
/// graph is disconnected.
#[must_use]
pub fn seidel_apsd<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    adj: &Matrix<i64>,
) -> Matrix<i64> {
    let n = adj.rows();
    assert!(adj.is_square(), "adjacency matrix must be square");
    for i in 0..n {
        assert_eq!(adj[(i, i)], 0, "diagonal must be zero (no self loops)");
        for j in 0..n {
            let x = adj[(i, j)];
            assert!(x == 0 || x == 1, "entries must be 0/1");
            assert_eq!(
                x,
                adj[(j, i)],
                "matrix must be symmetric (undirected graph)"
            );
        }
    }
    if n == 1 {
        return Matrix::zeros(1, 1);
    }
    recurse(mach, adj, depth_limit(n))
}

fn recurse<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    adj: &Matrix<i64>,
    fuel: usize,
) -> Matrix<i64> {
    assert!(
        fuel > 0,
        "recursion exceeded the connected-graph depth bound: graph is disconnected"
    );
    let n = adj.rows();

    // Base case: G is complete — D = J − I (the paper's A^{(h)} with all
    // 1s, distance matrix A^{(h)} − I_n). Checking costs Θ(n²).
    mach.charge((n * n) as u64);
    let complete = (0..n).all(|i| (0..n).all(|j| i == j || adj[(i, j)] == 1));
    if complete {
        return Matrix::from_fn(n, n, |i, j| i64::from(i != j));
    }

    // Square the graph: B = A·A on the tensor unit; A⁽²⁾[u,v] = 1 iff
    // u ≠ v and (A[u,v] = 1 or B[u,v] > 0). Θ(n²) CPU to threshold.
    let b = dense::multiply_rect(mach, adj, adj);
    mach.charge(2 * (n * n) as u64);
    let adj2 = Matrix::from_fn(n, n, |u, v| {
        i64::from(u != v && (adj[(u, v)] == 1 || b[(u, v)] > 0))
    });

    let d2 = recurse(mach, &adj2, fuel - 1);

    // C = D⁽²⁾ · A on the tensor unit.
    let c = dense::multiply_rect(mach, &d2, adj);

    // Degrees (Θ(n²)) and parity recovery (3 ops per entry).
    mach.charge((n * n) as u64);
    let deg: Vec<i64> = (0..n).map(|v| (0..n).map(|u| adj[(u, v)]).sum()).collect();
    mach.charge(3 * (n * n) as u64);
    Matrix::from_fn(n, n, |u, v| {
        let d2uv = d2[(u, v)];
        if c[(u, v)] >= deg[v] * d2uv {
            2 * d2uv
        } else {
            2 * d2uv - 1
        }
    })
}

/// Host oracle: BFS from every vertex (`Θ(n·(n + m))`). Returns `-1` for
/// unreachable pairs, so it also works on disconnected graphs.
#[must_use]
pub fn bfs_apsd_host(adj: &Matrix<i64>) -> Matrix<i64> {
    let n = adj.rows();
    let mut dist = Matrix::from_fn(n, n, |_, _| -1i64);
    let mut queue = std::collections::VecDeque::new();
    for src in 0..n {
        dist[(src, src)] = 0;
        queue.clear();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[(src, u)];
            for v in 0..n {
                if adj[(u, v)] == 1 && dist[(src, v)] < 0 {
                    dist[(src, v)] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// Simulated-time charge of the BFS baseline run on the TCU's CPU: one op
/// per adjacency inspection, `n` BFS traversals scanning `n²` entries.
#[must_use]
pub fn bfs_apsd_time(n: u64) -> u64 {
    n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_connected_graph;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;

    #[test]
    fn matches_bfs_on_random_connected_graphs() {
        for (n, p, m) in [
            (5usize, 0.2, 4usize),
            (12, 0.1, 4),
            (17, 0.3, 16),
            (32, 0.05, 16),
        ] {
            let mut rng = StdRng::seed_from_u64(n as u64 * 31 + 1);
            let adj = random_connected_graph(n, p, &mut rng);
            let mut mach = TcuMachine::model(m, 7);
            let got = seidel_apsd(&mut mach, &adj);
            let want = bfs_apsd_host(&adj);
            assert_eq!(got, want, "n={n} p={p} m={m}");
        }
    }

    #[test]
    fn path_graph_distances() {
        let n = 9;
        let adj = Matrix::from_fn(n, n, |i, j| i64::from(i.abs_diff(j) == 1));
        let mut mach = TcuMachine::model(4, 0);
        let d = seidel_apsd(&mut mach, &adj);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d[(i, j)], i.abs_diff(j) as i64);
            }
        }
    }

    #[test]
    fn complete_graph_is_base_case_with_no_tensor_calls() {
        let n = 8;
        let adj = Matrix::from_fn(n, n, |i, j| i64::from(i != j));
        let mut mach = TcuMachine::model(16, 5);
        let d = seidel_apsd(&mut mach, &adj);
        assert_eq!(d, Matrix::from_fn(n, n, |i, j| i64::from(i != j)));
        assert_eq!(mach.stats().tensor_calls, 0);
    }

    #[test]
    fn single_vertex() {
        let mut mach = TcuMachine::model(4, 0);
        let d = seidel_apsd(&mut mach, &Matrix::zeros(1, 1));
        assert_eq!(d, Matrix::zeros(1, 1));
    }

    #[test]
    fn two_products_per_level() {
        // A path of length 8 has diameter 8 → levels until diameter 1:
        // each level squares; count tensor-bearing levels via call count:
        // every non-base level does exactly 2 rect-multiplies of an 8×8
        // matrix with √m = 4 ⇒ 2·(2·2) = 8 calls per level.
        let n = 8usize;
        let adj = Matrix::from_fn(n, n, |i, j| i64::from(i.abs_diff(j) == 1));
        let mut mach = TcuMachine::model(16, 0);
        let _ = seidel_apsd(&mut mach, &adj);
        let calls_per_level = 2 * (n as u64 / 4) * (n as u64 / 4);
        assert_eq!(mach.stats().tensor_calls % calls_per_level, 0);
        let levels = mach.stats().tensor_calls / calls_per_level;
        // diameter 7 → ceil(log2 7) = 3 squarings.
        assert_eq!(levels, 3);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_is_rejected() {
        // Two isolated edges: 0-1 and 2-3.
        let mut adj = Matrix::<i64>::zeros(4, 4);
        adj[(0, 1)] = 1;
        adj[(1, 0)] = 1;
        adj[(2, 3)] = 1;
        adj[(3, 2)] = 1;
        let mut mach = TcuMachine::model(4, 0);
        let _ = seidel_apsd(&mut mach, &adj);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn directed_input_is_rejected() {
        let mut adj = Matrix::<i64>::zeros(4, 4);
        adj[(0, 1)] = 1;
        let mut mach = TcuMachine::model(4, 0);
        let _ = seidel_apsd(&mut mach, &adj);
    }
}
