//! Bounded memo for recorded op graphs and their schedules.
//!
//! The deferred algorithm paths (`strassen`, `gauss`, `closure`) record
//! a *structural* op graph — buffer shapes and region rectangles, no
//! element data — and plan it before executing. The graph depends only
//! on a handful of integer parameters, yet small problems pay the full
//! record + coalesce + level + partition cost on every call, which is
//! exactly the `strassen d=64 base=8` wall cliff in `BENCH_sched.json`:
//! planning ~8³ leaf products costs more wall-clock than the products.
//!
//! [`plan_cached`] memoizes the finished `(OpGraph, buffers, Schedule)`
//! triple at two levels:
//!
//! 1. a **parameter key** — the builder's identity and integer
//!    parameters plus everything the planner consults on the unit
//!    (`√m`, ℓ, tall-operand support, the concrete unit *type*, and the
//!    planned unit count). A hit skips the builder entirely.
//! 2. a **structural key** — [`tcu_sched::OpGraph::shape_hash`] under
//!    the same unit facts. When the parameter key misses but the built
//!    graph is shape-equal to an already-planned one (buffer names and
//!    recording order erased), the existing plan is *shared* instead of
//!    re-planned: two builders — or one builder under different tags —
//!    that record the same structure converge on one `Rc` entry, and
//!    with it one compiled [`tcu_sched::ExecutablePlan`]. Structural
//!    hits are verified by exact node/shape comparison before sharing,
//!    so a hash collision degrades to a miss, never to a wrong plan.
//!
//! Graphs are scalar-agnostic, so one entry serves every element type.
//! [`plan_cache_stats`] exposes hit/miss/share counters and the
//! wall-clock nanoseconds spent inside `Scheduler::plan`, letting
//! benchmarks report first-plan cost and amortized plan cost
//! separately.
//!
//! The memo is thread-local (plans are cheap to rebuild per thread and
//! this keeps the fast path free of locks) and FIFO-bounded at
//! [`MEMO_CAP`] entries so pathological parameter sweeps cannot retain
//! unbounded memory.

use std::any::TypeId;
use std::cell::RefCell;
use std::rc::Rc;

use tcu_core::TensorUnit;
use tcu_sched::{BufferId, OpGraph, Schedule, Scheduler};

/// Maximum number of retained plans per thread (FIFO eviction, applied
/// to the parameter index and the structural index independently).
pub const MEMO_CAP: usize = 64;

/// A recorded graph, the buffer handles its builder declared (in
/// declaration order), and the schedule planned for it.
pub struct PlannedGraph {
    /// The recorded op graph (needed to open an `ExecEnv`).
    pub graph: OpGraph,
    /// Buffer handles in the order the builder created them.
    pub bufs: Vec<BufferId>,
    /// The planned schedule for `graph`.
    pub plan: Schedule,
}

/// Everything that can change the planner's output for a fixed builder.
type Key = (
    &'static str, // builder identity
    [usize; 4],   // builder parameters (dimension, tile, stage, …)
    TypeId,       // concrete unit type (cost model)
    usize,        // √m
    u64,          // ℓ
    bool,         // tall-operand support
    usize,        // planned unit count
);

/// Everything that can change the planner's output for a fixed graph
/// *structure*: the shape hash plus the same unit facts as [`Key`].
type StructKey = (
    u64,    // OpGraph::shape_hash
    TypeId, // concrete unit type (cost model)
    usize,  // √m
    u64,    // ℓ
    bool,   // tall-operand support
    usize,  // planned unit count
);

/// Running counters of the thread's plan memo (see
/// [`plan_cache_stats`]). `hits + misses` equals the number of
/// [`plan_cached`] calls; `shared` counts the subset of hits served by
/// the structural level (a new parameter key adopting an existing
/// plan); `plan_ns` accumulates wall-clock nanoseconds spent inside
/// `Scheduler::plan` on misses — the cost hits amortize away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Calls served without running the planner.
    pub hits: u64,
    /// Calls that ran `Scheduler::plan`.
    pub misses: u64,
    /// Hits where a *new* parameter key shape-matched an existing plan.
    pub shared: u64,
    /// Nanoseconds spent planning (misses only).
    pub plan_ns: u64,
}

thread_local! {
    static MEMO: RefCell<Vec<(Key, Rc<PlannedGraph>)>> = const { RefCell::new(Vec::new()) };
    static STRUCT_MEMO: RefCell<Vec<(StructKey, Rc<PlannedGraph>)>> =
        const { RefCell::new(Vec::new()) };
    static STATS: RefCell<PlanCacheStats> = const { RefCell::new(PlanCacheStats {
        hits: 0, misses: 0, shared: 0, plan_ns: 0 }) };
}

/// Telemetry: memo outcomes as instant events on the scheduler lane of
/// the process-global recorder, when `TCU_TRACE_OUT` is set. The
/// counters in [`PlanCacheStats`] are authoritative either way; this
/// only places the hits and misses on the timeline.
fn note_memo(hit: bool) {
    if let Some(rec) = tcu_obs::env_recorder() {
        use tcu_obs::Recorder as _;
        let t = rec.now_ns();
        rec.record(
            tcu_obs::Lane::Scheduler,
            tcu_obs::SpanEvent {
                kind: if hit {
                    tcu_obs::EventKind::MemoHit
                } else {
                    tcu_obs::EventKind::MemoMiss
                },
                t_ns: t,
                dur_ns: 0,
            },
        );
    }
}

/// This thread's plan-memo counters since start (or the last
/// [`reset_plan_cache_stats`]).
#[must_use]
pub fn plan_cache_stats() -> PlanCacheStats {
    STATS.with(|s| *s.borrow())
}

/// Zero this thread's plan-memo counters (the memo itself is kept).
pub fn reset_plan_cache_stats() {
    STATS.with(|s| *s.borrow_mut() = PlanCacheStats::default());
}

/// Return the memoized plan for `(tag, dims)` under `unit`/`units`,
/// building the graph via `build` on a parameter miss and planning it
/// only if no shape-equal graph was already planned (see the module
/// docs for the two levels).
///
/// `build` must be a pure function of `(tag, dims)`: it returns the
/// recorded graph and its buffer handles, and the same inputs must
/// always produce a structurally identical graph (the memo replays the
/// cached one instead of calling it again).
pub fn plan_cached<U: TensorUnit + 'static>(
    tag: &'static str,
    dims: [usize; 4],
    unit: &U,
    units: usize,
    build: impl FnOnce() -> (OpGraph, Vec<BufferId>),
) -> Rc<PlannedGraph> {
    let key: Key = (
        tag,
        dims,
        TypeId::of::<U>(),
        unit.sqrt_m(),
        unit.latency(),
        unit.supports_tall(),
        units,
    );
    let param_hit = MEMO.with(|memo| {
        memo.borrow()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, hit)| Rc::clone(hit))
    });
    if let Some(hit) = param_hit {
        STATS.with(|s| s.borrow_mut().hits += 1);
        note_memo(true);
        return hit;
    }

    let (graph, bufs) = build();
    let skey: StructKey = (
        graph.shape_hash(),
        TypeId::of::<U>(),
        unit.sqrt_m(),
        unit.latency(),
        unit.supports_tall(),
        units,
    );
    let struct_hit = STRUCT_MEMO.with(|memo| {
        memo.borrow()
            .iter()
            .find(|(k, hit)| *k == skey && hit.graph.shape_eq(&graph))
            .map(|(_, hit)| Rc::clone(hit))
    });
    let entry = match struct_hit {
        Some(hit) => {
            // Same structure, different parameter key (builder tags or
            // recording order may differ — the plan cannot): share the
            // plan, and with it the compiled executable form.
            STATS.with(|s| {
                let mut s = s.borrow_mut();
                s.hits += 1;
                s.shared += 1;
            });
            note_memo(true);
            hit
        }
        None => {
            let t0 = std::time::Instant::now();
            let plan = Scheduler::new().with_units(units).plan(&graph, unit);
            let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            STATS.with(|s| {
                let mut s = s.borrow_mut();
                s.misses += 1;
                s.plan_ns += spent;
            });
            note_memo(false);
            let entry = Rc::new(PlannedGraph { graph, bufs, plan });
            STRUCT_MEMO.with(|memo| {
                let mut memo = memo.borrow_mut();
                if memo.len() == MEMO_CAP {
                    memo.remove(0);
                }
                memo.push((skey, Rc::clone(&entry)));
            });
            entry
        }
    };
    MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        if memo.len() == MEMO_CAP {
            memo.remove(0);
        }
        memo.push((key, Rc::clone(&entry)));
    });
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::{ModelTensorUnit, TensorOp};
    use tcu_sched::OperandRef;

    fn tiny_graph(d: usize) -> (OpGraph, Vec<BufferId>) {
        let mut g = OpGraph::new();
        let a = g.buffer("A", d, d);
        let b = g.buffer("B", d, d);
        let c = g.buffer("C", d, d);
        g.record(
            TensorOp::padded(d, d, d),
            OperandRef::new(a, 0, 0, d, d),
            OperandRef::new(b, 0, 0, d, d),
            OperandRef::new(c, 0, 0, d, d),
        );
        (g, vec![a, b, c])
    }

    /// `tiny_graph` with different buffer names — shape-equal to it.
    fn tiny_graph_renamed(d: usize) -> (OpGraph, Vec<BufferId>) {
        let mut g = OpGraph::new();
        let a = g.buffer("Left", d, d);
        let b = g.buffer("Right", d, d);
        let c = g.buffer("Out", d, d);
        g.record(
            TensorOp::padded(d, d, d),
            OperandRef::new(a, 0, 0, d, d),
            OperandRef::new(b, 0, 0, d, d),
            OperandRef::new(c, 0, 0, d, d),
        );
        (g, vec![a, b, c])
    }

    #[test]
    fn hit_returns_the_same_plan_and_skips_the_builder() {
        let unit = ModelTensorUnit::new(16, 3);
        let first = plan_cached("test-tiny", [4, 0, 0, 0], &unit, 1, || tiny_graph(4));
        let second = plan_cached("test-tiny", [4, 0, 0, 0], &unit, 1, || {
            panic!("builder must not run on a hit")
        });
        assert!(Rc::ptr_eq(&first, &second));
        assert_eq!(first.bufs.len(), 3);
    }

    #[test]
    fn distinct_parameters_and_units_get_distinct_plans() {
        let unit = ModelTensorUnit::new(64, 3);
        let a = plan_cached("test-param", [4, 0, 0, 0], &unit, 1, || tiny_graph(4));
        let b = plan_cached("test-param", [8, 0, 0, 0], &unit, 1, || tiny_graph(8));
        assert!(!Rc::ptr_eq(&a, &b));
        let slow = ModelTensorUnit::new(64, 999);
        let c = plan_cached("test-param", [4, 0, 0, 0], &slow, 1, || tiny_graph(4));
        assert!(!Rc::ptr_eq(&a, &c), "latency is part of the key");
    }

    #[test]
    fn shape_equal_graphs_share_one_plan_across_tags() {
        // Two different builder identities record name-differing but
        // shape-equal graphs: the second must adopt the first's plan
        // (same Rc) without planning again.
        let unit = ModelTensorUnit::new(64, 21);
        let before = plan_cache_stats();
        let a = plan_cached("test-share-a", [6, 0, 0, 0], &unit, 1, || tiny_graph(6));
        let b = plan_cached("test-share-b", [6, 0, 0, 0], &unit, 1, || {
            tiny_graph_renamed(6)
        });
        assert!(Rc::ptr_eq(&a, &b), "structural sharing must reuse the Rc");
        let after = plan_cache_stats();
        assert_eq!(after.misses - before.misses, 1, "one plan for both tags");
        assert_eq!(after.shared, before.shared + 1);
        assert!(after.plan_ns > before.plan_ns, "the one miss was timed");

        // A parameter hit on the adopted key keeps returning the shared
        // entry without touching the builder.
        let c = plan_cached("test-share-b", [6, 0, 0, 0], &unit, 1, || {
            panic!("builder must not run on a hit")
        });
        assert!(Rc::ptr_eq(&a, &c));
    }

    #[test]
    fn different_shapes_never_share() {
        let unit = ModelTensorUnit::new(64, 22);
        let a = plan_cached("test-noshare-a", [4, 0, 0, 0], &unit, 1, || tiny_graph(4));
        let b = plan_cached("test-noshare-b", [8, 0, 0, 0], &unit, 1, || tiny_graph(8));
        assert!(!Rc::ptr_eq(&a, &b), "different dims must not share");
    }

    #[test]
    fn memo_is_fifo_bounded() {
        let unit = ModelTensorUnit::new(16, 5);
        let first = plan_cached("test-cap", [0, 0, 0, 1], &unit, 1, || tiny_graph(4));
        for i in 1..=MEMO_CAP {
            let _ = plan_cached("test-cap", [i, 0, 0, 1], &unit, 1, || tiny_graph(4));
        }
        // The oldest entry was evicted from the parameter index: the
        // builder must run again. The rebuilt graph is shape-equal to a
        // structurally retained one, so the plan itself is re-adopted,
        // not re-planned.
        let mut rebuilt = false;
        let again = plan_cached("test-cap", [0, 0, 0, 1], &unit, 1, || {
            rebuilt = true;
            tiny_graph(4)
        });
        assert!(rebuilt, "FIFO eviction must drop the oldest entry");
        assert!(
            Rc::ptr_eq(&first, &again),
            "the structural level re-adopts the still-live shape-equal plan"
        );
    }
}
