//! Bounded memo for recorded op graphs and their schedules.
//!
//! The deferred algorithm paths (`strassen`, `gauss`, `closure`) record
//! a *structural* op graph — buffer shapes and region rectangles, no
//! element data — and plan it before executing. The graph depends only
//! on a handful of integer parameters, yet small problems pay the full
//! record + coalesce + level + partition cost on every call, which is
//! exactly the `strassen d=64 base=8` wall cliff in `BENCH_sched.json`:
//! planning ~8³ leaf products costs more wall-clock than the products.
//!
//! [`plan_cached`] keys the finished `(OpGraph, buffers, Schedule)`
//! triple by the builder's identity and parameters plus everything the
//! planner consults on the unit (`√m`, ℓ, tall-operand support, the
//! concrete unit *type*, and the planned unit count), so a replayed
//! call re-uses the plan and goes straight to binding and execution.
//! Graphs are scalar-agnostic, so one entry serves every element type.
//!
//! The memo is thread-local (plans are cheap to rebuild per thread and
//! this keeps the fast path free of locks) and FIFO-bounded at
//! [`MEMO_CAP`] entries so pathological parameter sweeps cannot retain
//! unbounded memory.

use std::any::TypeId;
use std::cell::RefCell;
use std::rc::Rc;

use tcu_core::TensorUnit;
use tcu_sched::{BufferId, OpGraph, Schedule, Scheduler};

/// Maximum number of retained plans per thread (FIFO eviction).
pub const MEMO_CAP: usize = 64;

/// A recorded graph, the buffer handles its builder declared (in
/// declaration order), and the schedule planned for it.
pub struct PlannedGraph {
    /// The recorded op graph (needed to open an `ExecEnv`).
    pub graph: OpGraph,
    /// Buffer handles in the order the builder created them.
    pub bufs: Vec<BufferId>,
    /// The planned schedule for `graph`.
    pub plan: Schedule,
}

/// Everything that can change the planner's output for a fixed builder.
type Key = (
    &'static str, // builder identity
    [usize; 4],   // builder parameters (dimension, tile, stage, …)
    TypeId,       // concrete unit type (cost model)
    usize,        // √m
    u64,          // ℓ
    bool,         // tall-operand support
    usize,        // planned unit count
);

thread_local! {
    static MEMO: RefCell<Vec<(Key, Rc<PlannedGraph>)>> = const { RefCell::new(Vec::new()) };
}

/// Return the memoized plan for `(tag, dims)` under `unit`/`units`,
/// building and planning the graph via `build` on a miss.
///
/// `build` must be a pure function of `(tag, dims)`: it returns the
/// recorded graph and its buffer handles, and the same inputs must
/// always produce a structurally identical graph (the memo replays the
/// cached one instead of calling it again).
pub fn plan_cached<U: TensorUnit + 'static>(
    tag: &'static str,
    dims: [usize; 4],
    unit: &U,
    units: usize,
    build: impl FnOnce() -> (OpGraph, Vec<BufferId>),
) -> Rc<PlannedGraph> {
    let key: Key = (
        tag,
        dims,
        TypeId::of::<U>(),
        unit.sqrt_m(),
        unit.latency(),
        unit.supports_tall(),
        units,
    );
    MEMO.with(|memo| {
        if let Some((_, hit)) = memo.borrow().iter().find(|(k, _)| *k == key) {
            return Rc::clone(hit);
        }
        let (graph, bufs) = build();
        let plan = Scheduler::new().with_units(units).plan(&graph, unit);
        let entry = Rc::new(PlannedGraph { graph, bufs, plan });
        let mut memo = memo.borrow_mut();
        if memo.len() == MEMO_CAP {
            memo.remove(0);
        }
        memo.push((key, Rc::clone(&entry)));
        entry
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::{ModelTensorUnit, TensorOp};
    use tcu_sched::OperandRef;

    fn tiny_graph(d: usize) -> (OpGraph, Vec<BufferId>) {
        let mut g = OpGraph::new();
        let a = g.buffer("A", d, d);
        let b = g.buffer("B", d, d);
        let c = g.buffer("C", d, d);
        g.record(
            TensorOp::padded(d, d, d),
            OperandRef::new(a, 0, 0, d, d),
            OperandRef::new(b, 0, 0, d, d),
            OperandRef::new(c, 0, 0, d, d),
        );
        (g, vec![a, b, c])
    }

    #[test]
    fn hit_returns_the_same_plan_and_skips_the_builder() {
        let unit = ModelTensorUnit::new(16, 3);
        let first = plan_cached("test-tiny", [4, 0, 0, 0], &unit, 1, || tiny_graph(4));
        let second = plan_cached("test-tiny", [4, 0, 0, 0], &unit, 1, || {
            panic!("builder must not run on a hit")
        });
        assert!(Rc::ptr_eq(&first, &second));
        assert_eq!(first.bufs.len(), 3);
    }

    #[test]
    fn distinct_parameters_and_units_get_distinct_plans() {
        let unit = ModelTensorUnit::new(16, 3);
        let a = plan_cached("test-param", [4, 0, 0, 0], &unit, 1, || tiny_graph(4));
        let b = plan_cached("test-param", [8, 0, 0, 0], &unit, 1, || tiny_graph(4));
        assert!(!Rc::ptr_eq(&a, &b));
        let slow = ModelTensorUnit::new(16, 999);
        let c = plan_cached("test-param", [4, 0, 0, 0], &slow, 1, || tiny_graph(4));
        assert!(!Rc::ptr_eq(&a, &c), "latency is part of the key");
    }

    #[test]
    fn memo_is_fifo_bounded() {
        let unit = ModelTensorUnit::new(16, 5);
        let first = plan_cached("test-cap", [0, 0, 0, 1], &unit, 1, || tiny_graph(4));
        for i in 1..=MEMO_CAP {
            let _ = plan_cached("test-cap", [i, 0, 0, 1], &unit, 1, || tiny_graph(4));
        }
        // The oldest entry was evicted: the builder must run again.
        let mut rebuilt = false;
        let again = plan_cached("test-cap", [0, 0, 0, 1], &unit, 1, || {
            rebuilt = true;
            tiny_graph(4)
        });
        assert!(rebuilt, "FIFO eviction must drop the oldest entry");
        assert!(!Rc::ptr_eq(&first, &again));
    }
}
