//! Dense matrix multiplication on the TCU — §4.1, Theorem 2 and
//! Corollary 1.
//!
//! The Theorem 2 algorithm splits the right operand `B` into `√m × √m`
//! blocks and the left operand `A` into *vertical strips* of width `√m`.
//! For each block `B_{k,j}`, the unit loads it as the resident weights and
//! streams the entire strip `A_k` (all `√n` rows) through — one tensor
//! invocation per block, `n/m` invocations in total — then the strip
//! products are accumulated on the CPU. Total simulated time
//!
//! ```text
//!   Θ( n^{3/2}/√m  +  (n/m)·ℓ )        (n = d², d = matrix dimension)
//! ```
//!
//! which Theorem 2 proves optimal for semiring algorithms. The same
//! routine run on a *weak* machine (square calls only) pays latency per
//! square tile instead — `(n/m)^{3/2}·ℓ` — quantifying the value of the
//! model's asymmetric tall-operand feature (experiment E2's ablation).
//!
//! [`multiply_naive_order`] is the other ablation: the classic
//! `i,j,k`-blocked order that reloads the weights for every `√m × √m`
//! product and therefore pays `Θ((n/m)^{3/2})` invocations even on the
//! strong machine.

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Matrix, MatrixView, Scalar};

/// Blocked square multiplication (Theorem 2): `C = A·B` for `d × d`
/// operands.
///
/// # Panics
/// Panics unless `A` and `B` are square of equal dimension `d` with
/// `√m | d`. Use [`multiply_rect`] for general shapes.
#[must_use]
pub fn multiply<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    multiply_view(mach, a.view(), b.view())
}

/// [`multiply`] on borrowed operand views (zero-copy: strips and weight
/// blocks are subviews, never materialized).
///
/// # Panics
/// Panics unless the views are square of equal dimension `d` with
/// `√m | d`.
#[must_use]
pub fn multiply_view<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
) -> Matrix<T> {
    let d = a.rows();
    assert!(
        a.cols() == d && b.rows() == d && b.cols() == d,
        "operands must be d×d"
    );
    let s = mach.sqrt_m();
    assert!(
        d.is_multiple_of(s),
        "√m = {s} must divide d = {d} (pad or use multiply_rect)"
    );
    multiply_rect_view(mach, a, b)
}

/// Rectangular multiplication (Corollary 1 and the general workhorse):
/// `C = A·B` for `A : p × r`, `B : r × q`, any shapes.
///
/// Ragged dimensions are zero-padded to the unit's footprint; the charge
/// is that of the padded calls (hardware runs full tiles regardless).
///
/// # Panics
/// Panics if inner dimensions disagree.
#[must_use]
pub fn multiply_rect<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    multiply_rect_view(mach, a.view(), b.view())
}

/// [`multiply_rect`] on borrowed operand views: every strip of `A` and
/// block of `B` is carved as a subview and streamed straight into the
/// tensor unit — the seed's per-invocation `block`/`col_strip` copies
/// are gone, and the simulated charges are unchanged.
///
/// # Panics
/// Panics if inner dimensions disagree.
#[must_use]
pub fn multiply_rect_view<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (p, r, q) = (a.rows(), a.cols(), b.cols());
    let s = mach.sqrt_m();
    let kb = r.div_ceil(s).max(1);
    let jb = q.div_ceil(s).max(1);

    let mut c = Matrix::<T>::zeros(p, q);
    for j in 0..jb {
        let jw = s.min(q - j * s);
        for k in 0..kb {
            let kw = s.min(r - k * s);
            // Strip of A: all p rows, columns [k·s, k·s + kw).
            let strip = a.subview(0, k * s, p, kw);
            let blk = b.subview(k * s, j * s, kw, jw);
            if kw == s && jw == s && p >= s {
                // Hot path: stream the strip with the product fused into
                // C's column block — no intermediate product matrix.
                let mut out = c.subview_mut(0, j * s, p, jw);
                mach.tensor_mul_acc_view(strip, blk, &mut out);
            } else {
                let prod = mach.tensor_mul_padded_view(strip, blk);
                c.subview_mut(0, j * s, p, jw).add_assign(prod.view());
            }
            if k > 0 {
                // CPU accumulation of strip products (Theorem 2's
                // "final summation"): one add per output element. The
                // host fuses the add into the kernel, the simulated
                // charge is unchanged.
                mach.charge((p * jw) as u64);
            }
        }
    }
    c
}

/// Deferred fast path (feature `sched`): record the Theorem 2 blocked
/// flow into a `tcu-sched` op graph and run the coalesced schedule.
///
/// With the natural block size `√m` the recorded stream is identical to
/// [`multiply`]'s op-for-op (nothing can merge) and the simulated
/// `Stats` totals match the eager path exactly — what the pack cache
/// then removes is host-side strip re-packing, not model charges. With
/// a *smaller* block size (see [`multiply_scheduled_blocked`]) the
/// scheduler's width/inner merging rebuilds full-footprint invocations
/// out of the narrow recording, recovering the model-optimal charge
/// from suboptimally-blocked code.
///
/// # Panics
/// Panics unless operands are square of equal dimension `d` with `√m | d`.
#[cfg(feature = "sched")]
#[must_use]
pub fn multiply_scheduled<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let s = mach.sqrt_m();
    multiply_scheduled_blocked(mach, a, b, s)
}

/// [`multiply_scheduled`] with an explicit recording block size
/// `blk ≤ √m` (the coalescing ablation: a block-`blk` recording on a
/// `√m`-unit machine merges `(√m/blk)²` narrow ops into each emitted
/// invocation). For non-`√m` blocks the merged inner chains reassociate
/// per-element sums, so use ring scalars (integers, `F_p`) when exact
/// equality with the eager path matters; at `blk = √m` results are
/// bit-identical for every scalar type.
///
/// # Panics
/// Panics unless operands are square of equal dimension `d`, with
/// `blk | d`, `blk | √m`, and `d ≥ √m`.
#[cfg(feature = "sched")]
#[must_use]
pub fn multiply_scheduled_blocked<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    blk: usize,
) -> Matrix<T> {
    try_multiply_scheduled_blocked(mach, a, b, blk).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`multiply_scheduled_blocked`]: execution faults
/// (binding, validation, unit failures) surface as
/// [`tcu_core::TcuError`] instead of panicking. Shape preconditions on
/// the operands still panic — they are caller bugs, not runtime faults.
///
/// # Errors
/// Propagates any [`tcu_core::TcuError`] from [`tcu_sched::Schedule::try_run`].
#[cfg(feature = "sched")]
pub fn try_multiply_scheduled_blocked<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    blk: usize,
) -> Result<Matrix<T>, tcu_core::TcuError> {
    use tcu_core::{PadPolicy, TensorOp};
    use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    let d = a.rows();
    assert!(
        a.cols() == d && b.rows() == d && b.cols() == d,
        "operands must be d×d"
    );
    let s = mach.sqrt_m();
    assert!(
        blk >= 1 && d.is_multiple_of(blk) && s.is_multiple_of(blk) && d >= s,
        "need blk | d, blk | √m = {s}, d ≥ √m (got blk = {blk}, d = {d})"
    );

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / blk;
    let pad = if blk == s {
        PadPolicy::Strict
    } else {
        PadPolicy::ZeroPad
    };
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp {
                    rows: d,
                    inner: blk,
                    width: blk,
                    accumulate: true,
                    pad,
                },
                OperandRef::new(ab, 0, k * blk, d, blk),
                OperandRef::new(bb, k * blk, j * blk, blk, blk),
                OperandRef::new(cb, 0, j * blk, d, blk),
            );
        }
    }

    let plan = Scheduler::new().plan(&g, mach.unit());
    let mut c = Matrix::<T>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.try_bind_input(ab, a.view())?;
    env.try_bind_input(bb, b.view())?;
    env.try_bind_output(cb, c.view_mut())?;
    plan.try_run(mach, &mut env)?;

    // Theorem 2's final summation, billed per *emitted* op: every
    // column of C pays one add per accumulate pass beyond the first.
    // Coalescing reduces this too — a merged k-chain sums inside the
    // invocation instead of on the CPU.
    let mut passes = vec![0u64; d];
    for sn in plan.nodes() {
        for p in &mut passes[sn.node.out.c0..sn.node.out.c0 + sn.node.out.cols] {
            *p += 1;
        }
    }
    let adds: u64 = passes.iter().map(|&p| (p - 1) * d as u64).sum();
    mach.charge(adds);
    Ok(c)
}

/// Ablation: the classic three-loop blocked order, issuing one *square*
/// tensor invocation per `(i, k, j)` block triple. Correct, but reloads
/// the weights constantly: `(d/√m)³` invocations instead of `(d/√m)²`,
/// so the latency term grows from `(n/m)·ℓ` to `(n/m)^{3/2}·ℓ`.
///
/// # Panics
/// Panics unless operands are square of equal dimension `d` with `√m | d`.
#[must_use]
pub fn multiply_naive_order<T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let d = a.rows();
    assert!(
        a.is_square() && b.is_square() && b.rows() == d,
        "operands must be d×d"
    );
    let s = mach.sqrt_m();
    assert!(d.is_multiple_of(s), "√m = {s} must divide d = {d}");
    let qb = d / s;
    let mut c = Matrix::<T>::zeros(d, d);
    for i in 0..qb {
        for j in 0..qb {
            for k in 0..qb {
                let mut out = c.subview_mut(i * s, j * s, s, s);
                mach.tensor_mul_acc_view(
                    a.subview(i * s, k * s, s, s),
                    b.subview(k * s, j * s, s, s),
                    &mut out,
                );
                mach.charge((s * s) as u64);
            }
        }
    }
    c
}

/// Exact simulated time of [`multiply`] on a *model* machine for `d × d`
/// operands with `√m = s` dividing `d` and latency `l`:
/// `(d/s)²` invocations of `d` rows plus `(d/s)·(d/s − 1)` strip adds of
/// `d·s` elements.
#[must_use]
pub fn multiply_time(d: u64, s: u64, l: u64) -> u64 {
    let q = d / s;
    q * q * (d * s + l) + q * (q - 1) * d * s
}

/// Exact simulated time of [`multiply_naive_order`] on a model machine.
#[must_use]
pub fn multiply_naive_order_time(d: u64, s: u64, l: u64) -> u64 {
    let q = d / s;
    q * q * q * (s * s + l) + q * q * q * s * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::TcuMachine;
    use tcu_linalg::ops::matmul_naive;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
        })
    }

    #[test]
    fn blocked_matches_naive_square() {
        let mut mach = TcuMachine::model(16, 11);
        for d in [4usize, 8, 16, 32] {
            let a = pseudo(d, d, 1);
            let b = pseudo(d, d, 2);
            assert_eq!(multiply(&mut mach, &a, &b), matmul_naive(&a, &b), "d = {d}");
        }
    }

    #[test]
    fn rect_matches_naive_with_ragged_shapes() {
        let mut mach = TcuMachine::model(16, 3);
        for (p, r, q) in [
            (5usize, 3usize, 7usize),
            (4, 4, 4),
            (9, 17, 2),
            (1, 1, 1),
            (12, 8, 20),
        ] {
            let a = pseudo(p, r, 3);
            let b = pseudo(r, q, 4);
            assert_eq!(
                multiply_rect(&mut mach, &a, &b),
                matmul_naive(&a, &b),
                "{p}x{r}x{q}"
            );
        }
    }

    #[test]
    fn naive_order_matches_naive() {
        let mut mach = TcuMachine::model(16, 7);
        let a = pseudo(16, 16, 5);
        let b = pseudo(16, 16, 6);
        assert_eq!(
            multiply_naive_order(&mut mach, &a, &b),
            matmul_naive(&a, &b)
        );
    }

    #[test]
    fn cost_is_exactly_theorem_2() {
        let (m, l) = (16u64, 1000u64);
        let s = 4u64;
        for d in [8u64, 16, 32] {
            let mut mach = TcuMachine::model(m as usize, l);
            let a = pseudo(d as usize, d as usize, 7);
            let b = pseudo(d as usize, d as usize, 8);
            let _ = multiply(&mut mach, &a, &b);
            assert_eq!(mach.time(), multiply_time(d, s, l), "d = {d}");
            // Tensor-call count is (d/s)², each streaming d rows.
            assert_eq!(mach.stats().tensor_calls, (d / s) * (d / s));
            assert_eq!(mach.stats().tensor_rows, (d / s) * (d / s) * d);
            // Latency term is exactly (n/m)·ℓ.
            assert_eq!(mach.stats().tensor_latency_time, (d / s) * (d / s) * l);
        }
    }

    #[test]
    fn naive_order_cost_formula() {
        let (m, l) = (16usize, 500u64);
        let d = 16usize;
        let mut mach = TcuMachine::model(m, l);
        let a = pseudo(d, d, 9);
        let b = pseudo(d, d, 10);
        let _ = multiply_naive_order(&mut mach, &a, &b);
        assert_eq!(mach.time(), multiply_naive_order_time(d as u64, 4, l));
        assert_eq!(mach.stats().tensor_calls, 4 * 4 * 4);
    }

    #[test]
    fn tall_streaming_beats_naive_order_on_latency() {
        // Same product, same machine parameters: the Theorem 2 order must
        // pay a factor d/s fewer latencies.
        let (m, l) = (16usize, 10_000u64);
        let d = 32usize;
        let a = pseudo(d, d, 11);
        let b = pseudo(d, d, 12);

        let mut fast = TcuMachine::model(m, l);
        let _ = multiply(&mut fast, &a, &b);
        let mut slow = TcuMachine::model(m, l);
        let _ = multiply_naive_order(&mut slow, &a, &b);

        let q = (d / 4) as u64;
        assert_eq!(fast.stats().tensor_latency_time, q * q * l);
        assert_eq!(slow.stats().tensor_latency_time, q * q * q * l);
        assert!(slow.time() > fast.time());
    }

    #[test]
    fn weak_machine_pays_latency_per_tile() {
        // Theorem 2's algorithm on the §5 weak model: every strip call
        // splits into d/s square invocations, so the latency term becomes
        // (n/m)^{3/2}·ℓ.
        let (m, l) = (16usize, 1_000u64);
        let d = 32usize;
        let a = pseudo(d, d, 13);
        let b = pseudo(d, d, 14);
        let mut weak = TcuMachine::weak(m, l);
        let c = multiply(&mut weak, &a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        let q = (d / 4) as u64;
        assert_eq!(weak.stats().tensor_calls, q * q * q);
        assert_eq!(weak.stats().tensor_latency_time, q * q * q * l);
    }

    #[test]
    fn rectangular_cost_matches_corollary_1() {
        // √n × r times r × √n with r ≤ √n: time Θ(r·n/√m + (r√n/m)·ℓ).
        let (m, l) = (16u64, 100u64);
        let s = 4u64;
        let (d, r) = (32u64, 8u64);
        let a = pseudo(d as usize, r as usize, 15);
        let b = pseudo(r as usize, d as usize, 16);
        let mut mach = TcuMachine::model(m as usize, l);
        let _ = multiply_rect(&mut mach, &a, &b);
        // (r/s)·(d/s) invocations, each streaming d rows.
        let calls = (r / s) * (d / s);
        assert_eq!(mach.stats().tensor_calls, calls);
        assert_eq!(mach.stats().tensor_latency_time, calls * l);
        // adds: per output column-block, (r/s − 1) strip adds of d·s.
        let adds = (d / s) * (r / s - 1) * d * s;
        assert_eq!(mach.time(), calls * (d * s + l) + adds);
    }

    #[test]
    fn identity_multiplication_on_machine() {
        let mut mach = TcuMachine::model(4, 0);
        let a = pseudo(6, 6, 17);
        let id = Matrix::<i64>::identity(6);
        assert_eq!(multiply(&mut mach, &a, &id), a);
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_at_native_block_matches_eager_stats_exactly() {
        let (m, l) = (16usize, 1000u64);
        for d in [16usize, 32, 64] {
            let a = pseudo(d, d, 21);
            let b = pseudo(d, d, 22);
            let mut eager = TcuMachine::model(m, l);
            let want = multiply(&mut eager, &a, &b);
            let mut sched = TcuMachine::model(m, l);
            sched.executor_mut().enable_pack_cache(d / 4);
            let got = multiply_scheduled(&mut sched, &a, &b);
            assert_eq!(got, want, "d = {d}");
            assert_eq!(got, matmul_naive(&a, &b), "d = {d}");
            // Same op multiset, same CPU summation bill: full parity.
            assert_eq!(sched.stats(), eager.stats(), "d = {d}");
            // Every strip packed once, reused across the block columns.
            let cache = sched.executor().pack_cache_stats().expect("cache on");
            assert_eq!(cache.misses, (d / 4) as u64, "d = {d}");
        }
    }

    #[cfg(feature = "sched")]
    #[test]
    fn narrow_recording_coalesces_back_to_native_charges() {
        // Block-2 recording on a √m = 4 machine: the scheduler merges
        // each 2×2-of-narrow-ops group into one full-footprint op, so
        // the charge matches the natively-blocked flow (modulo the CPU
        // adds the merged k-chains absorb), and results stay exact.
        let (m, l) = (16usize, 500u64);
        let d = 32usize;
        let a = pseudo(d, d, 23);
        let b = pseudo(d, d, 24);
        let mut native = TcuMachine::model(m, l);
        let want = multiply(&mut native, &a, &b);
        let mut narrow = TcuMachine::model(m, l);
        let got = multiply_scheduled_blocked(&mut narrow, &a, &b, 2);
        assert_eq!(got, want);
        // Full parity with the natively-blocked flow: merging rebuilds
        // the same invocation grid (charge rows pad to the footprint
        // either way) and the same per-column add chains.
        assert_eq!(narrow.stats(), native.stats());
        // The un-coalesced narrow recording would have paid 4× the
        // calls — (d/2)² instead of (d/4)².
        let q = (d / 2) as u64;
        assert_eq!(native.stats().tensor_calls * 4, q * q);
    }
}
