//! Blocked Gaussian elimination without pivoting on the TCU — §4.2,
//! Theorem 4 (paper Figure 4).
//!
//! The `√n × √n` augmented matrix is split into `√m × √m` blocks
//! `X_{i,j}`. Iteration `k` of the outer loop factorizes the diagonal
//! block (`A`), eliminates the block row (`B`, which also emits the scaled
//! block `X'_j = −X_{k,j}/diag`), prepares the block column (`C`), and
//! applies the Schur-complement update `X_{i,j} += X_{i,k}·X'_j` (`D`).
//! Only `D` runs on the tensor unit: `X'_j` is loaded as the resident
//! weights and all blocks `X_{i,k}` (`i > k`) are streamed through as one
//! tall left operand — `(√n/√m − k)√m` rows per invocation, which is where
//! the `n·ℓ/m` (instead of `(n/m)^{3/2}·ℓ`) latency term comes from.
//!
//! Theorem 4: time `Θ(n^{3/2}/√m + (n/m)·ℓ + n·√m)`; the trailing `n√m`
//! term is the CPU work in kernels `A`, `B`, `C`, and it is dominated by
//! the first term exactly when `√n ≥ m`.
//!
//! In exact arithmetic the blocked elimination produces the *same matrix*
//! as the unblocked Figure 2 loop ([`tcu_linalg::decomp::ge_forward_host`]);
//! the tests check full-matrix agreement over both `f64` (tolerance) and
//! the prime field `F_p` (equality).

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Field, Matrix};

/// Forward phase of blocked Gaussian elimination (paper Figure 4),
/// in place on the `√n × √n` augmented matrix.
///
/// # Panics
/// Panics unless `x` is square with `√m | √n`, or if a pivot used by the
/// no-pivoting scheme is zero.
pub fn ge_forward<T: Field, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<T>,
) {
    let d = x.rows();
    assert!(x.is_square(), "augmented matrix must be square");
    let s = mach.sqrt_m();
    assert!(d.is_multiple_of(s), "√m = {s} must divide √n = {d}");
    let q = d / s;

    for kk in 0..q {
        // A( X_kk ): in-block elimination.
        let mut xkk = x.block(kk * s, kk * s, s, s);
        kernel_a(mach, &mut xkk);
        x.set_block(kk * s, kk * s, &xkk);

        // B( X_kj, X_kk, X'_j ): eliminate the block row, emit scaled blocks.
        let mut xprime: Vec<Matrix<T>> = Vec::with_capacity(q - kk - 1);
        for j in kk + 1..q {
            let mut xkj = x.block(kk * s, j * s, s, s);
            let xp = kernel_b(mach, &mut xkj, &xkk);
            x.set_block(kk * s, j * s, &xkj);
            xprime.push(xp);
        }

        // C( X_ik, X_kk ): prepare the block column.
        for i in kk + 1..q {
            let mut xik = x.block(i * s, kk * s, s, s);
            kernel_c(mach, &mut xik, &xkk);
            x.set_block(i * s, kk * s, &xik);
        }

        // D( X_ij, X_ik, X'_j ) on the tensor unit: per block column j,
        // load X'_j as weights and stream every X_ik at once. The block
        // column is a contiguous row range of X but the blocks are not
        // adjacent in memory, so the tall operand is the one gather this
        // algorithm still materializes; products and accumulation flow
        // through zero-copy views.
        let rows = (q - kk - 1) * s;
        if rows == 0 {
            continue;
        }
        let mut tall = Matrix::<T>::zeros(rows, s);
        for (bi, i) in (kk + 1..q).enumerate() {
            tall.set_block_view(bi * s, 0, x.subview(i * s, kk * s, s, s));
        }
        for (bj, j) in (kk + 1..q).enumerate() {
            let prod = mach.tensor_mul_view(tall.view(), xprime[bj].view());
            for (bi, i) in (kk + 1..q).enumerate() {
                // Accumulate P into X_ij in place: one CPU add per element.
                mach.charge((s * s) as u64);
                x.subview_mut(i * s, j * s, s, s)
                    .add_assign(prod.subview(bi * s, 0, s, s));
            }
        }
    }
}

/// Deferred fast path (feature `sched`): [`ge_forward`] with every
/// stage's Schur-complement update (`D` kernels) recorded into a
/// `tcu-sched` op graph and run as a planned, tagged stream.
///
/// This is the versioned pipeline capability at work: the graph reads
/// the pivot *panel* of `X` — the column of blocks below the diagonal —
/// while accumulating into `X`'s trailing block columns, so one buffer
/// is both streamed and updated (the pre-versioned planner rejected
/// exactly this). The panel is the stream's only left operand, which is
/// the pack cache's best case: packed once per stage, re-used for every
/// remaining block column. Model accounting is identical to the eager
/// path — same tall invocations, same CPU charges (the fused
/// accumulates absorb the per-block adds on the host, but Theorem 2's
/// final summation is still billed) — and results are bit-identical for
/// every `Field` scalar, floats included (the fused accumulate performs
/// the same per-element sum as product-then-add).
///
/// # Panics
/// Panics unless `x` is square with `√m | √n`, or if a pivot used by
/// the no-pivoting scheme is zero.
#[cfg(feature = "sched")]
pub fn eliminate_scheduled<T: Field, U: TensorUnit + 'static, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<T>,
) {
    try_eliminate_scheduled(mach, x).unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible form of [`eliminate_scheduled`]: execution faults surface
/// as [`tcu_core::TcuError`] instead of panicking. Shape preconditions
/// still panic — they are caller bugs, not runtime faults.
///
/// # Errors
/// Propagates any [`tcu_core::TcuError`] from [`tcu_sched::Schedule::try_run`].
#[cfg(feature = "sched")]
pub fn try_eliminate_scheduled<T: Field, U: TensorUnit + 'static, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<T>,
) -> Result<(), tcu_core::TcuError> {
    use crate::plan_memo::plan_cached;
    use tcu_core::TensorOp;
    use tcu_sched::{ExecEnv, OpGraph, OperandRef};

    let d = x.rows();
    assert!(x.is_square(), "augmented matrix must be square");
    let s = mach.sqrt_m();
    assert!(d.is_multiple_of(s), "√m = {s} must divide √n = {d}");
    let q = d / s;

    for kk in 0..q {
        // A, B, C: the same CPU kernels as the eager path.
        let mut xkk = x.block(kk * s, kk * s, s, s);
        kernel_a(mach, &mut xkk);
        x.set_block(kk * s, kk * s, &xkk);

        let mut xprime: Vec<Matrix<T>> = Vec::with_capacity(q - kk - 1);
        for j in kk + 1..q {
            let mut xkj = x.block(kk * s, j * s, s, s);
            let xp = kernel_b(mach, &mut xkj, &xkk);
            x.set_block(kk * s, j * s, &xkj);
            xprime.push(xp);
        }
        for i in kk + 1..q {
            let mut xik = x.block(i * s, kk * s, s, s);
            kernel_c(mach, &mut xik, &xkk);
            x.set_block(i * s, kk * s, &xik);
        }

        let rem = q - kk - 1;
        if rem == 0 {
            continue;
        }
        // The scaled pivot-row blocks, side by side, are the weights.
        let mut w = Matrix::<T>::zeros(s, rem * s);
        for (bj, xp) in xprime.iter().enumerate() {
            w.set_block(0, bj * s, xp);
        }
        // D as a recorded stream: per trailing block column j, stream
        // X's own pivot panel (contiguous below the diagonal — no
        // gather) against W_j, accumulating straight into X's column.
        // The stage graph is a pure function of (d, s, kk), so its plan
        // is memoized across calls (repeated eliminations at the same
        // shape skip planning entirely).
        let rows = rem * s;
        let planned = plan_cached("gauss-d", [d, s, kk, 0], mach.unit(), 1, || {
            let mut g = OpGraph::new();
            let xb = g.buffer("X", d, d);
            let wb = g.buffer("W", s, rem * s);
            let panel = OperandRef::new(xb, (kk + 1) * s, kk * s, rows, s);
            for (bj, j) in (kk + 1..q).enumerate() {
                g.record(
                    TensorOp::mul_acc(rows, s),
                    panel,
                    OperandRef::new(wb, 0, bj * s, s, s),
                    OperandRef::new(xb, (kk + 1) * s, j * s, rows, s),
                );
            }
            (g, vec![xb, wb])
        });
        let (xb, wb) = (planned.bufs[0], planned.bufs[1]);
        let mut env = ExecEnv::new(&planned.graph);
        env.try_bind_input(wb, w.view())?;
        env.try_bind_output(xb, x.view_mut())?;
        planned.plan.try_run(mach, &mut env)?;
        // The fused accumulates absorbed the eager path's per-block host
        // adds; the model still bills them as CPU work, so Stats match
        // the eager run exactly.
        mach.charge((rem * rem * s * s) as u64);
    }
    Ok(())
}

/// Kernel `A` (Figure 4): unblocked no-pivot elimination inside one
/// `√m × √m` block; 3 scalar ops per inner iteration.
fn kernel_a<T: Field, U: TensorUnit, E: Executor>(mach: &mut TcuMachine<U, E>, x: &mut Matrix<T>) {
    let s = x.rows();
    let mut ops = 0u64;
    for k in 0..s.saturating_sub(1) {
        let pivot = x[(k, k)];
        for i in k + 1..s {
            for j in k + 1..s {
                let delta = x[(i, k)].mul(x[(k, j)]).div(pivot);
                x[(i, j)] = x[(i, j)].sub(delta);
                ops += 3;
            }
        }
    }
    mach.charge(ops);
}

/// Kernel `B` (Figure 4): eliminate a block `X` in the pivot block row
/// using the diagonal block `Y`, then return `X'` with
/// `X'[i,j] = −X[i,j]/Y[i,i]`.
fn kernel_b<T: Field, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<T>,
    y: &Matrix<T>,
) -> Matrix<T> {
    let s = x.rows();
    let mut ops = 0u64;
    for k in 0..s.saturating_sub(1) {
        let pivot = y[(k, k)];
        for i in k + 1..s {
            let factor = y[(i, k)].div(pivot);
            for j in 0..s {
                x[(i, j)] = x[(i, j)].sub(factor.mul(x[(k, j)]));
                ops += 3;
            }
        }
    }
    let xp = Matrix::from_fn(s, s, |i, j| x[(i, j)].div(y[(i, i)]).neg());
    ops += 2 * (s * s) as u64;
    mach.charge(ops);
    xp
}

/// Kernel `C` (Figure 4): prepare a block in the pivot block column —
/// each column `j` receives the elimination updates of the in-block
/// pivots preceding it.
fn kernel_c<T: Field, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<T>,
    y: &Matrix<T>,
) {
    let s = x.rows();
    let mut ops = 0u64;
    for k in 0..s {
        let pivot = y[(k, k)];
        for i in 0..s {
            let factor = x[(i, k)].div(pivot);
            for j in k + 1..s {
                x[(i, j)] = x[(i, j)].sub(factor.mul(y[(k, j)]));
                ops += 3;
            }
        }
    }
    mach.charge(ops);
}

/// Exact simulated time of [`ge_forward`] on a model machine for a
/// `d × d` system with `√m = s | d` and latency `l` (mirrors the charges
/// kernel by kernel).
#[must_use]
pub fn ge_forward_time(d: u64, s: u64, l: u64) -> u64 {
    let q = d / s;
    // Per-call kernel op counts.
    let a_ops: u64 = (0..s.saturating_sub(1))
        .map(|k| 3 * (s - 1 - k) * (s - 1 - k))
        .sum();
    let b_ops: u64 = (0..s.saturating_sub(1))
        .map(|k| 3 * (s - 1 - k) * s)
        .sum::<u64>()
        + 2 * s * s;
    let c_ops: u64 = (0..s).map(|k| 3 * s * (s - 1 - k)).sum();
    let mut t = 0u64;
    for kk in 0..q {
        let rem = q - kk - 1;
        t += a_ops + rem * b_ops + rem * c_ops;
        if rem > 0 {
            // One tall tensor call per block column, plus the accumulation.
            t += rem * (rem * s * s + l);
            t += rem * rem * s * s;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::TcuMachine;
    use tcu_linalg::decomp::{
        augmented_from, back_substitute, diag_dominant, ge_forward_host, residual,
    };
    use tcu_linalg::ops::approx_eq_rel;
    use tcu_linalg::{Fp61, Scalar};

    /// Build the paper's augmented representation for a random
    /// diagonally-dominant system of dimension `d − 1`.
    fn augmented(d: usize, seed: u64) -> (Matrix<f64>, Vec<f64>, Matrix<f64>) {
        let a = diag_dominant(d - 1, seed);
        let b: Vec<f64> = (0..d - 1).map(|i| ((i * i) % 7) as f64 - 2.5).collect();
        let c = augmented_from(&a, &b);
        (a, b, c)
    }

    #[test]
    fn blocked_equals_unblocked_f64() {
        for (d, m) in [(8usize, 4usize), (16, 16), (32, 16), (24, 16)] {
            if d % ((m as f64).sqrt() as usize) != 0 {
                continue;
            }
            let (_, _, c0) = augmented(d, 99 + d as u64);
            let mut host = c0.clone();
            ge_forward_host(&mut host);
            let mut mach = TcuMachine::model(m, 5);
            let mut dev = c0.clone();
            ge_forward(&mut mach, &mut dev);
            assert!(
                approx_eq_rel(&host, &dev, 1e-9),
                "blocked != unblocked for d={d} m={m}"
            );
        }
    }

    #[test]
    fn solves_linear_system_end_to_end() {
        let d = 32;
        let (a, b, c0) = augmented(d, 4242);
        let mut mach = TcuMachine::model(16, 100);
        let mut c = c0;
        ge_forward(&mut mach, &mut c);
        let x = back_substitute(&c);
        assert!(residual(&a, &x, &b) < 1e-8);
        assert!(
            mach.stats().tensor_calls > 0,
            "the update must use the tensor unit"
        );
    }

    #[test]
    fn exact_over_prime_field() {
        // A small well-conditioned F_p system where no used pivot is zero:
        // diag = 7, off-diag small.
        let d = 8usize;
        let c0 = Matrix::from_fn(d, d, |i, j| {
            if i == d - 1 {
                Fp61::ZERO
            } else if i == j {
                Fp61::new(7)
            } else {
                Fp61::new(((3 * i + 5 * j) % 3) as u64)
            }
        });
        let mut host = c0.clone();
        ge_forward_host(&mut host);
        let mut mach = TcuMachine::model(4, 0);
        let mut dev = c0;
        ge_forward(&mut mach, &mut dev);
        assert_eq!(host, dev, "exact arithmetic: blocked must equal unblocked");
    }

    #[test]
    fn cost_matches_closed_form() {
        for (d, m, l) in [(16u64, 16usize, 0u64), (32, 16, 1000), (32, 4, 77)] {
            let (_, _, c0) = augmented(d as usize, 7);
            let mut mach = TcuMachine::model(m, l);
            let mut c = c0;
            ge_forward(&mut mach, &mut c);
            let s = (m as f64).sqrt() as u64;
            assert_eq!(mach.time(), ge_forward_time(d, s, l), "d={d} m={m} l={l}");
        }
    }

    #[test]
    fn tensor_calls_and_latency_follow_theorem_4() {
        // Tensor calls: Σ_{kk} (q − kk − 1) = q(q−1)/2; latency term
        // q(q−1)/2 · ℓ, i.e. Θ(n/m)·ℓ rather than Θ((n/m)^{3/2})·ℓ.
        let (d, m, l) = (32usize, 16usize, 10_000u64);
        let (_, _, c0) = augmented(d, 11);
        let mut mach = TcuMachine::model(m, l);
        let mut c = c0;
        ge_forward(&mut mach, &mut c);
        let q = (d / 4) as u64;
        assert_eq!(mach.stats().tensor_calls, q * (q - 1) / 2);
        assert_eq!(mach.stats().tensor_latency_time, q * (q - 1) / 2 * l);
    }

    #[test]
    fn single_block_system_never_calls_tensor() {
        let (_, _, c0) = augmented(4, 13);
        let mut mach = TcuMachine::model(16, 5);
        let mut c = c0;
        ge_forward(&mut mach, &mut c);
        assert_eq!(mach.stats().tensor_calls, 0);
        let mut host_c = augmented(4, 13).2;
        ge_forward_host(&mut host_c);
        assert!(approx_eq_rel(&host_c, &c, 1e-12));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_dimension() {
        let mut mach = TcuMachine::model(16, 0);
        let mut c = Matrix::<f64>::identity(10);
        ge_forward(&mut mach, &mut c);
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_elimination_is_bit_identical_with_identical_stats() {
        for (d, m) in [(16usize, 16usize), (32, 16), (24, 16), (32, 4)] {
            let (_, _, c0) = augmented(d, 77 + d as u64);
            let mut eager = TcuMachine::model(m, 1000);
            let mut want = c0.clone();
            ge_forward(&mut eager, &mut want);
            let mut sched = TcuMachine::model(m, 1000);
            sched.executor_mut().enable_pack_cache(4);
            let mut got = c0;
            eliminate_scheduled(&mut sched, &mut got);
            // Fused accumulates perform the same per-element sums, so
            // even f64 agrees under IEEE equality.
            assert_eq!(got, want, "d={d} m={m}");
            assert_eq!(sched.stats(), eager.stats(), "d={d} m={m}");
        }
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_elimination_exact_over_prime_field() {
        let d = 16usize;
        let c0 = Matrix::from_fn(d, d, |i, j| {
            if i == d - 1 {
                Fp61::ZERO
            } else if i == j {
                Fp61::new(7)
            } else {
                Fp61::new(((3 * i + 5 * j) % 3) as u64)
            }
        });
        let mut eager = TcuMachine::model(16, 3);
        let mut want = c0.clone();
        ge_forward(&mut eager, &mut want);
        let mut sched = TcuMachine::model(16, 3);
        let mut got = c0;
        eliminate_scheduled(&mut sched, &mut got);
        assert_eq!(got, want);
        assert_eq!(sched.stats(), eager.stats());
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_elimination_packs_each_pivot_panel_once() {
        let (d, m) = (32usize, 16usize);
        let q = d / 4;
        let (_, _, c0) = augmented(d, 5);
        let mut mach = TcuMachine::model(m, 10);
        mach.executor_mut().enable_pack_cache(2);
        let mut x = c0;
        eliminate_scheduled(&mut mach, &mut x);
        let cache = mach.executor().pack_cache_stats().expect("cache on");
        // Per stage with rem > 0: the panel is the only left operand —
        // one pack, rem − 1 re-uses.
        assert_eq!(cache.lookups, (q * (q - 1) / 2) as u64);
        assert_eq!(cache.misses, (q - 1) as u64);
        assert_eq!(cache.hits, cache.lookups - cache.misses);
    }
}
