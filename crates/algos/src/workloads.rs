//! Seeded random workload generators for the test suites and the
//! experiment harness (`tcu-bench`). Everything takes an explicit
//! [`rand::Rng`] so tables in `EXPERIMENTS.md` are bit-reproducible.

use rand::Rng;
use tcu_linalg::{Complex64, Fp61, Matrix};

/// Dense `r × c` matrix with entries uniform in `[-1, 1]`.
pub fn random_matrix_f64<R: Rng>(r: usize, c: usize, rng: &mut R) -> Matrix<f64> {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// Dense `r × c` integer matrix with entries uniform in `[-bound, bound]`.
pub fn random_matrix_i64<R: Rng>(r: usize, c: usize, bound: i64, rng: &mut R) -> Matrix<i64> {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-bound..=bound))
}

/// Dense `r × c` matrix over the prime field `F_{2^61−1}`.
pub fn random_matrix_fp<R: Rng>(r: usize, c: usize, rng: &mut R) -> Matrix<Fp61> {
    Matrix::from_fn(r, c, |_, _| Fp61::new(rng.gen()))
}

/// Dense `r × c` complex matrix with entries in the unit square.
pub fn random_matrix_c64<R: Rng>(r: usize, c: usize, rng: &mut R) -> Matrix<Complex64> {
    Matrix::from_fn(r, c, |_, _| {
        Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

/// Random complex vector (DFT input).
pub fn random_vector_c64<R: Rng>(n: usize, rng: &mut R) -> Vec<Complex64> {
    (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// 0/1 adjacency matrix of a random digraph: each off-diagonal arc is
/// present independently with probability `density`.
pub fn random_digraph<R: Rng>(n: usize, density: f64, rng: &mut R) -> Matrix<i64> {
    Matrix::from_fn(n, n, |i, j| i64::from(i != j && rng.gen_bool(density)))
}

/// Symmetric 0/1 adjacency matrix of a random *connected* undirected graph
/// (a random spanning tree plus density-`p` extra edges), zero diagonal —
/// the input class Seidel's algorithm requires.
pub fn random_connected_graph<R: Rng>(n: usize, p: f64, rng: &mut R) -> Matrix<i64> {
    assert!(n >= 1);
    let mut adj = Matrix::<i64>::zeros(n, n);
    // Random spanning tree: attach vertex v to a uniform earlier vertex.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        adj[(u, v)] = 1;
        adj[(v, u)] = 1;
    }
    for i in 0..n {
        for j in i + 1..n {
            if adj[(i, j)] == 0 && rng.gen_bool(p) {
                adj[(i, j)] = 1;
                adj[(j, i)] = 1;
            }
        }
    }
    adj
}

/// Sparse balanced multiplication instance for Theorem 3: two `d × d`
/// matrices whose non-zeros are confined to `ra` active rows of `A` and
/// `cb` active columns of `B` (so the output support is at most
/// `ra × cb`), with `nnz_per` non-zeros per active line. Returned as
/// dense 0-padded matrices; `tcu-algos::sparse` converts to CSR.
pub fn random_sparse_pair<R: Rng>(
    d: usize,
    ra: usize,
    cb: usize,
    nnz_per: usize,
    rng: &mut R,
) -> (Matrix<f64>, Matrix<f64>) {
    assert!(ra <= d && cb <= d);
    let mut a = Matrix::<f64>::zeros(d, d);
    let mut b = Matrix::<f64>::zeros(d, d);
    let rows: Vec<usize> = sample_distinct(d, ra, rng);
    let cols: Vec<usize> = sample_distinct(d, cb, rng);
    for &r in &rows {
        for _ in 0..nnz_per {
            let c = rng.gen_range(0..d);
            a[(r, c)] = rng.gen_range(0.5..1.5);
        }
    }
    for &c in &cols {
        for _ in 0..nnz_per {
            let r = rng.gen_range(0..d);
            b[(r, c)] = rng.gen_range(0.5..1.5);
        }
    }
    (a, b)
}

/// `k` distinct values from `0..d` (Floyd's sampling).
fn sample_distinct<R: Rng>(d: usize, k: usize, rng: &mut R) -> Vec<usize> {
    use std::collections::HashSet;
    let mut set = HashSet::with_capacity(k);
    for j in d - k..d {
        let t = rng.gen_range(0..=j);
        if !set.insert(t) {
            set.insert(j);
        }
    }
    let mut v: Vec<usize> = set.into_iter().collect();
    v.sort_unstable();
    v
}

/// Random non-negative big integer with exactly `limbs` 16-bit limbs
/// (top limb non-zero), as the limb vector used by `algos::intmul`.
pub fn random_limbs<R: Rng>(limbs: usize, rng: &mut R) -> Vec<u64> {
    let mut v: Vec<u64> = (0..limbs).map(|_| u64::from(rng.gen::<u16>())).collect();
    if let Some(top) = v.last_mut() {
        *top = u64::from(rng.gen_range(1u16..=u16::MAX));
    }
    v
}

/// Random grid for stencil experiments: `d × d` with values in `[0, 1]`
/// (think normalized temperatures).
pub fn random_grid<R: Rng>(d: usize, rng: &mut R) -> Matrix<f64> {
    Matrix::from_fn(d, d, |_, _| rng.gen_range(0.0..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a1 = random_matrix_f64(4, 4, &mut StdRng::seed_from_u64(1));
        let a2 = random_matrix_f64(4, 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(a1, a2);
        let g1 = random_digraph(10, 0.3, &mut StdRng::seed_from_u64(2));
        let g2 = random_digraph(10, 0.3, &mut StdRng::seed_from_u64(2));
        assert_eq!(g1, g2);
    }

    #[test]
    fn connected_graph_is_connected_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 24;
        let adj = random_connected_graph(n, 0.05, &mut rng);
        for i in 0..n {
            assert_eq!(adj[(i, i)], 0, "no self loops");
            for j in 0..n {
                assert_eq!(adj[(i, j)], adj[(j, i)], "symmetry");
            }
        }
        // BFS from 0 must reach everything.
        let mut seen = vec![false; n];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for v in 0..n {
                if adj[(u, v)] == 1 && !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "graph must be connected");
    }

    #[test]
    fn sparse_pair_respects_support() {
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b) = random_sparse_pair(32, 4, 5, 6, &mut rng);
        let nonempty_rows = (0..32)
            .filter(|&i| (0..32).any(|j| a[(i, j)] != 0.0))
            .count();
        let nonempty_cols = (0..32)
            .filter(|&j| (0..32).any(|i| b[(i, j)] != 0.0))
            .count();
        assert!(nonempty_rows <= 4);
        assert!(nonempty_cols <= 5);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let v = sample_distinct(50, 10, &mut rng);
            assert_eq!(v.len(), 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn limbs_have_nonzero_top() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = random_limbs(12, &mut rng);
        assert_eq!(v.len(), 12);
        assert!(*v.last().unwrap() > 0);
        assert!(v.iter().all(|&x| x < (1 << 16)));
    }
}
