//! # tcu-algos — the paper's §4 algorithm suite on the simulated TCU
//!
//! One module per subsection of §4, each implementing the paper's
//! algorithm on a [`tcu_core::TcuMachine`] together with the RAM baseline
//! it is measured against:
//!
//! | module | paper | result |
//! |---|---|---|
//! | [`dense`] | §4.1, Thm 2 / Cor 1 | blocked multiplication with tall-operand streaming |
//! | [`strassen`] | §4.1, Thm 1 | Strassen-like recursion with tensor-unit base case |
//! | [`sparse`] | §4.1, Thm 3 | output-sensitive sparse multiplication by compression |
//! | [`gauss`] | §4.2, Thm 4 | blocked Gaussian elimination without pivoting (Fig. 4) |
//! | [`closure`] | §4.3, Thm 5 | blocked transitive closure (Fig. 7) |
//! | [`apsd`] | §4.4, Thm 6 | Seidel's all-pairs shortest distances |
//! | [`fft`] | §4.5, Thm 7 | Cooley–Tukey DFT with `√m`-point tensor base cases |
//! | [`stencil`] | §4.6, Thm 8 | linear stencils via convolution (Lemmas 1–2) |
//! | [`intmul`] | §4.7, Thms 9–10 | long-integer multiplication (schoolbook + Karatsuba) |
//! | [`poly`] | §4.8, Thm 11 | batch polynomial evaluation |
//!
//! Each algorithm charges the machine at the granularity of the paper's
//! pseudocode — tensor invocations through [`tcu_core::TcuMachine::tensor_mul`],
//! scalar CPU arithmetic through [`tcu_core::TcuMachine::charge`] — and its
//! unit tests pin both the numeric output (against a host oracle) and, for
//! the structured algorithms, the exact closed-form simulated time.
//!
//! [`workloads`] generates the random inputs the experiments sweep over
//! (seeded, so every table in `EXPERIMENTS.md` is reproducible).

pub mod apsd;
pub mod closure;
pub mod dense;
pub mod fft;
pub mod gauss;
pub mod intmul;
pub mod parallel;
#[cfg(feature = "sched")]
pub mod plan_memo;
pub mod poly;
pub mod scan;
pub mod sparse;
pub mod stencil;
pub mod strassen;
pub mod triangles;
pub mod workloads;
