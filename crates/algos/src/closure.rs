//! Blocked transitive closure on the TCU — §4.3, Theorem 5 (paper
//! Figures 5–7).
//!
//! The adjacency matrix (0/1 integers) is updated in place by a blocked
//! Floyd–Warshall-style sweep. Kernels `A`, `B`, `C` touch blocks that
//! overlap the pivot block row/column and must run on the CPU with
//! (∨, ∧); kernel `D` updates disjoint blocks and — the paper's key
//! observation — may use (+, ×) followed by clamping to 1, which is
//! exactly a matrix product the tensor unit can absorb. As in Gaussian
//! elimination, for each block column `j ≠ k` the weight `X_{k,j}` is
//! loaded once and every `X_{i,k}` (`i ≠ k`) is streamed through as one
//! tall operand.
//!
//! Theorem 5: time `Θ(n³/√m + (n²/m)·ℓ + n²√m)` for an `n`-vertex graph.

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::Matrix;

/// Reachability closure of a 0/1 adjacency matrix, in place, blocked on
/// the tensor unit (paper Figure 7). `d[i][j] = 1` on return iff vertex
/// `j` is reachable from vertex `i` by a non-empty path (or `i = j` held
/// a self-loop / was already 1).
///
/// # Panics
/// Panics unless `d` is square 0/1 with `√m | n`.
pub fn transitive_closure<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    d: &mut Matrix<i64>,
) {
    let n = d.rows();
    assert!(d.is_square(), "adjacency matrix must be square");
    assert!(
        d.as_slice().iter().all(|&x| x == 0 || x == 1),
        "entries must be 0/1"
    );
    let s = mach.sqrt_m();
    assert!(n.is_multiple_of(s), "√m = {s} must divide n = {n}");
    let q = n / s;

    for kk in 0..q {
        // A( X_kk ): in-block closure.
        let mut xkk = d.block(kk * s, kk * s, s, s);
        kernel_a(mach, &mut xkk);
        d.set_block(kk * s, kk * s, &xkk);

        // B( X_kj, X_kk ): pivot block row.
        for j in 0..q {
            if j != kk {
                let mut xkj = d.block(kk * s, j * s, s, s);
                kernel_b(mach, &mut xkj, &xkk);
                d.set_block(kk * s, j * s, &xkj);
            }
        }

        // C( X_ik, X_kk ): pivot block column.
        for i in 0..q {
            if i != kk {
                let mut xik = d.block(i * s, kk * s, s, s);
                kernel_c(mach, &mut xik, &xkk);
                d.set_block(i * s, kk * s, &xik);
            }
        }

        // D( X_ij, X_ik, X_kj ) on the tensor unit: stack all X_ik
        // (i ≠ k) into one tall operand, one invocation per block column.
        if q == 1 {
            continue;
        }
        let rows = (q - 1) * s;
        let mut tall = Matrix::<i64>::zeros(rows, s);
        let others: Vec<usize> = (0..q).filter(|&i| i != kk).collect();
        for (bi, &i) in others.iter().enumerate() {
            tall.set_block_view(bi * s, 0, d.subview(i * s, kk * s, s, s));
        }
        for &j in &others {
            // The weight block X_kj is disjoint from every updated block
            // X_ij (i ≠ k), but the borrow checker cannot see that
            // through one matrix, so it is staged through a copy; the
            // updates themselves run in place through views.
            let xkj = d.block(kk * s, j * s, s, s);
            let prod = mach.tensor_mul_view(tall.view(), xkj.view());
            for (bi, &i) in others.iter().enumerate() {
                // D's lines 1–7: accumulate the integer product, then
                // clamp to 1 — two CPU ops per element.
                mach.charge(2 * (s * s) as u64);
                d.subview_mut(i * s, j * s, s, s)
                    .zip_apply(prod.subview(bi * s, 0, s, s), |x, p| i64::from(x + p > 0));
            }
        }
    }
}

/// Deferred fast path (feature `sched`): [`transitive_closure`] with
/// every stage's `D` updates recorded into a `tcu-sched` op graph and
/// run as a planned, tagged stream.
///
/// Per pivot block `kk`, the stacked tall operand (every `X_{i,k}`,
/// `i ≠ k`) is recorded as the single left operand streamed against the
/// `q − 1` weight blocks — so the pack cache, when enabled, packs the
/// stack once per plan and re-uses it for every other op in that plan —
/// while the weights `X_{k,j}` are zero-copy regions of the adjacency
/// matrix itself (the eager path copies each block out to appease the
/// borrow checker; the graph runtime just names the rectangle). The
/// weight blocks are processed in chunks of [`D_CHUNK`] block-columns
/// per plan, with the (∨-clamp) fold back into `X` run after each
/// chunk: batching *all* `q − 1` products before folding would push the
/// product panel out to an `(q−1)²s²`-element round-trip that evicts
/// both `X` and the products themselves, while per-chunk folding keeps
/// the working set near the eager path's mul-then-fold locality without
/// giving up the planned, tagged stream. The fold stays on the CPU,
/// charged exactly as the eager kernel `D` charges it — `Stats` and
/// results are identical.
///
/// # Panics
/// Panics unless `d` is square 0/1 with `√m | n`.
#[cfg(feature = "sched")]
pub fn transitive_scheduled<U: TensorUnit + 'static, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    d: &mut Matrix<i64>,
) {
    try_transitive_scheduled(mach, d).unwrap_or_else(|e| panic!("{e}"));
}

// Per-thread scratch pool for `try_transitive_scheduled`: the
// `(tall, prods)` pair of the last completed call, handed back to the
// next call of the same shape. Dropped (not restored) on the error
// path — a faulted run just re-allocates next time.
#[cfg(feature = "sched")]
thread_local! {
    static SCRATCH: core::cell::RefCell<Option<(Matrix<i64>, Matrix<i64>)>> =
        const { core::cell::RefCell::new(None) };
}

/// Block-columns of `D`-stage updates batched per plan in
/// [`try_transitive_scheduled`]. Chosen so the product panel
/// (`D_CHUNK · (q−1) · s²` elements) stays L2-resident at the bench
/// shape (n = 256, s = 16 → 120 KiB): profiling chunk sizes 2/4/8/15
/// showed 2 dominated by per-plan machinery, 15 (everything in one
/// plan) dominated by the 460 KiB product round-trip evicting `X`
/// between fold and the next stage's kernels, and 4 ≈ 8 at the sweet
/// spot.
#[cfg(feature = "sched")]
const D_CHUNK: usize = 4;

/// Fallible form of [`transitive_scheduled`]: execution faults surface
/// as [`tcu_core::TcuError`] instead of panicking. Shape and 0/1-entry
/// preconditions still panic — they are caller bugs, not runtime
/// faults.
///
/// # Errors
/// Propagates any [`tcu_core::TcuError`] from [`tcu_sched::Schedule::try_run`].
#[cfg(feature = "sched")]
pub fn try_transitive_scheduled<U: TensorUnit + 'static, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    d: &mut Matrix<i64>,
) -> Result<(), tcu_core::TcuError> {
    use crate::plan_memo::plan_cached;
    use tcu_core::TensorOp;
    use tcu_sched::{ExecEnv, OpGraph, OperandRef};

    let n = d.rows();
    assert!(d.is_square(), "adjacency matrix must be square");
    assert!(
        d.as_slice().iter().all(|&x| x == 0 || x == 1),
        "entries must be 0/1"
    );
    let s = mach.sqrt_m();
    assert!(n.is_multiple_of(s), "√m = {s} must divide n = {n}");
    let q = n / s;

    // Stage-invariant scratch, hoisted out of the stage loop AND reused
    // across calls on this thread: `tall` (the stacked column strip)
    // and `prods` (the product panel) keep one shape across all stages
    // and are fully overwritten before any read in every stage — `tall`
    // by the q−1 block copies, `prods` by the q−1 overwriting muls into
    // its disjoint column bands (together the bands tile the whole
    // panel) — so neither zeroing nor a fresh allocation buys anything.
    // The thread-local pool matters for the run-many shape: a fresh n²
    // buffer per call pays its first-touch page faults inside the timed
    // run, every run, which is exactly the class of per-run cost the
    // plan-once/run-many contract exists to amortize away.
    let rows = q.saturating_sub(1) * s;
    let chunk_cap = D_CHUNK.min(q.saturating_sub(1));
    let (mut tall, mut prods) = SCRATCH.with(|c| {
        let (t, p) = c
            .borrow_mut()
            .take()
            .unwrap_or_else(|| (Matrix::zeros(0, 0), Matrix::zeros(0, 0)));
        let reshape = |m: Matrix<i64>, r: usize, w: usize| {
            if (m.rows(), m.cols()) == (r, w) {
                m
            } else {
                Matrix::zeros(r, w)
            }
        };
        (reshape(t, rows, s), reshape(p, rows * chunk_cap, s))
    });

    for kk in 0..q {
        let mut xkk = d.block(kk * s, kk * s, s, s);
        kernel_a(mach, &mut xkk);
        d.set_block(kk * s, kk * s, &xkk);
        for j in 0..q {
            if j != kk {
                let mut xkj = d.block(kk * s, j * s, s, s);
                kernel_b(mach, &mut xkj, &xkk);
                d.set_block(kk * s, j * s, &xkj);
            }
        }
        for i in 0..q {
            if i != kk {
                let mut xik = d.block(i * s, kk * s, s, s);
                kernel_c(mach, &mut xik, &xkk);
                d.set_block(i * s, kk * s, &xik);
            }
        }

        if q == 1 {
            continue;
        }
        let others: Vec<usize> = (0..q).filter(|&i| i != kk).collect();
        for (bi, &i) in others.iter().enumerate() {
            tall.set_block_view(bi * s, 0, d.subview(i * s, kk * s, s, s));
        }

        for (ci, chunk) in others.chunks(D_CHUNK).enumerate() {
            // The chunk graph depends only on (n, s, kk, ci) — memoize
            // its plan so repeated closures at one shape skip planning
            // altogether.
            let planned = plan_cached("closure-d", [n, s, kk, ci], mach.unit(), 1, || {
                let mut g = OpGraph::new();
                let tb = g.buffer("T", rows, s);
                let xb = g.buffer("X", n, n);
                let pb = g.buffer("P", rows * chunk.len(), s);
                let t_whole = OperandRef::new(tb, 0, 0, rows, s);
                for (bj, &j) in chunk.iter().enumerate() {
                    g.record(
                        TensorOp::mul(rows, s),
                        t_whole,
                        OperandRef::new(xb, kk * s, j * s, s, s),
                        OperandRef::new(pb, bj * rows, 0, rows, s),
                    );
                }
                (g, vec![tb, xb, pb])
            });
            let (tb, xb, pb) = (planned.bufs[0], planned.bufs[1], planned.bufs[2]);
            let mut env = ExecEnv::new(&planned.graph);
            env.try_bind_input(tb, tall.view())?;
            env.try_bind_input(xb, d.view())?;
            env.try_bind_output(pb, prods.subview_mut(0, 0, rows * chunk.len(), s))?;
            planned.plan.try_run(mach, &mut env)?;

            for (bj, &j) in chunk.iter().enumerate() {
                for (bi, &i) in others.iter().enumerate() {
                    mach.charge(2 * (s * s) as u64);
                    d.subview_mut(i * s, j * s, s, s)
                        .zip_apply(prods.subview(bj * rows + bi * s, 0, s, s), |x, p| {
                            i64::from(x + p > 0)
                        });
                }
            }
        }
    }
    SCRATCH.with(|c| *c.borrow_mut() = Some((tall, prods)));
    Ok(())
}

/// Kernel `A` (Figure 7): in-block closure with (∨, ∧); 2 ops per inner
/// iteration.
fn kernel_a<U: TensorUnit, E: Executor>(mach: &mut TcuMachine<U, E>, x: &mut Matrix<i64>) {
    let s = x.rows();
    for k in 0..s {
        for i in 0..s {
            for j in 0..s {
                x[(i, j)] |= x[(i, k)] & x[(k, j)];
            }
        }
    }
    mach.charge(2 * (s * s * s) as u64);
}

/// Kernel `B` (Figure 7): `X[i,j] ∨= Y[i,k] ∧ X[k,j]`.
fn kernel_b<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<i64>,
    y: &Matrix<i64>,
) {
    let s = x.rows();
    for k in 0..s {
        for i in 0..s {
            for j in 0..s {
                x[(i, j)] |= y[(i, k)] & x[(k, j)];
            }
        }
    }
    mach.charge(2 * (s * s * s) as u64);
}

/// Kernel `C` (Figure 7): `X[i,j] ∨= X[i,k] ∧ Y[k,j]`.
fn kernel_c<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    x: &mut Matrix<i64>,
    y: &Matrix<i64>,
) {
    let s = x.rows();
    for k in 0..s {
        for i in 0..s {
            for j in 0..s {
                x[(i, j)] |= x[(i, k)] & y[(k, j)];
            }
        }
    }
    mach.charge(2 * (s * s * s) as u64);
}

/// Host oracle: the unblocked Figure 5 loop (`Θ(n³)` bit operations).
/// Returns the closure of a fresh copy.
#[must_use]
pub fn transitive_closure_host(d: &Matrix<i64>) -> Matrix<i64> {
    let n = d.rows();
    let mut c = d.clone();
    for k in 0..n {
        for i in 0..n {
            if c[(i, k)] == 0 {
                continue;
            }
            for j in 0..n {
                c[(i, j)] |= c[(k, j)];
            }
        }
    }
    c
}

/// Simulated-time charge of running the unblocked Figure 5 loop on the
/// TCU's CPU (the baseline of experiment E5): 2 ops per inner iteration.
#[must_use]
pub fn host_closure_time(n: u64) -> u64 {
    2 * n * n * n
}

/// Exact simulated time of [`transitive_closure`] on a model machine.
#[must_use]
pub fn transitive_closure_time(n: u64, s: u64, l: u64) -> u64 {
    let q = n / s;
    let kernel = 2 * s * s * s;
    let mut t = 0u64;
    for _kk in 0..q {
        t += kernel; // A
        t += 2 * (q - 1) * kernel; // B and C
        if q > 1 {
            t += (q - 1) * ((q - 1) * s * s + l); // tensor calls
            t += (q - 1) * (q - 1) * 2 * s * s; // accumulate + clamp
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_digraph;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;

    fn closure_pair(n: usize, m: usize, density: f64, seed: u64) -> (Matrix<i64>, Matrix<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_digraph(n, density, &mut rng);
        let host = transitive_closure_host(&adj);
        let mut mach = TcuMachine::model(m, 3);
        let mut dev = adj;
        transitive_closure(&mut mach, &mut dev);
        (host, dev)
    }

    #[test]
    fn matches_unblocked_oracle() {
        for (n, m, density) in [
            (8usize, 4usize, 0.2),
            (16, 16, 0.1),
            (32, 16, 0.05),
            (32, 16, 0.5),
            (24, 4, 0.15),
        ] {
            let (host, dev) = closure_pair(n, m, density, 1000 + n as u64);
            assert_eq!(host, dev, "n={n} m={m} density={density}");
        }
    }

    #[test]
    fn empty_and_complete_graphs() {
        let mut mach = TcuMachine::model(4, 0);
        let mut empty = Matrix::<i64>::zeros(8, 8);
        transitive_closure(&mut mach, &mut empty);
        assert!(empty.is_zero());

        let mut complete = Matrix::from_fn(8, 8, |_, _| 1i64);
        let want = complete.clone();
        transitive_closure(&mut mach, &mut complete);
        assert_eq!(complete, want);
    }

    #[test]
    fn directed_path_closes_to_upper_triangle() {
        // Edges i -> i+1: closure reaches every j > i.
        let n = 16;
        let mut d = Matrix::from_fn(n, n, |i, j| i64::from(j == i + 1));
        let mut mach = TcuMachine::model(16, 2);
        transitive_closure(&mut mach, &mut d);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d[(i, j)], i64::from(j > i), "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(7);
        let adj = random_digraph(16, 0.15, &mut rng);
        let mut mach = TcuMachine::model(16, 0);
        let mut once = adj;
        transitive_closure(&mut mach, &mut once);
        let mut twice = once.clone();
        transitive_closure(&mut mach, &mut twice);
        assert_eq!(once, twice);
    }

    #[test]
    fn cost_matches_closed_form() {
        for (n, m, l) in [(16u64, 16usize, 0u64), (32, 16, 999), (32, 4, 5)] {
            let mut rng = StdRng::seed_from_u64(n);
            let adj = random_digraph(n as usize, 0.2, &mut rng);
            let mut mach = TcuMachine::model(m, l);
            let mut d = adj;
            transitive_closure(&mut mach, &mut d);
            let s = (m as f64).sqrt() as u64;
            assert_eq!(mach.time(), transitive_closure_time(n, s, l), "n={n} m={m}");
        }
    }

    #[test]
    fn tensor_latency_is_n2_over_m() {
        let (n, m, l) = (32usize, 16usize, 100_000u64);
        let mut rng = StdRng::seed_from_u64(3);
        let adj = random_digraph(n, 0.3, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let mut d = adj;
        transitive_closure(&mut mach, &mut d);
        let q = (n / 4) as u64;
        // q block iterations × (q−1) tall calls each.
        assert_eq!(mach.stats().tensor_calls, q * (q - 1));
        assert_eq!(mach.stats().tensor_latency_time, q * (q - 1) * l);
    }

    #[test]
    #[should_panic(expected = "entries must be 0/1")]
    fn rejects_non_boolean_input() {
        let mut mach = TcuMachine::model(4, 0);
        let mut d = Matrix::from_fn(4, 4, |i, j| (i + j) as i64);
        transitive_closure(&mut mach, &mut d);
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_closure_matches_eager_with_identical_stats() {
        for (n, m, density) in [(16usize, 16usize, 0.1), (32, 16, 0.2), (24, 4, 0.15)] {
            let mut rng = StdRng::seed_from_u64(500 + n as u64);
            let adj = random_digraph(n, density, &mut rng);
            let mut eager = TcuMachine::model(m, 7);
            let mut want = adj.clone();
            transitive_closure(&mut eager, &mut want);
            let mut sched = TcuMachine::model(m, 7);
            sched.executor_mut().enable_pack_cache(2);
            let mut got = adj.clone();
            transitive_scheduled(&mut sched, &mut got);
            assert_eq!(got, want, "n={n} m={m}");
            assert_eq!(got, transitive_closure_host(&adj), "n={n} m={m}");
            assert_eq!(sched.stats(), eager.stats(), "n={n} m={m}");
        }
    }

    #[cfg(feature = "sched")]
    #[test]
    fn scheduled_closure_packs_each_stage_stack_once() {
        let (n, m) = (32usize, 16usize);
        let q = n / 4;
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = random_digraph(n, 0.2, &mut rng);
        let mut mach = TcuMachine::model(m, 0);
        mach.executor_mut().enable_pack_cache(2);
        transitive_scheduled(&mut mach, &mut d);
        let cache = mach.executor().pack_cache_stats().expect("cache on");
        // q stages, each streaming one stacked operand against q − 1
        // weight blocks in ⌈(q−1)/D_CHUNK⌉ chunk plans: one lookup per
        // mul, one pack per chunk plan (a fresh env re-stamps the
        // operand), and a hit for every other mul in the chunk.
        let chunks_per_stage = (q - 1).div_ceil(D_CHUNK);
        assert_eq!(cache.lookups, (q * (q - 1)) as u64);
        assert_eq!(cache.misses, (q * chunks_per_stage) as u64);
        assert_eq!(cache.hits, (q * (q - 1 - chunks_per_stage)) as u64);
    }
}
