//! Batch polynomial evaluation on the TCU — §4.8, Theorem 11.
//!
//! To evaluate `A(x) = Σ a_i x^i` (degree `n − 1`) at `p` points: build
//! `X : p × √m` with `X[i,t] = p_i^t`, pack the coefficients column-major
//! into `A : √m × n/√m`, compute `C = X·A` on the tensor unit (one tall
//! invocation per `√m`-column block, the `p` rows streaming against each
//! resident coefficient block), and recombine with the stride powers:
//! `A(p_i) = Σ_j C[i,j]·(p_i^{√m})^j`. Theorem 11:
//! `O(p·n/√m + p·√m + (n/m)·ℓ)`.
//!
//! The routine is generic over [`Field`] so it runs both on `f64`
//! (numeric workloads; beware overflow for large degrees) and on the
//! prime field [`Fp61`](tcu_linalg::Fp61), where every test is exact —
//! this matches the model's κ-bit-word semantics with no floating-point
//! caveats.

use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Field, Matrix};

/// Evaluate `coeffs` (little-endian: `coeffs[i]` multiplies `x^i`) at
/// every point, on the tensor unit.
///
/// # Panics
/// Panics if `coeffs` is empty.
#[must_use]
pub fn batch_eval<T: Field, U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    coeffs: &[T],
    points: &[T],
) -> Vec<T> {
    assert!(
        !coeffs.is_empty(),
        "polynomial must have at least one coefficient"
    );
    if points.is_empty() {
        return Vec::new();
    }
    let s = mach.sqrt_m();
    let p = points.len();
    // Degree padded to a multiple of √m (zero coefficients are harmless).
    let n = coeffs.len().div_ceil(s) * s;
    let cols = n / s;

    // X[i,t] = p_i^t for t < √m: one multiplication per entry.
    mach.charge((p * s) as u64);
    let mut x = Matrix::<T>::zeros(p, s);
    for (i, &pt) in points.iter().enumerate() {
        let mut pw = T::ONE;
        for t in 0..s {
            x[(i, t)] = pw;
            pw = pw.mul(pt);
        }
    }

    // Stride powers p_i^{√m·j}: p·(n/√m) multiplications.
    mach.charge((p * cols) as u64);
    let mut stride = Matrix::<T>::zeros(p, cols);
    for (i, &pt) in points.iter().enumerate() {
        let step = pow(pt, s as u64);
        let mut pw = T::ONE;
        for j in 0..cols {
            stride[(i, j)] = pw;
            pw = pw.mul(step);
        }
    }

    // Coefficient matrix A[t,j] = a_{t + j√m} (column-major packing).
    let a = Matrix::from_fn(s, cols, |t, j| {
        coeffs.get(t + j * s).copied().unwrap_or(T::ZERO)
    });

    // C = X·A on the tensor unit.
    let c = crate::dense::multiply_rect(mach, &x, &a);

    // Recombination: A(p_i) = Σ_j C[i,j]·stride[i,j] (2 ops per term).
    mach.charge(2 * (p * cols) as u64);
    (0..p)
        .map(|i| (0..cols).fold(T::ZERO, |acc, j| acc.add(c[(i, j)].mul(stride[(i, j)]))))
        .collect()
}

/// Host Horner evaluation — oracle and `Θ(p·n)` RAM baseline of E11.
#[must_use]
pub fn horner_host<T: Field>(coeffs: &[T], points: &[T]) -> Vec<T> {
    points
        .iter()
        .map(|&x| {
            coeffs
                .iter()
                .rev()
                .fold(T::ZERO, |acc, &c| acc.mul(x).add(c))
        })
        .collect()
}

/// Simulated-time charge of Horner on the TCU CPU: 2 ops per coefficient
/// per point.
#[must_use]
pub fn horner_time(n: u64, p: u64) -> u64 {
    2 * n * p
}

/// Exact simulated time of [`batch_eval`] on a model machine (√m = `s`,
/// `p` points, `n` coefficients after padding to a multiple of `s`).
#[must_use]
pub fn batch_eval_time(n_padded: u64, p: u64, s: u64, l: u64) -> u64 {
    let cols = n_padded / s;
    let col_blocks = cols.div_ceil(s);
    // Power tables + recombination.
    let cpu = p * s + p * cols + 2 * p * cols;
    // One tall call per √m-column block of A; no cross-block accumulation
    // (distinct output columns), so multiply_rect adds nothing.
    let tensor = col_blocks * (p.max(s) * s + l);
    cpu + tensor
}

fn pow<T: Field>(base: T, mut e: u64) -> T {
    let mut b = base;
    let mut acc = T::ONE;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc.mul(b);
        }
        b = b.mul(b);
        e >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use tcu_core::TcuMachine;
    use tcu_linalg::{Fp61, Scalar};

    fn rand_fp(n: usize, rng: &mut StdRng) -> Vec<Fp61> {
        (0..n).map(|_| Fp61::new(rng.gen())).collect()
    }

    #[test]
    fn exact_over_prime_field() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mach = TcuMachine::model(16, 9);
        for (n, p) in [
            (1usize, 1usize),
            (4, 4),
            (16, 8),
            (33, 10),
            (64, 5),
            (100, 17),
        ] {
            let coeffs = rand_fp(n, &mut rng);
            let points = rand_fp(p, &mut rng);
            assert_eq!(
                batch_eval(&mut mach, &coeffs, &points),
                horner_host(&coeffs, &points),
                "n={n} p={p}"
            );
        }
    }

    #[test]
    fn matches_horner_over_f64() {
        // Small degree and |x| < 1 keep f64 round-off in check.
        let mut rng = StdRng::seed_from_u64(2);
        let mut mach = TcuMachine::model(16, 0);
        let coeffs: Vec<f64> = (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let points: Vec<f64> = (0..7).map(|_| rng.gen_range(-0.9..0.9)).collect();
        let got = batch_eval(&mut mach, &coeffs, &points);
        let want = horner_host(&coeffs, &points);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn constant_and_linear_polynomials() {
        let mut mach = TcuMachine::model(4, 0);
        // A(x) = 7
        let v = batch_eval(&mut mach, &[Fp61::new(7)], &[Fp61::new(3), Fp61::new(100)]);
        assert_eq!(v, vec![Fp61::new(7), Fp61::new(7)]);
        // A(x) = 2 + 5x at x = 10 → 52
        let v = batch_eval(&mut mach, &[Fp61::new(2), Fp61::new(5)], &[Fp61::new(10)]);
        assert_eq!(v, vec![Fp61::new(52)]);
    }

    #[test]
    fn cost_matches_closed_form() {
        for (n, p, m, l) in [
            (64usize, 8usize, 16usize, 0u64),
            (256, 32, 16, 1000),
            (64, 4, 64, 77),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let coeffs = rand_fp(n, &mut rng);
            let points = rand_fp(p, &mut rng);
            let mut mach = TcuMachine::model(m, l);
            let _ = batch_eval(&mut mach, &coeffs, &points);
            let s = (m as f64).sqrt() as u64;
            let n_padded = (n as u64).div_ceil(s) * s;
            assert_eq!(
                mach.time(),
                batch_eval_time(n_padded, p as u64, s, l),
                "n={n} p={p} m={m}"
            );
        }
    }

    #[test]
    fn latency_term_is_n_over_m() {
        let (n, p, m, l) = (1024usize, 64usize, 16usize, 50_000u64);
        let mut rng = StdRng::seed_from_u64(4);
        let coeffs = rand_fp(n, &mut rng);
        let points = rand_fp(p, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = batch_eval(&mut mach, &coeffs, &points);
        assert_eq!(mach.stats().tensor_calls, (n / m) as u64);
        assert_eq!(mach.stats().tensor_latency_time, (n / m) as u64 * l);
    }

    #[test]
    fn beats_horner_when_points_exceed_sqrt_m() {
        let (n, p, m) = (4096usize, 256usize, 256usize);
        let mut rng = StdRng::seed_from_u64(5);
        let coeffs = rand_fp(n, &mut rng);
        let points = rand_fp(p, &mut rng);
        let mut mach = TcuMachine::model(m, 100);
        let _ = batch_eval(&mut mach, &coeffs, &points);
        assert!(mach.time() < horner_time(n as u64, p as u64));
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn rejects_empty_polynomial() {
        let mut mach = TcuMachine::model(4, 0);
        let _ = batch_eval::<Fp61, _, _>(&mut mach, &[], &[Fp61::ONE]);
    }
}
