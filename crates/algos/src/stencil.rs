//! Linear stencil computations on the TCU — §4.6, Theorem 8 (Lemmas 1–2).
//!
//! A linear `(n, k)`-stencil applies `k` sweeps of a 3×3 linear update
//! (e.g. the discretized 2D heat equation) to a `√n × √n` grid. Unrolling
//! the `k` sweeps yields a single `(2k+1) × (2k+1)` weight matrix `W`:
//!
//! * **Lemma 2** — `W` is the coefficient table of `P(x,y)^k` where `P` is
//!   the one-sweep weight polynomial; computed by repeated squaring, each
//!   squaring a 2-D convolution done with the TCU DFT of Theorem 7:
//!   `O(k² log_m k + ℓ log k)`.
//! * **Lemma 1** — the grid is cut into `k × k` tiles; each tile's value
//!   after `k` sweeps depends only on its `3k × 3k` neighbourhood, so one
//!   convolution with `W` per tile finishes the job. All `Θ(n/k²)` tile
//!   convolutions are *batched* through the DFT so the tensor latency is
//!   paid per recursion level, not per tile: `O(n log_m k + ℓ log k)`
//!   total (Theorem 8).
//!
//! **Boundary convention**: sweeps are *toroidal* (indices wrap). The
//! unrolled-weight identity `A_k = A ⊛ W` is exact for translation-
//! invariant dynamics, which the torus provides; the paper implicitly
//! assumes the same (its circular-convolution Lemma 1). A Dirichlet
//! (zero-boundary) direct sweep is also provided for host-side
//! comparisons, but the TCU fast path targets the toroidal semantics.
//! The paper's circular convolutions of size `3k` are realized here as
//! zero-padded power-of-two convolutions (size `≤ 8k`) so that the
//! Theorem 7 DFT applies directly; asymptotics are unchanged.

use crate::fft;
use tcu_core::{Executor, TcuMachine, TensorUnit};
use tcu_linalg::{Complex64, Matrix, Scalar};

/// One-sweep 3×3 stencil weights: `w[a][b]` multiplies the neighbour at
/// offset `(a−1, b−1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StencilWeights(pub [[f64; 3]; 3]);

impl StencilWeights {
    /// The 5-point heat-equation update with diffusion coefficient `r`
    /// per axis (paper §4.6): centre `1 − 2r_x − 2r_y`, axis neighbours
    /// `r_x`/`r_y`, diagonals 0.
    #[must_use]
    pub fn heat(rx: f64, ry: f64) -> Self {
        Self([
            [0.0, ry, 0.0],
            [rx, 1.0 - 2.0 * rx - 2.0 * ry, rx],
            [0.0, ry, 0.0],
        ])
    }

    /// Identity stencil (centre 1): every sweep is a no-op.
    #[must_use]
    pub fn identity() -> Self {
        Self([[0.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 0.0]])
    }

    /// The single-sweep weight polynomial as a 3×3 coefficient table
    /// (centre at (1,1)).
    #[must_use]
    pub fn as_matrix(&self) -> Matrix<f64> {
        Matrix::from_fn(3, 3, |i, j| self.0[i][j])
    }
}

/// One toroidal sweep on the host (the oracle's inner step).
#[must_use]
pub fn step_host(grid: &Matrix<f64>, w: &StencilWeights) -> Matrix<f64> {
    let d = grid.rows();
    Matrix::from_fn(d, d, |i, j| {
        let mut acc = 0.0;
        for (a, row) in w.0.iter().enumerate() {
            for (b, &wv) in row.iter().enumerate() {
                if wv != 0.0 {
                    let ii = (i + d + a - 1) % d;
                    let jj = (j + d + b - 1) % d;
                    acc += wv * grid[(ii, jj)];
                }
            }
        }
        acc
    })
}

/// `k` toroidal sweeps on the host — the correctness oracle.
#[must_use]
pub fn run_host(grid: &Matrix<f64>, w: &StencilWeights, k: usize) -> Matrix<f64> {
    let mut g = grid.clone();
    for _ in 0..k {
        g = step_host(&g, w);
    }
    g
}

/// `k` sweeps executed directly on the TCU's CPU — the `Θ(n·k)` baseline
/// of experiment E8 (2 ops per non-zero weight per cell per sweep).
#[must_use]
pub fn run_direct<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    grid: &Matrix<f64>,
    w: &StencilWeights,
    k: usize,
) -> Matrix<f64> {
    let d = grid.rows() as u64;
    let terms = w.0.iter().flatten().filter(|&&x| x != 0.0).count() as u64;
    let mut g = grid.clone();
    for _ in 0..k {
        mach.charge(2 * terms * d * d);
        g = step_host(&g, w);
    }
    g
}

/// Direct `Θ(k³)` host computation of the unrolled weight matrix (the
/// naive alternative Lemma 2 improves on); oracle for [`weight_matrix`].
#[must_use]
pub fn weight_matrix_host(w: &StencilWeights, k: usize) -> Matrix<f64> {
    let mut acc = Matrix::from_fn(1, 1, |_, _| 1.0);
    for _ in 0..k {
        acc = poly_mul_host(&acc, &w.as_matrix());
    }
    acc
}

fn poly_mul_host(p: &Matrix<f64>, q: &Matrix<f64>) -> Matrix<f64> {
    let (pr, pc) = (p.rows(), p.cols());
    let (qr, qc) = (q.rows(), q.cols());
    let mut out = Matrix::<f64>::zeros(pr + qr - 1, pc + qc - 1);
    for i in 0..pr {
        for j in 0..pc {
            let pij = p[(i, j)];
            if pij == 0.0 {
                continue;
            }
            for a in 0..qr {
                for b in 0..qc {
                    out[(i + a, j + b)] += pij * q[(a, b)];
                }
            }
        }
    }
    out
}

/// Lemma 2: the `(2k+1) × (2k+1)` unrolled weight matrix via repeated
/// squaring of the weight polynomial, each product a TCU convolution:
/// `O(k² log_m k + ℓ log k)`.
#[must_use]
pub fn weight_matrix<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    w: &StencilWeights,
    k: usize,
) -> Matrix<f64> {
    assert!(k >= 1, "k must be positive");
    let base = w.as_matrix();
    // Binary powering, high bit first: acc = P^{prefix}.
    let bits = usize::BITS - k.leading_zeros();
    let mut acc = base.clone();
    for b in (0..bits - 1).rev() {
        acc = poly_mul_tcu(mach, &acc, &acc);
        if (k >> b) & 1 == 1 {
            acc = poly_mul_tcu(mach, &acc, &base);
        }
    }
    debug_assert_eq!(acc.rows(), 2 * k + 1);
    acc
}

/// Polynomial (coefficient-table) product via padded 2-D TCU convolution.
fn poly_mul_tcu<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    p: &Matrix<f64>,
    q: &Matrix<f64>,
) -> Matrix<f64> {
    let out_r = p.rows() + q.rows() - 1;
    let out_c = p.cols() + q.cols() - 1;
    let size = out_r.max(out_c).next_power_of_two();
    let pc = to_complex_padded(p, size);
    let qc = to_complex_padded(q, size);
    let mut hats = dft2_batch(mach, vec![pc, qc]);
    let qhat = hats.pop().expect("two transforms");
    let mut phat = hats.pop().expect("two transforms");
    // Point-wise product: one charged op per element.
    mach.charge((size * size) as u64);
    for (a, &b) in phat.as_mut_slice().iter_mut().zip(qhat.as_slice()) {
        *a = a.mul(b);
    }
    let inv = idft2_batch(mach, vec![phat]).pop().expect("one transform");
    Matrix::from_fn(out_r, out_c, |i, j| inv[(i, j)].re)
}

/// Theorem 8: the `(n, k)`-stencil via per-tile convolution with the
/// unrolled weights, all tiles batched through the TCU DFT.
///
/// # Panics
/// Panics unless the grid is square with `k | d` (`d` the grid dimension)
/// and `k ≥ 1`.
#[must_use]
pub fn run_tcu<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    grid: &Matrix<f64>,
    w: &StencilWeights,
    k: usize,
) -> Matrix<f64> {
    // Lemma 2: unrolled weights.
    let wk = weight_matrix(mach, w, k);
    run_tcu_with_weights(mach, grid, &wk, k)
}

/// Lemma 1 alone: apply a precomputed unrolled weight matrix (from
/// [`weight_matrix`]) to a grid. Splitting the phases lets one weight
/// matrix be amortized over many grids — the common case when the same
/// PDE step is applied to many initial conditions.
///
/// # Panics
/// Panics unless the grid is square with `k | d` and `wk` is
/// `(2k+1) × (2k+1)`.
#[must_use]
pub fn run_tcu_with_weights<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    grid: &Matrix<f64>,
    wk: &Matrix<f64>,
    k: usize,
) -> Matrix<f64> {
    let d = grid.rows();
    assert!(grid.is_square(), "grid must be square");
    assert!(k >= 1, "k must be positive");
    assert!(
        d.is_multiple_of(k),
        "tile size k = {k} must divide the grid dimension d = {d}"
    );
    assert_eq!(
        (wk.rows(), wk.cols()),
        (2 * k + 1, 2 * k + 1),
        "weights must be (2k+1)²"
    );

    // Flip for convolution-as-correlation, pad, and transform once. The
    // transform size exploits the paper's circular trick: the full linear
    // convolution has support [0, 5k−2], but only the window [2k, 3k) is
    // read back, and circular wraparound C_circ[u] = C_lin[u] + C_lin[u+S]
    // leaves that window clean as soon as S ≥ 3k − 1.
    let size = (3 * k).next_power_of_two();
    let wf = Matrix::from_fn(2 * k + 1, 2 * k + 1, |i, j| wk[(2 * k - i, 2 * k - j)]);
    let what = dft2_batch(mach, vec![to_complex_padded(&wf, size)])
        .pop()
        .expect("one transform");

    // Lemma 1: gather each tile's 3k × 3k neighbourhood (torus wrap).
    let tiles_per_side = d / k;
    let mut tiles = Vec::with_capacity(tiles_per_side * tiles_per_side);
    for tr in 0..tiles_per_side {
        for tc in 0..tiles_per_side {
            // Movement charge: one op per gathered cell.
            mach.charge((3 * k * 3 * k) as u64);
            let tile = Matrix::from_fn(size, size, |u, v| {
                if u < 3 * k && v < 3 * k {
                    let gi = (tr * k + u + d - k) % d;
                    let gj = (tc * k + v + d - k) % d;
                    Complex64::new(grid[(gi, gj)], 0.0)
                } else {
                    Complex64::ZERO
                }
            });
            tiles.push(tile);
        }
    }

    // Batched forward transforms, point-wise products, inverse transforms.
    let mut hats = dft2_batch(mach, tiles);
    for t in &mut hats {
        mach.charge((size * size) as u64);
        for (a, &b) in t.as_mut_slice().iter_mut().zip(what.as_slice()) {
            *a = a.mul(b);
        }
    }
    let results = idft2_batch(mach, hats);

    // Scatter tile centres back (result C[i+2k, j+2k] for tile-local (i,j)).
    let mut out = Matrix::<f64>::zeros(d, d);
    for tr in 0..tiles_per_side {
        for tc in 0..tiles_per_side {
            mach.charge((k * k) as u64);
            let res = &results[tr * tiles_per_side + tc];
            for i in 0..k {
                for j in 0..k {
                    out[(tr * k + i, tc * k + j)] = res[(i + 2 * k, j + 2 * k)].re;
                }
            }
        }
    }
    out
}

fn to_complex_padded(m: &Matrix<f64>, size: usize) -> Matrix<Complex64> {
    Matrix::from_fn(size, size, |i, j| {
        if i < m.rows() && j < m.cols() {
            Complex64::new(m[(i, j)], 0.0)
        } else {
            Complex64::ZERO
        }
    })
}

/// Batched forward 2-D DFT of equal-size square complex matrices: row
/// transforms for every matrix in one [`fft::dft_rows`] batch, transpose,
/// column transforms likewise.
pub fn dft2_batch<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    mats: Vec<Matrix<Complex64>>,
) -> Vec<Matrix<Complex64>> {
    transform2_batch(mach, mats, false)
}

/// Batched inverse 2-D DFT (conjugation trick plus `1/S²` scaling).
pub fn idft2_batch<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    mats: Vec<Matrix<Complex64>>,
) -> Vec<Matrix<Complex64>> {
    transform2_batch(mach, mats, true)
}

fn transform2_batch<U: TensorUnit, E: Executor>(
    mach: &mut TcuMachine<U, E>,
    mats: Vec<Matrix<Complex64>>,
    inverse: bool,
) -> Vec<Matrix<Complex64>> {
    if mats.is_empty() {
        return mats;
    }
    let size = mats[0].rows();
    assert!(
        mats.iter().all(|m| m.rows() == size && m.cols() == size),
        "equal square sizes"
    );
    let count = mats.len();

    let conj_all = |mach: &mut TcuMachine<U, E>, ms: Vec<Matrix<Complex64>>| {
        mach.charge((count * size * size) as u64);
        ms.into_iter()
            .map(|m| m.map(Complex64::conj))
            .collect::<Vec<_>>()
    };

    let mut work = if inverse { conj_all(mach, mats) } else { mats };

    // Two row-transform passes with a transpose after each: pass 1
    // transforms rows; the transpose turns columns into rows so pass 2
    // transforms them, and its own transpose restores the orientation.
    for _pass in 0..2 {
        // Stack every row of every matrix into one batch.
        let mut stacked = Matrix::<Complex64>::zeros(count * size, size);
        for (t, m) in work.iter().enumerate() {
            stacked.set_block(t * size, 0, m);
        }
        let transformed = fft::dft_rows(mach, &stacked);
        mach.charge((count * size * size) as u64); // transposition movement
        work = (0..count)
            .map(|t| transformed.subview(t * size, 0, size, size).transpose())
            .collect();
    }

    if inverse {
        let scale = 1.0 / (size * size) as f64;
        mach.charge(2 * (count * size * size) as u64);
        work = work
            .into_iter()
            .map(|m| m.map(|z| z.conj().scale(scale)))
            .collect();
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_grid;
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_core::TcuMachine;
    use tcu_linalg::ops::max_abs_diff;

    #[test]
    fn weight_matrix_matches_host_unrolling() {
        let mut mach = TcuMachine::model(16, 3);
        let w = StencilWeights::heat(0.1, 0.15);
        for k in [1usize, 2, 3, 4, 5, 8] {
            let fast = weight_matrix(&mut mach, &w, k);
            let slow = weight_matrix_host(&w, k);
            assert_eq!(fast.rows(), 2 * k + 1);
            assert!(max_abs_diff(&fast, &slow) < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn tcu_stencil_matches_k_host_sweeps() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = StencilWeights::heat(0.12, 0.08);
        for (d, k) in [(8usize, 1usize), (8, 2), (8, 4), (12, 3), (16, 4), (16, 8)] {
            let grid = random_grid(d, &mut rng);
            let want = run_host(&grid, &w, k);
            let mut mach = TcuMachine::model(16, 7);
            let got = run_tcu(&mut mach, &grid, &w, k);
            assert!(max_abs_diff(&got, &want) < 1e-8, "d={d} k={k}");
        }
    }

    #[test]
    fn identity_stencil_is_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let grid = random_grid(8, &mut rng);
        let mut mach = TcuMachine::model(16, 0);
        let got = run_tcu(&mut mach, &grid, &StencilWeights::identity(), 4);
        assert!(max_abs_diff(&got, &grid) < 1e-10);
    }

    #[test]
    fn shift_stencil_translates_on_torus() {
        // w[(0,1)] neighbourhood offset (−1, 0): every sweep pulls the
        // value from the row above, i.e. shifts the grid downward.
        let d = 8;
        let mut w = [[0.0; 3]; 3];
        w[0][1] = 1.0;
        let w = StencilWeights(w);
        let grid = Matrix::from_fn(d, d, |i, j| (i * d + j) as f64);
        let k = 4;
        let mut mach = TcuMachine::model(16, 0);
        let got = run_tcu(&mut mach, &grid, &w, k);
        let want = Matrix::from_fn(d, d, |i, j| grid[((i + d - k) % d, j)]);
        assert!(max_abs_diff(&got, &want) < 1e-8);
    }

    #[test]
    fn heat_sweeps_conserve_total_mass() {
        // Heat weights sum to 1, so the toroidal dynamics conserve ΣA.
        let mut rng = StdRng::seed_from_u64(3);
        let grid = random_grid(16, &mut rng);
        let w = StencilWeights::heat(0.2, 0.1);
        let mut mach = TcuMachine::model(16, 5);
        let got = run_tcu(&mut mach, &grid, &w, 4);
        let before: f64 = grid.as_slice().iter().sum();
        let after: f64 = got.as_slice().iter().sum();
        assert!((before - after).abs() < 1e-8 * before.abs().max(1.0));
    }

    #[test]
    fn direct_baseline_matches_host_and_charges_nk() {
        let mut rng = StdRng::seed_from_u64(4);
        let (d, k) = (8usize, 5usize);
        let grid = random_grid(d, &mut rng);
        let w = StencilWeights::heat(0.1, 0.1);
        let mut mach = TcuMachine::model(16, 0);
        let got = run_direct(&mut mach, &grid, &w, k);
        assert!(max_abs_diff(&got, &run_host(&grid, &w, k)) < 1e-12);
        // 5 non-zero weights ⇒ 2·5·d²·k charged ops, no tensor calls.
        assert_eq!(mach.time(), (2 * 5 * d * d * k) as u64);
        assert_eq!(mach.stats().tensor_calls, 0);
    }

    #[test]
    fn tcu_beats_direct_for_large_k() {
        // Theorem 8's point: n·log_m k + ℓ·log k ≪ n·k once k is large.
        // The convolution path carries a sizeable constant (padded
        // transforms), so the crossover sits at k in the low hundreds —
        // the experiment binary maps it; here we pin one point past it.
        let mut rng = StdRng::seed_from_u64(5);
        let (d, k) = (128usize, 128usize);
        let grid = random_grid(d, &mut rng);
        let w = StencilWeights::heat(0.05, 0.05);

        // Weight matrix computed once (amortizable across grids), then the
        // Lemma 1 application phase must beat k direct sweeps.
        let mut weights_mach = TcuMachine::model(4096, 10);
        let wk = weight_matrix(&mut weights_mach, &w, k);

        let mut fast = TcuMachine::model(4096, 10);
        let tcu_result = run_tcu_with_weights(&mut fast, &grid, &wk, k);
        let mut slow = TcuMachine::model(4096, 10);
        let direct_result = run_direct(&mut slow, &grid, &w, k);
        assert!(
            fast.time() < slow.time(),
            "TCU {} vs direct {}",
            fast.time(),
            slow.time()
        );
        // Even counting weight construction, the whole pipeline is within
        // 1.5× of the direct baseline at this k (the experiment binary
        // maps the full crossover at larger k).
        assert!(fast.time() + weights_mach.time() < slow.time() * 3 / 2);
        assert!(max_abs_diff(&tcu_result, &direct_result) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_tile_size() {
        let mut mach = TcuMachine::model(16, 0);
        let grid = Matrix::<f64>::zeros(10, 10);
        let _ = run_tcu(&mut mach, &grid, &StencilWeights::identity(), 3);
    }
}
