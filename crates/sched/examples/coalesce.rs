//! End-to-end tour of the deferred runtime: record a blocked
//! multiplication, watch the scheduler coalesce it, and watch the pack
//! cache collapse the re-streamed strips.
//!
//! ```sh
//! cargo run --release -p tcu-sched --example coalesce
//! ```
//!
//! Two demonstrations on one `d × d` product:
//!
//! 1. **Model-level win (coalescing).** The flow is recorded in 16-wide
//!    blocks — the natural code for a √m = 16 unit — but planned for a
//!    √m = 32 unit. Width merging fuses adjacent block columns and
//!    inner merging fuses adjacent k-slices, so 4 recorded ops become 1
//!    invocation: 4× fewer `ℓ` charges *and* 4× fewer streamed rows.
//! 2. **Host-level win (strip reuse).** The same recording planned for
//!    a √m = 16 unit cannot merge (blocks already fill the footprint),
//!    but the pack cache keys packed strips by (buffer, generation,
//!    region): each of the `d/16` strips is packed once and re-used for
//!    all `d/16` block columns — `q×` fewer strip packs.
//! 3. **Versioned pipeline on parallel units.** A second stage reading
//!    the first stage's output is recorded into the *same* graph (the
//!    RAW hazard orders the stages), planned once for 4 units, and
//!    executed with `Schedule::run_parallel`: per-wave LPT placement,
//!    per-unit pack caches, wall-clock = Σ wave makespans.

use tcu_core::{ModelTensorUnit, ParallelTcuMachine, TcuMachine, TensorOp};
use tcu_linalg::ops::matmul_naive;
use tcu_linalg::Matrix;
use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

fn workload(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// Record the Theorem-2 blocked flow at block size `blk`.
fn record_blocked(d: usize, blk: usize) -> (OpGraph, [tcu_sched::BufferId; 3]) {
    let mut g = OpGraph::new();
    let a = g.buffer("A", d, d);
    let b = g.buffer("B", d, d);
    let c = g.buffer("C", d, d);
    let q = d / blk;
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp {
                    accumulate: true,
                    ..TensorOp::padded(d, blk, blk)
                },
                OperandRef::new(a, 0, k * blk, d, blk),
                OperandRef::new(b, k * blk, j * blk, blk, blk),
                OperandRef::new(c, 0, j * blk, d, blk),
            );
        }
    }
    (g, [a, b, c])
}

fn main() {
    let d = 128usize;
    let a = workload(d, d, 1);
    let b = workload(d, d, 2);
    let want = matmul_naive(&a, &b);
    let (g, [ab, bb, cb]) = record_blocked(d, 16);
    println!("recorded: {} accumulate ops (block 16, d = {d})\n", g.len());

    // 1. Plan the 16-wide recording for a √m = 32 unit.
    {
        let mut mach = TcuMachine::model(32 * 32, 10_000);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let eager = Scheduler::new().without_coalescing().plan(&g, mach.unit());
        println!("√m = 32 unit — op coalescing:");
        println!(
            "  eager:     {:>4} invocations, {:>9} rows streamed, simulated time {}",
            eager.invocations(),
            eager.charged_rows(),
            eager.makespan()
        );
        println!(
            "  coalesced: {:>4} invocations, {:>9} rows streamed, simulated time {} ({}× fewer ops)",
            plan.invocations(),
            plan.charged_rows(),
            plan.makespan(),
            eager.invocations() / plan.invocations().max(1)
        );
        let mut c = Matrix::<i64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c, want, "coalesced result must equal the oracle");
        println!("  result: matches the naive oracle element-for-element\n");
    }

    // 2. Plan the same recording for a √m = 16 unit with the pack cache.
    {
        let mut mach = TcuMachine::model(16 * 16, 10_000);
        mach.executor_mut().enable_pack_cache(d / 16);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let mut c = Matrix::<i64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c, want, "cached result must equal the oracle");
        let stats = mach.executor().pack_cache_stats().expect("cache enabled");
        println!("√m = 16 unit — cross-invocation strip cache:");
        println!(
            "  {} invocations looked up, {} strip packs performed ({} hits): {}× fewer packs",
            stats.lookups,
            stats.misses,
            stats.hits,
            stats.lookups / stats.misses.max(1)
        );
        println!(
            "  packed bytes moved: {} (pack-per-invocation would move {})",
            stats.packed_bytes,
            stats.packed_bytes * stats.lookups / stats.misses.max(1)
        );
        println!("  result: matches the naive oracle element-for-element\n");
    }

    // 3. Two-stage pipeline (M = A·B, C = M·B) in ONE graph, executed
    //    across 4 units.
    {
        let s = 16usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let mb = g.buffer("M", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for (src, dst) in [(ab, mb), (mb, cb)] {
            for j in 0..q {
                for k in 0..q {
                    g.record(
                        TensorOp::mul_acc(d, s),
                        OperandRef::new(src, 0, k * s, d, s),
                        OperandRef::new(bb, k * s, j * s, s, s),
                        OperandRef::new(dst, 0, j * s, d, s),
                    );
                }
            }
        }
        let unit = ModelTensorUnit::new(s * s, 10_000);
        let units = 4usize;
        let plan = Scheduler::new().with_units(units).plan(&g, &unit);
        let mut mach = ParallelTcuMachine::new(unit, units);
        mach.enable_pack_caches(2 * q);
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run_parallel(&mut mach, &mut env);
        assert_eq!(c, matmul_naive(&want, &b), "pipeline must chain stages");
        println!("versioned pipeline (M = A·B; C = M·B, one graph) on 4 units:");
        println!(
            "  {} ops in {} waves; tensor work {} executed in makespan {} ({}× fewer time steps)",
            plan.ops(),
            plan.waves(),
            plan.tensor_time(),
            mach.time(),
            plan.tensor_time() / mach.time().max(1)
        );
        println!("  result: matches the chained oracle element-for-element");
    }
}
