//! Tour of the fault-tolerance layer: a multi-unit pipeline run under
//! deterministic fault injection, recovering without changing a byte of
//! its observable output.
//!
//! ```sh
//! cargo run --release -p tcu-sched --example chaos
//! ```
//!
//! Three demonstrations on one two-stage pipeline (M = A·B, C = M·B)
//! across 4 units:
//!
//! 1. **Recovery is unobservable.** A seeded [`FaultPlan`] injects
//!    transient drops and one permanently dead unit; the wave driver
//!    retries, quarantines, and re-partitions — and the elements,
//!    `Stats`, and trace digest come out byte-identical to the
//!    fault-free run. Only `time()` (backoff + requeue makespan) and
//!    [`FaultStats`] show that anything happened.
//! 2. **Replayability.** The same seed replays the same faults: the
//!    recovery counters and fault trace are reproduced exactly.
//! 3. **Unrecoverable plans fail typed.** Killing every unit yields
//!    [`TcuError::AllUnitsQuarantined`] — an `Err`, not a panic.

use tcu_core::{
    assign_unit_ids, silence_injected_fault_panics, FaultKind, FaultPlan, FaultyExecutor,
    HostExecutor, ModelTensorUnit, ParallelTcuMachine, RecoveryPolicy, TensorOp,
};
use tcu_linalg::Matrix;
use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

fn workload(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// The two-stage pipeline of the coalesce example: M = A·B then
/// C = M·B, recorded into one graph (the RAW hazard orders the stages).
fn pipeline(d: usize, s: usize) -> (OpGraph, [tcu_sched::BufferId; 4]) {
    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let mb = g.buffer("M", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / s;
    for (src, dst) in [(ab, mb), (mb, cb)] {
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp::mul_acc(d, s),
                    OperandRef::new(src, 0, k * s, d, s),
                    OperandRef::new(bb, k * s, j * s, s, s),
                    OperandRef::new(dst, 0, j * s, d, s),
                );
            }
        }
    }
    (g, [ab, bb, mb, cb])
}

/// One parallel run with fault injection from `fplan`; returns the
/// written C, the machine's observables, and the run result.
#[allow(clippy::type_complexity)]
fn run_with_faults(
    g: &OpGraph,
    bufs: &[tcu_sched::BufferId; 4],
    plan: &tcu_sched::Schedule,
    units: usize,
    s: usize,
    fplan: FaultPlan,
) -> (
    Result<(), tcu_core::TcuError>,
    Matrix<i64>,
    tcu_core::Stats,
    u64,
    u64,
    tcu_core::FaultStats,
    Vec<tcu_core::TraceEvent>,
) {
    let d = 128usize;
    let [ab, bb, mb, cb] = *bufs;
    let unit = ModelTensorUnit::new(s * s, 10_000);
    let mut mach = ParallelTcuMachine::with_executor(
        unit,
        units,
        FaultyExecutor::new(HostExecutor::new(), fplan),
    );
    assign_unit_ids(&mut mach);
    for u in 0..units {
        mach.unit_executor_mut(u).inner_mut().enable_pack_cache(16);
    }
    mach.enable_trace();
    let a = workload(d, d, 1);
    let b = workload(d, d, 2);
    let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
    let mut env = ExecEnv::new(g);
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(mb, m.view_mut());
    env.bind_output(cb, c.view_mut());
    let r = plan.try_run_parallel_with(&mut mach, &mut env, RecoveryPolicy::default());
    drop(env);
    let trace = mach.take_trace();
    (
        r,
        c,
        mach.stats().clone(),
        mach.time(),
        trace.digest(),
        *mach.fault_stats(),
        trace.fault_events(),
    )
}

fn main() {
    silence_injected_fault_panics();
    let (d, s, units) = (128usize, 16usize, 4usize);
    let (g, bufs) = pipeline(d, s);
    let unit = ModelTensorUnit::new(s * s, 10_000);
    let plan = Scheduler::new().with_units(units).plan(&g, &unit);
    println!(
        "pipeline: {} ops in {} waves on {units} units, planned makespan {}\n",
        plan.ops(),
        plan.waves(),
        plan.makespan()
    );

    // Fault-free baseline: the empty plan is a pure pass-through.
    let (ok, c_free, stats_free, t_free, digest_free, fs_free, _) =
        run_with_faults(&g, &bufs, &plan, units, s, FaultPlan::none());
    assert!(ok.is_ok());
    assert_eq!(fs_free, tcu_core::FaultStats::default());
    println!("fault-free run:  time {t_free}, digest {digest_free:#018x}");

    // 1. Seeded chaos: transient drops everywhere, unit 2 dies.
    let fplan = FaultPlan::seeded(0xDECAF, units, 24, 60, 1);
    println!(
        "injecting {} planned faults (seed 0xDECAF: ≤6% transient per execution, 1 permanent victim)",
        fplan.len()
    );
    let (r, c, stats, t, digest, fs, fault_trace) =
        run_with_faults(&g, &bufs, &plan, units, s, fplan.clone());
    assert!(r.is_ok(), "seeded plans are recoverable by construction");
    println!(
        "chaos run:       time {t}, digest {digest:#018x}\n  {} transient faults retried ({} retries, backoff {}), {} unit(s) quarantined, {} ops requeued (makespan {})",
        fs.transient_faults, fs.retries, fs.backoff_time, fs.quarantined_units, fs.requeued_ops, fs.recovery_makespan
    );
    assert_eq!(c, c_free, "elements must be byte-identical");
    assert_eq!(stats, stats_free, "Stats must be byte-identical");
    assert_eq!(digest, digest_free, "digest must be byte-identical");
    assert_eq!(t, t_free + fs.backoff_time + fs.recovery_makespan);
    println!("  elements, Stats, digest: byte-identical to the fault-free run");
    println!(
        "  recovery visible only in time (+{}) and FaultStats\n",
        t - t_free
    );

    // 2. Same seed, same faults, same recovery — replayable by design.
    let (r2, _, _, t2, _, fs2, fault_trace2) = run_with_faults(&g, &bufs, &plan, units, s, fplan);
    assert!(r2.is_ok());
    assert_eq!((t2, fs2), (t, fs));
    assert_eq!(fault_trace2, fault_trace);
    println!(
        "replay:          identical fault trace ({} events), identical counters\n",
        fault_trace.len()
    );

    // 3. Kill every unit at its first execution: typed failure.
    let mut all_dead = FaultPlan::none();
    for u in 0..units {
        all_dead = all_dead.fail(u, 0, FaultKind::Permanent);
    }
    let (r3, ..) = run_with_faults(&g, &bufs, &plan, units, s, all_dead);
    match r3 {
        Err(e) => println!("all units dead:  Err({e})"),
        Ok(()) => unreachable!("losing every unit cannot succeed"),
    }
}
