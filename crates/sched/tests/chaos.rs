//! Chaos suite: the recovery contract of the fault-tolerant wave
//! driver, under deterministic fault injection.
//!
//! For random RAW-pipeline graphs (the same generator as the
//! thread-count-invariance suite) and every unit count in {1, 2, 4, 8},
//! a seeded *recoverable* [`FaultPlan`] — transient faults never
//! consecutive on a unit, permanent faults on at most `units − 1` units
//! — must leave the run's *elements*, *Stats*, and *trace digest*
//! byte-identical to the fault-free run. Recovery is observable only in
//! `time()` (retry backoff, requeue makespan), in [`FaultStats`], and
//! in the digest-exempt fault/retry/quarantine trace annotations —
//! which must themselves be reproducible: the same plan replayed twice
//! yields the same fault trace.
//!
//! Unrecoverable plans must come back as typed [`TcuError`]s — never a
//! panic, never an abort.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcu_core::{
    assign_unit_ids, silence_injected_fault_panics, FaultKind, FaultPlan, FaultStats,
    FaultyExecutor, HostExecutor, ModelTensorUnit, PadPolicy, ParallelTcuMachine, RecoveryPolicy,
    TcuError, TcuMachine, TensorOp, TraceLog,
};
use tcu_linalg::Matrix;
use tcu_sched::{BufferId, ExecEnv, OpGraph, OperandRef, Schedule, Scheduler};

const DIM: usize = 32;
const SQRT_M: usize = 8;
const UNIT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Execution indices covered by seeded plans — past any unit's per-run
/// execution count, so planned faults actually land.
const HORIZON: u64 = 64;

/// Buffer handles of the shared 4-buffer layout (A, B inputs; C, D
/// read-write) the generator records over.
struct Bufs {
    a: BufferId,
    b: BufferId,
    c: BufferId,
    d: BufferId,
}

/// The RAW-pipeline generator of the thread-count-invariance suite —
/// chaos injection must hold on the same population of graphs.
fn random_graph(seed: u64) -> (OpGraph, Bufs) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut g = OpGraph::new();
    let bufs = Bufs {
        a: g.buffer("A", DIM, DIM),
        b: g.buffer("B", DIM, DIM),
        c: g.buffer("C", DIM, DIM),
        d: g.buffer("D", DIM, DIM),
    };
    let n = rng.gen_range(4..24usize);
    for _ in 0..n {
        let rows = 16usize;
        let inner = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let width = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let a_r0 = 16 * rng.gen_range(0..=1usize);
        let a_c0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_r0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        let (a_buf, out_buf) = if rng.gen_range(0..3u32) == 0 {
            if rng.gen_range(0..2u32) == 0 {
                (bufs.c, bufs.d)
            } else {
                (bufs.d, bufs.c)
            }
        } else {
            let out = if rng.gen_range(0..2u32) == 0 {
                bufs.c
            } else {
                bufs.d
            };
            (bufs.a, out)
        };
        let out_r0 = 16 * rng.gen_range(0..=1usize);
        let out_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        g.record(
            TensorOp {
                rows,
                inner,
                width,
                accumulate: rng.gen_range(0..4u32) != 0,
                pad: PadPolicy::ZeroPad,
            },
            OperandRef::new(a_buf, a_r0, a_c0, rows, inner),
            OperandRef::new(bufs.b, b_r0, b_c0, inner, width),
            OperandRef::new(out_buf, out_r0, out_c0, rows, width),
        );
    }
    (g, bufs)
}

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// Everything one faulty parallel run observes.
struct ChaosRun {
    result: Result<(), TcuError>,
    c: Matrix<i64>,
    d: Matrix<i64>,
    stats: tcu_core::Stats,
    trace: TraceLog,
    time: u64,
    fault_stats: FaultStats,
}

/// One `try_run_wave_with` execution on a fresh machine whose every
/// unit executor injects from `fplan`. Pinned to the wave driver: this
/// suite is the wave driver's recovery contract (full fault-trace and
/// `time()` replay determinism); the dataflow driver's fault contract —
/// byte-unobservable recovery, with replay determinism scoped to what
/// barrier-free execution can promise — lives in `dataflow_exec.rs`.
fn run_faulty(
    g: &OpGraph,
    bufs: &Bufs,
    plan: &Schedule,
    units: usize,
    seed: u64,
    fplan: FaultPlan,
    policy: RecoveryPolicy,
) -> ChaosRun {
    silence_injected_fault_panics();
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let mut mach = ParallelTcuMachine::with_executor(
        unit,
        units,
        FaultyExecutor::new(HostExecutor::new(), fplan),
    );
    assign_unit_ids(&mut mach);
    for u in 0..units {
        mach.unit_executor_mut(u).inner_mut().enable_pack_cache(16);
    }
    mach.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    let result = plan.try_run_wave_with(&mut mach, &mut env, policy);
    drop(env);
    ChaosRun {
        result,
        c,
        d,
        stats: mach.stats().clone(),
        time: mach.time(),
        fault_stats: *mach.fault_stats(),
        trace: mach.take_trace(),
    }
}

/// The fault-free serial scheduled reference: elements, Stats, trace.
fn serial_reference(
    g: &OpGraph,
    bufs: &Bufs,
    seed: u64,
) -> (Matrix<i64>, Matrix<i64>, tcu_core::Stats, TraceLog) {
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let plan = Scheduler::new().plan(g, &unit);
    let mut ser = TcuMachine::new(unit);
    ser.executor_mut().enable_pack_cache(16);
    ser.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    plan.run(&mut ser, &mut env);
    drop(env);
    (c, d, ser.stats().clone(), ser.take_trace())
}

/// The recovery contract at one unit count under one seeded plan.
fn check_recovery_unobservable(seed: u64) {
    let (g, bufs) = random_graph(seed);
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let (c_ref, d_ref, stats_ref, trace_ref) = serial_reference(&g, &bufs, seed);

    for units in UNIT_COUNTS {
        let plan = Scheduler::new().with_units(units).plan(&g, &unit);
        // Recoverable by construction: no consecutive transients, at
        // most units − 1 permanent victims (and none at 1 unit).
        let fplan = FaultPlan::seeded(seed ^ 0xC44F, units, HORIZON, 150, units / 2);
        let run = run_faulty(
            &g,
            &bufs,
            &plan,
            units,
            seed,
            fplan.clone(),
            RecoveryPolicy::default(),
        );
        prop_assert!(
            run.result.is_ok(),
            "recoverable plan failed at {} units: {:?}",
            units,
            run.result
        );

        // The contract: elements, Stats, digest byte-identical to the
        // fault-free run; the scheduled events (faults stripped) are
        // the fault-free trace exactly.
        prop_assert_eq!(&run.c, &c_ref, "elements (C) at {} units", units);
        prop_assert_eq!(&run.d, &d_ref, "elements (D) at {} units", units);
        prop_assert_eq!(&run.stats, &stats_ref, "Stats at {} units", units);
        prop_assert_eq!(run.trace.digest(), trace_ref.digest());
        prop_assert_eq!(
            run.trace.without_faults().events(),
            trace_ref.events(),
            "scheduled events at {} units",
            units
        );

        // Recovery cost is visible where it should be: wall-clock at
        // least the planned makespan, exceeding it exactly when the
        // fault counters say recovery was charged.
        prop_assert!(run.time >= plan.makespan());
        let charged = run.fault_stats.backoff_time + run.fault_stats.recovery_makespan;
        prop_assert_eq!(run.time, plan.makespan() + charged);
        let saw_faults = run.fault_stats.transient_faults + run.fault_stats.permanent_faults > 0;
        prop_assert_eq!(
            !run.trace.fault_events().is_empty(),
            saw_faults,
            "fault annotations iff faults fired at {} units",
            units
        );

        // Reproducibility: the same plan replayed gives the same fault
        // trace, the same counters, the same bytes.
        let again = run_faulty(
            &g,
            &bufs,
            &plan,
            units,
            seed,
            fplan,
            RecoveryPolicy::default(),
        );
        prop_assert!(again.result.is_ok());
        prop_assert_eq!((&again.c, &again.d), (&run.c, &run.d));
        prop_assert_eq!(again.fault_stats, run.fault_stats);
        prop_assert_eq!(
            again.trace.fault_events(),
            run.trace.fault_events(),
            "fault trace must replay byte-identically at {} units",
            units
        );
        prop_assert_eq!(again.time, run.time);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random RAW pipelines × seeded recoverable fault plans at
    // 1/2/4/8 units: recovery must be unobservable in elements, Stats,
    // and digest, and the fault trace must replay exactly.
    #[test]
    fn recoverable_faults_are_unobservable_and_replayable(seed in 0u64..10_000) {
        check_recovery_unobservable(seed);
    }
}

/// A fixed single-wave graph: two independent ops (disjoint outputs),
/// enough to occupy two units or quarantine down to one.
fn two_op_graph() -> (OpGraph, Bufs) {
    let mut g = OpGraph::new();
    let bufs = Bufs {
        a: g.buffer("A", DIM, DIM),
        b: g.buffer("B", DIM, DIM),
        c: g.buffer("C", DIM, DIM),
        d: g.buffer("D", DIM, DIM),
    };
    for (r0, c0) in [(0usize, 0usize), (16, 16)] {
        g.record(
            TensorOp::mul(16, 8),
            OperandRef::new(bufs.a, r0, 0, 16, 8),
            OperandRef::new(bufs.b, 0, c0, 8, 8),
            OperandRef::new(bufs.c, r0, c0, 16, 8),
        );
    }
    (g, bufs)
}

fn plan_at(g: &OpGraph, units: usize) -> Schedule {
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    Scheduler::new().with_units(units).plan(g, &unit)
}

#[test]
fn exhausted_retries_fail_typed_not_panicking() {
    let (g, bufs) = two_op_graph();
    let plan = plan_at(&g, 1);
    // Transient on three consecutive executions of unit 0: attempts
    // 1, 2, 3 of the first op all fault — max_attempts = 3 exhausted.
    let fplan = FaultPlan::none()
        .fail(0, 0, FaultKind::Transient)
        .fail(0, 1, FaultKind::Transient)
        .fail(0, 2, FaultKind::Transient);
    let run = run_faulty(&g, &bufs, &plan, 1, 3, fplan, RecoveryPolicy::default());
    match run.result {
        Err(TcuError::RetriesExhausted { unit, attempts, .. }) => {
            assert_eq!(unit, 0);
            assert_eq!(attempts, 3);
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // The failing wave's scratches were discarded, never half-merged.
    assert_eq!(run.c, Matrix::<i64>::zeros(DIM, DIM));
}

#[test]
fn raising_max_attempts_recovers_the_same_plan() {
    let (g, bufs) = two_op_graph();
    let plan = plan_at(&g, 1);
    let fplan = FaultPlan::none()
        .fail(0, 0, FaultKind::Transient)
        .fail(0, 1, FaultKind::Transient)
        .fail(0, 2, FaultKind::Transient);
    let policy = RecoveryPolicy {
        max_attempts: 4,
        quarantine: true,
    };
    let run = run_faulty(&g, &bufs, &plan, 1, 3, fplan, policy);
    assert!(run.result.is_ok(), "{:?}", run.result);
    assert_eq!(run.fault_stats.transient_faults, 3);
    assert_eq!(run.fault_stats.retries, 3);
    let (c_ref, ..) = serial_reference(&g, &bufs, 3);
    assert_eq!(run.c, c_ref);
}

#[test]
fn all_units_quarantined_fails_typed_not_hanging() {
    let (g, bufs) = two_op_graph();
    let plan = plan_at(&g, 2);
    // Every unit dies on its first execution: quarantine empties the
    // survivor set with work still pending.
    let fplan = FaultPlan::none()
        .fail(0, 0, FaultKind::Permanent)
        .fail(1, 0, FaultKind::Permanent);
    let run = run_faulty(&g, &bufs, &plan, 2, 5, fplan, RecoveryPolicy::default());
    match run.result {
        Err(TcuError::AllUnitsQuarantined { pending, .. }) => assert!(pending > 0),
        other => panic!("expected AllUnitsQuarantined, got {other:?}"),
    }
}

#[test]
fn quarantine_off_makes_permanent_faults_fatal() {
    let (g, bufs) = two_op_graph();
    let plan = plan_at(&g, 2);
    let fplan = FaultPlan::none().fail(0, 0, FaultKind::Permanent);
    let policy = RecoveryPolicy {
        max_attempts: 3,
        quarantine: false,
    };
    let run = run_faulty(&g, &bufs, &plan, 2, 5, fplan, policy);
    match run.result {
        Err(TcuError::UnitFault { unit, .. }) => assert_eq!(unit, 0),
        other => panic!("expected UnitFault, got {other:?}"),
    }
}

#[test]
fn single_dead_unit_is_quarantined_and_survivors_finish() {
    let (g, bufs) = two_op_graph();
    let plan = plan_at(&g, 2);
    let fplan = FaultPlan::none().fail(0, 0, FaultKind::Permanent);
    let run = run_faulty(&g, &bufs, &plan, 2, 5, fplan, RecoveryPolicy::default());
    assert!(run.result.is_ok(), "{:?}", run.result);
    assert_eq!(run.fault_stats.quarantined_units, 1);
    assert_eq!(run.fault_stats.permanent_faults, 1);
    assert!(run.fault_stats.requeued_ops > 0);
    let (c_ref, _, stats_ref, trace_ref) = serial_reference(&g, &bufs, 5);
    assert_eq!(run.c, c_ref, "survivor-executed elements must match");
    assert_eq!(run.stats, stats_ref);
    assert_eq!(run.trace.digest(), trace_ref.digest());
    assert!(
        run.time > plan.makespan(),
        "requeue makespan must be charged"
    );
}

#[test]
fn bind_errors_are_typed() {
    let (g, bufs) = two_op_graph();
    let wrong = Matrix::<i64>::zeros(DIM, DIM - 1);
    let mut env = ExecEnv::<i64>::new(&g);
    match env.try_bind_input(bufs.b, wrong.view()) {
        Err(TcuError::BindShape { expected, got, .. }) => {
            assert_eq!(expected, (DIM, DIM));
            assert_eq!(got, (DIM, DIM - 1));
        }
        other => panic!("expected BindShape, got {other:?}"),
    }
    // C is written by the graph: binding it read-only is typed too.
    let a = Matrix::<i64>::zeros(DIM, DIM);
    match env.try_bind_input(bufs.c, a.view()) {
        Err(TcuError::BindWrittenAsInput { buffer }) => assert_eq!(buffer, bufs.c.index()),
        other => panic!("expected BindWrittenAsInput, got {other:?}"),
    }
}

#[test]
fn unbound_buffers_fail_typed_in_try_run() {
    let (g, bufs) = two_op_graph();
    let plan = plan_at(&g, 1);
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let mut ser = TcuMachine::new(unit);
    let a = pseudo(DIM, DIM, 0);
    let mut env = ExecEnv::new(&g);
    env.bind_input(bufs.a, a.view());
    // B never bound, C (the output) never bound: first touch reports.
    match plan.try_run(&mut ser, &mut env) {
        Err(TcuError::Unbound { .. }) => {}
        other => panic!("expected Unbound, got {other:?}"),
    }
}
