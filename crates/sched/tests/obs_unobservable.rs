//! Recorder unobservability: attaching a `tcu-obs` telemetry recorder
//! must be **byte-unobservable** in everything the simulation defines —
//! output elements, `Stats`, the trace digest, and the simulated clock
//! — because recorders only observe wall time and already-charged
//! quantities, never feed anything back.
//!
//! For random RAW-pipeline graphs (the chaos suite's generator) at
//! every unit count in {1, 2, 4, 8}, both fault-free and under a seeded
//! recoverable [`FaultPlan`], the recorder-on run must be byte-identical
//! to the recorder-off run — while the sink itself must visibly have
//! recorded the execution (per-op spans, one wave event per wave), so a
//! silently-disabled recorder can never fake the invariant.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tcu_core::{
    assign_unit_ids, silence_injected_fault_panics, FaultPlan, FaultyExecutor, HostExecutor,
    ModelTensorUnit, PadPolicy, ParallelTcuMachine, RecoveryPolicy, TensorOp,
};
use tcu_linalg::Matrix;
use tcu_sched::{BufferId, ExecEnv, OpGraph, OperandRef, Schedule, Scheduler};

const DIM: usize = 32;
const SQRT_M: usize = 8;
const UNIT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Execution indices covered by seeded plans — past any unit's per-run
/// execution count, so planned faults actually land.
const HORIZON: u64 = 64;

/// Buffer handles of the shared 4-buffer layout (A, B inputs; C, D
/// read-write) the generator records over.
struct Bufs {
    a: BufferId,
    b: BufferId,
    c: BufferId,
    d: BufferId,
}

/// The RAW-pipeline generator of the chaos / thread-count-invariance
/// suites — recorder unobservability must hold on the same population.
fn random_graph(seed: u64) -> (OpGraph, Bufs) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut g = OpGraph::new();
    let bufs = Bufs {
        a: g.buffer("A", DIM, DIM),
        b: g.buffer("B", DIM, DIM),
        c: g.buffer("C", DIM, DIM),
        d: g.buffer("D", DIM, DIM),
    };
    let n = rng.gen_range(4..24usize);
    for _ in 0..n {
        let rows = 16usize;
        let inner = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let width = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let a_r0 = 16 * rng.gen_range(0..=1usize);
        let a_c0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_r0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        let (a_buf, out_buf) = if rng.gen_range(0..3u32) == 0 {
            if rng.gen_range(0..2u32) == 0 {
                (bufs.c, bufs.d)
            } else {
                (bufs.d, bufs.c)
            }
        } else {
            let out = if rng.gen_range(0..2u32) == 0 {
                bufs.c
            } else {
                bufs.d
            };
            (bufs.a, out)
        };
        let out_r0 = 16 * rng.gen_range(0..=1usize);
        let out_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        g.record(
            TensorOp {
                rows,
                inner,
                width,
                accumulate: rng.gen_range(0..4u32) != 0,
                pad: PadPolicy::ZeroPad,
            },
            OperandRef::new(a_buf, a_r0, a_c0, rows, inner),
            OperandRef::new(bufs.b, b_r0, b_c0, inner, width),
            OperandRef::new(out_buf, out_r0, out_c0, rows, width),
        );
    }
    (g, bufs)
}

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// Everything the simulation defines about one run — what a recorder
/// must never perturb.
struct Observed {
    c: Matrix<i64>,
    d: Matrix<i64>,
    stats: tcu_core::Stats,
    digest: u64,
    time: u64,
}

/// One parallel run, optionally with a recorder attached through the
/// [`ExecEnv`] opt-in path (which the driver forwards to the machine).
fn run_once(
    g: &OpGraph,
    bufs: &Bufs,
    plan: &Schedule,
    units: usize,
    seed: u64,
    fplan: FaultPlan,
    recorder: Option<Arc<tcu_obs::ObsSink>>,
) -> Observed {
    silence_injected_fault_panics();
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let mut mach = ParallelTcuMachine::with_executor(
        unit,
        units,
        FaultyExecutor::new(HostExecutor::new(), fplan),
    );
    assign_unit_ids(&mut mach);
    for u in 0..units {
        mach.unit_executor_mut(u).inner_mut().enable_pack_cache(16);
    }
    mach.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    if let Some(rec) = recorder {
        env.enable_recorder(rec);
    }
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    plan.try_run_parallel_with(&mut mach, &mut env, RecoveryPolicy::default())
        .expect("seeded plans are recoverable");
    drop(env);
    Observed {
        c,
        d,
        stats: mach.stats().clone(),
        digest: mach.take_trace().digest(),
        time: mach.time(),
    }
}

/// Recorder on vs off at every unit count, fault-free and under a
/// seeded recoverable fault plan: the observed simulation must be
/// byte-identical, and the sink must prove it actually recorded.
fn check_recorder_unobservable(seed: u64) {
    let (g, bufs) = random_graph(seed);
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);

    for units in UNIT_COUNTS {
        let plan = Scheduler::new().with_units(units).plan(&g, &unit);
        for faulty in [false, true] {
            let fplan = if faulty {
                // Recoverable by construction: no consecutive
                // transients, at most units − 1 permanent victims.
                FaultPlan::seeded(seed ^ 0xC44F, units, HORIZON, 150, units / 2)
            } else {
                FaultPlan::none()
            };
            let off = run_once(&g, &bufs, &plan, units, seed, fplan.clone(), None);
            let sink = Arc::new(tcu_obs::ObsSink::new());
            let on = run_once(
                &g,
                &bufs,
                &plan,
                units,
                seed,
                fplan,
                Some(Arc::clone(&sink)),
            );

            let label = (units, faulty);
            prop_assert_eq!(&on.c, &off.c, "elements (C) at {:?}", label);
            prop_assert_eq!(&on.d, &off.d, "elements (D) at {:?}", label);
            prop_assert_eq!(&on.stats, &off.stats, "Stats at {:?}", label);
            prop_assert_eq!(on.digest, off.digest, "trace digest at {:?}", label);
            // The simulated clock is recorder-independent except in the
            // one documented gap: the threaded dataflow driver's
            // recovery charges under *permanent* faults depend on
            // dispatch timing, which a recorder may perturb (see the
            // `tcu_sched::run` module docs).
            let time_replayable = !faulty
                || units < 2
                || matches!(tcu_sched::exec_mode(), tcu_sched::ExecMode::Wave)
                || tcu_sched::DataflowTuning::from_env().use_inline();
            if time_replayable {
                prop_assert_eq!(on.time, off.time, "simulated clock at {:?}", label);
            }
            // Fault-free, the clock is exactly the planned wall for
            // the active driver (plus zero scalar work in these
            // graphs).
            if !faulty {
                prop_assert_eq!(
                    on.time,
                    plan.planned_parallel_time(),
                    "planned wall at {:?}",
                    label
                );
            }

            // The sink must have observed the run — otherwise a
            // recorder that silently drops out passes trivially.
            let m = sink.metrics();
            prop_assert!(
                m.get(tcu_obs::Metric::OpsExecuted) >= plan.ops() as u64,
                "per-op spans recorded at {:?}",
                label
            );
            match tcu_sched::exec_mode() {
                tcu_sched::ExecMode::Wave => prop_assert_eq!(
                    m.get(tcu_obs::Metric::Waves),
                    plan.waves() as u64,
                    "one wave span per wave at {:?}",
                    label
                ),
                // The dataflow driver has no waves; its dispatch
                // telemetry (ready-deque depth) proves recording.
                tcu_sched::ExecMode::Dataflow => prop_assert!(
                    m.get(tcu_obs::Metric::ReadyDepthPeak) >= 1,
                    "ready spans recorded at {:?}",
                    label
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random RAW pipelines × 1/2/4/8 units × {fault-free, seeded
    // recoverable faults}: recording must be byte-unobservable in
    // elements, Stats, trace digest, and the simulated clock.
    #[test]
    fn recording_is_byte_unobservable(seed in 0u64..10_000) {
        check_recorder_unobservable(seed);
    }
}
