//! The scheduler is executor-agnostic: the same plan runs unchanged on
//! the tiled host kernels (with or without the pack cache) and on the
//! cycle-level systolic array, producing identical elements, Stats, and
//! traces — scheduling decides *which* ops run in *what* order, the
//! executor only computes them.

use tcu_core::{TcuMachine, TensorOp, WeakTensorUnit};
use tcu_linalg::ops::matmul_naive;
use tcu_linalg::Matrix;
use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};
use tcu_systolic::SystolicExecutor;

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 31 + j as i64 * 17 + seed).wrapping_mul(48271) >> 7) % 23 - 11
    })
}

#[test]
fn host_and_systolic_agree_on_a_scheduled_blocked_flow() {
    let (d, s) = (16usize, 4usize);
    let a = pseudo(d, d, 1);
    let b = pseudo(d, d, 2);

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / s;
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp {
                    accumulate: true,
                    ..TensorOp::padded(d, s, s)
                },
                OperandRef::new(ab, 0, k * s, d, s),
                OperandRef::new(bb, k * s, j * s, s, s),
                OperandRef::new(cb, 0, j * s, d, s),
            );
        }
    }

    // Weak unit: the scheduler's invocation accounting must also agree
    // across backends when tall ops split into square tiles.
    let unit = WeakTensorUnit::new(s * s, 9);
    let plan = Scheduler::new().plan(&g, &unit);

    let mut host = TcuMachine::new(unit);
    host.executor_mut().enable_pack_cache(q);
    host.enable_trace();
    let mut c_host = Matrix::<i64>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(cb, c_host.view_mut());
    plan.run(&mut host, &mut env);

    let mut sys = TcuMachine::with_executor(unit, SystolicExecutor::new());
    sys.enable_trace();
    let mut c_sys = Matrix::<i64>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(cb, c_sys.view_mut());
    plan.run(&mut sys, &mut env);

    let want = matmul_naive(&a, &b);
    assert_eq!(c_host, want);
    assert_eq!(c_sys, want);
    assert_eq!(host.stats(), sys.stats());
    assert_eq!(host.take_trace(), sys.take_trace());
    assert_eq!(host.stats().tensor_calls, plan.invocations());
}
