//! The scheduler is executor-agnostic: the same plan runs unchanged on
//! the tiled host kernels (with or without the pack cache) and on the
//! cycle-level systolic array, producing identical elements, Stats, and
//! traces — scheduling decides *which* ops run in *what* order, the
//! executor only computes them.

use tcu_core::{TcuMachine, TensorOp, WeakTensorUnit};
use tcu_linalg::ops::matmul_naive;
use tcu_linalg::Matrix;
use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};
use tcu_systolic::SystolicExecutor;

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 31 + j as i64 * 17 + seed).wrapping_mul(48271) >> 7) % 23 - 11
    })
}

#[test]
fn host_and_systolic_agree_on_a_scheduled_blocked_flow() {
    let (d, s) = (16usize, 4usize);
    let a = pseudo(d, d, 1);
    let b = pseudo(d, d, 2);

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / s;
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp {
                    accumulate: true,
                    ..TensorOp::padded(d, s, s)
                },
                OperandRef::new(ab, 0, k * s, d, s),
                OperandRef::new(bb, k * s, j * s, s, s),
                OperandRef::new(cb, 0, j * s, d, s),
            );
        }
    }

    // Weak unit: the scheduler's invocation accounting must also agree
    // across backends when tall ops split into square tiles.
    let unit = WeakTensorUnit::new(s * s, 9);
    let plan = Scheduler::new().plan(&g, &unit);

    let mut host = TcuMachine::new(unit);
    host.executor_mut().enable_pack_cache(q);
    host.enable_trace();
    let mut c_host = Matrix::<i64>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(cb, c_host.view_mut());
    plan.run(&mut host, &mut env);

    let mut sys = TcuMachine::with_executor(unit, SystolicExecutor::new());
    sys.enable_trace();
    let mut c_sys = Matrix::<i64>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(cb, c_sys.view_mut());
    plan.run(&mut sys, &mut env);

    let want = matmul_naive(&a, &b);
    assert_eq!(c_host, want);
    assert_eq!(c_sys, want);
    assert_eq!(host.stats(), sys.stats());
    assert_eq!(host.take_trace(), sys.take_trace());
    assert_eq!(host.stats().tensor_calls, plan.invocations());
}

/// A single graph holding a two-stage RAW pipeline (M = A·B, C = M·B)
/// must plan once and execute identically on the serial host machine,
/// the cycle-level systolic array, and the multi-unit parallel machine —
/// with identical Stats wherever accounting is comparable.
#[test]
fn raw_pipeline_runs_on_serial_parallel_and_systolic_backends() {
    use tcu_core::{ModelTensorUnit, ParallelTcuMachine};

    let (d, s, p) = (16usize, 4usize, 2usize);
    let a = pseudo(d, d, 5);
    let b = pseudo(d, d, 6);
    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let mb = g.buffer("M", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / s;
    for (src, dst) in [(ab, mb), (mb, cb)] {
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    OperandRef::new(src, 0, k * s, d, s),
                    OperandRef::new(bb, k * s, j * s, s, s),
                    OperandRef::new(dst, 0, j * s, d, s),
                );
            }
        }
    }
    let unit = ModelTensorUnit::new(s * s, 3);
    let want_m = matmul_naive(&a, &b);
    let want_c = matmul_naive(&want_m, &b);

    #[allow(clippy::too_many_arguments)]
    fn run_serial<E: tcu_core::Executor>(
        mut mach: TcuMachine<ModelTensorUnit, E>,
        g: &OpGraph,
        unit: &ModelTensorUnit,
        bufs: [tcu_sched::BufferId; 4],
        a: &Matrix<i64>,
        b: &Matrix<i64>,
        d: usize,
    ) -> (Matrix<i64>, Matrix<i64>, tcu_core::Stats) {
        let [ab, bb, mb, cb] = bufs;
        let plan = Scheduler::new().plan(g, unit);
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let stats = mach.stats().clone();
        (m, c, stats)
    }
    let bufs = [ab, bb, mb, cb];
    let (m_host, c_host, stats_host) =
        run_serial(TcuMachine::new(unit), &g, &unit, bufs, &a, &b, d);
    let (m_sys, c_sys, stats_sys) = run_serial(
        TcuMachine::with_executor(unit, SystolicExecutor::new()),
        &g,
        &unit,
        bufs,
        &a,
        &b,
        d,
    );
    assert_eq!((&m_host, &c_host), (&m_sys, &c_sys), "backends agree");
    assert_eq!((&m_host, &c_host), (&want_m, &want_c), "oracle agrees");
    assert_eq!(stats_host, stats_sys);

    // Multi-unit execution of the same pipeline, on both backends.
    for systolic in [false, true] {
        let plan = Scheduler::new().with_units(p).plan(&g, &unit);
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        let stats = if systolic {
            let mut par = ParallelTcuMachine::with_executor(unit, p, SystolicExecutor::new());
            plan.run_parallel(&mut par, &mut env);
            assert_eq!(par.time(), plan.planned_parallel_time());
            par.stats().clone()
        } else {
            let mut par = ParallelTcuMachine::new(unit, p);
            par.enable_pack_caches(2 * q);
            plan.run_parallel(&mut par, &mut env);
            assert_eq!(par.time(), plan.planned_parallel_time());
            par.stats().clone()
        };
        assert_eq!((&m, &c), (&want_m, &want_c), "systolic={systolic}");
        assert_eq!(stats, stats_host, "per-op charges match serial");
    }
}
