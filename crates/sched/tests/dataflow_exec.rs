//! Determinism contract of the barrier-free dataflow driver.
//!
//! For random RAW-pipeline graphs (the chaos / thread-count-invariance
//! generator) at every unit count in {1, 2, 4, 8}, both dataflow
//! executors — inline and threaded — must be byte-identical to the
//! serial scheduled run (hence to the wave driver, whose own identity
//! `parallel_exec.rs` pins) in *elements*, *Stats*, and *trace digest*,
//! under every steal seed, under seeded transient fault plans, and
//! under seeded permanent (quarantine) fault plans. The simulated clock
//! must land exactly on [`Schedule::dataflow_makespan_seeded`] plus the
//! charged backoff/recovery, and the placement's makespan must never
//! exceed the wave makespan.
//!
//! Replay determinism is asserted to exactly the scope the driver
//! promises (see the `tcu_sched::run` module docs): everything is
//! repeat-deterministic except the *threaded* driver's fault counters
//! and recovery charges under *permanent* faults, which depend on
//! dispatch timing.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcu_core::{
    assign_unit_ids, silence_injected_fault_panics, FaultPlan, FaultStats, FaultyExecutor,
    HostExecutor, ModelTensorUnit, PackCacheStats, PadPolicy, ParallelTcuMachine, RecoveryPolicy,
    TcuError, TcuMachine, TensorOp,
};
use tcu_linalg::Matrix;
use tcu_sched::{BufferId, DataflowTuning, ExecEnv, OpGraph, OperandRef, Schedule, Scheduler};

const DIM: usize = 32;
const SQRT_M: usize = 8;
const UNIT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STEAL_SEEDS: [u64; 3] = [0, 1, 0xDEAD];
/// Execution indices covered by seeded fault plans — past any unit's
/// per-run execution count, so planned faults actually land.
const HORIZON: u64 = 64;

/// Buffer handles of the shared 4-buffer layout (A, B inputs; C, D
/// read-write) the generator records over.
struct Bufs {
    a: BufferId,
    b: BufferId,
    c: BufferId,
    d: BufferId,
}

/// The RAW-pipeline generator shared with the chaos and thread-count
/// invariance suites — the dataflow contract must hold on the same
/// population of graphs.
fn random_graph(seed: u64) -> (OpGraph, Bufs) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut g = OpGraph::new();
    let bufs = Bufs {
        a: g.buffer("A", DIM, DIM),
        b: g.buffer("B", DIM, DIM),
        c: g.buffer("C", DIM, DIM),
        d: g.buffer("D", DIM, DIM),
    };
    let n = rng.gen_range(4..24usize);
    for _ in 0..n {
        let rows = 16usize;
        let inner = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let width = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let a_r0 = 16 * rng.gen_range(0..=1usize);
        let a_c0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_r0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        let (a_buf, out_buf) = if rng.gen_range(0..3u32) == 0 {
            if rng.gen_range(0..2u32) == 0 {
                (bufs.c, bufs.d)
            } else {
                (bufs.d, bufs.c)
            }
        } else {
            let out = if rng.gen_range(0..2u32) == 0 {
                bufs.c
            } else {
                bufs.d
            };
            (bufs.a, out)
        };
        let out_r0 = 16 * rng.gen_range(0..=1usize);
        let out_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        g.record(
            TensorOp {
                rows,
                inner,
                width,
                accumulate: rng.gen_range(0..4u32) != 0,
                pad: PadPolicy::ZeroPad,
            },
            OperandRef::new(a_buf, a_r0, a_c0, rows, inner),
            OperandRef::new(bufs.b, b_r0, b_c0, inner, width),
            OperandRef::new(out_buf, out_r0, out_c0, rows, width),
        );
    }
    (g, bufs)
}

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// Everything one dataflow run observes.
struct DfRun {
    result: Result<(), TcuError>,
    c: Matrix<i64>,
    d: Matrix<i64>,
    stats: tcu_core::Stats,
    digest: u64,
    time: u64,
    fault_stats: FaultStats,
    caches: Vec<PackCacheStats>,
}

/// One `try_run_dataflow_with` execution on a fresh machine whose every
/// unit executor injects from `fplan` (`FaultPlan::none()` for a clean
/// run), under an explicit inline/threaded choice and steal seed.
#[allow(clippy::too_many_arguments)]
fn run_dataflow(
    g: &OpGraph,
    bufs: &Bufs,
    plan: &Schedule,
    units: usize,
    seed: u64,
    fplan: FaultPlan,
    steal_seed: u64,
    inline: bool,
) -> DfRun {
    silence_injected_fault_panics();
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let mut mach = ParallelTcuMachine::with_executor(
        unit,
        units,
        FaultyExecutor::new(HostExecutor::new(), fplan),
    );
    assign_unit_ids(&mut mach);
    for u in 0..units {
        mach.unit_executor_mut(u).inner_mut().enable_pack_cache(16);
    }
    mach.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    let tuning = DataflowTuning {
        steal_seed,
        inline: Some(inline),
    };
    let result = plan.try_run_dataflow_with(&mut mach, &mut env, RecoveryPolicy::default(), tuning);
    drop(env);
    let caches = (0..units)
        .map(|u| {
            mach.unit_executor(u)
                .inner()
                .pack_cache_stats()
                .expect("cache on")
        })
        .collect();
    DfRun {
        result,
        c,
        d,
        stats: mach.stats().clone(),
        digest: mach.take_trace().digest(),
        time: mach.time(),
        fault_stats: *mach.fault_stats(),
        caches,
    }
}

/// The fault-free serial scheduled reference: elements, Stats, digest.
fn serial_reference(
    g: &OpGraph,
    bufs: &Bufs,
    seed: u64,
) -> (Matrix<i64>, Matrix<i64>, tcu_core::Stats, u64) {
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let plan = Scheduler::new().plan(g, &unit);
    let mut ser = TcuMachine::new(unit);
    ser.executor_mut().enable_pack_cache(16);
    ser.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    plan.run(&mut ser, &mut env);
    drop(env);
    (c, d, ser.stats().clone(), ser.take_trace().digest())
}

/// Assert one run is byte-identical to the serial reference and that
/// its clock is exactly the placement makespan plus what the fault
/// counters say recovery charged.
fn assert_unobservable(
    run: &DfRun,
    refr: &(Matrix<i64>, Matrix<i64>, tcu_core::Stats, u64),
    plan: &Schedule,
    steal_seed: u64,
    label: &str,
) {
    prop_assert!(run.result.is_ok(), "{} failed: {:?}", label, run.result);
    prop_assert_eq!(&run.c, &refr.0, "elements (C): {}", label);
    prop_assert_eq!(&run.d, &refr.1, "elements (D): {}", label);
    prop_assert_eq!(&run.stats, &refr.2, "Stats: {}", label);
    prop_assert_eq!(run.digest, refr.3, "trace digest: {}", label);
    let charged = run.fault_stats.backoff_time + run.fault_stats.recovery_makespan;
    prop_assert_eq!(
        run.time,
        plan.dataflow_makespan_seeded(steal_seed) + charged,
        "clock identity: {}",
        label
    );
}

/// The full contract at one proptest seed.
fn check_dataflow_contract(seed: u64) {
    let (g, bufs) = random_graph(seed);
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let refr = serial_reference(&g, &bufs, seed);

    for units in UNIT_COUNTS {
        let plan = Scheduler::new().with_units(units).plan(&g, &unit);

        // The placement never loses to the wave schedule, and never
        // beats the model's lower bound.
        let bound = plan
            .critical_path()
            .max(plan.tensor_time().div_ceil(units as u64));
        for ss in STEAL_SEEDS {
            let df = plan.dataflow_makespan_seeded(ss);
            prop_assert!(df <= plan.makespan(), "df beats wave at {units} units");
            prop_assert!(df >= bound, "df under lower bound at {units} units");
        }

        // Fault-free: inline and threaded, every steal seed — byte
        // identical to serial, clock on the placement makespan, and
        // inline vs threaded indistinguishable even in per-unit cache
        // counters (their per-unit op sequences are the same).
        for ss in STEAL_SEEDS {
            let inline = run_dataflow(&g, &bufs, &plan, units, seed, FaultPlan::none(), ss, true);
            let threaded =
                run_dataflow(&g, &bufs, &plan, units, seed, FaultPlan::none(), ss, false);
            assert_unobservable(
                &inline,
                &refr,
                &plan,
                ss,
                &format!("inline u={units} ss={ss}"),
            );
            assert_unobservable(
                &threaded,
                &refr,
                &plan,
                ss,
                &format!("threaded u={units} ss={ss}"),
            );
            prop_assert_eq!(
                &inline.caches,
                &threaded.caches,
                "cache counters u={}",
                units
            );
            prop_assert_eq!(inline.time, threaded.time);
        }

        // Transient-only faults: fully repeat-deterministic in both
        // executors (per-unit sequences are fixed, so the same plan
        // entries fire on the same ops), and still byte-unobservable.
        let tplan = FaultPlan::seeded(seed ^ 0x7A11, units, HORIZON, 200, 0);
        let ti = run_dataflow(&g, &bufs, &plan, units, seed, tplan.clone(), 0, true);
        let tt = run_dataflow(&g, &bufs, &plan, units, seed, tplan.clone(), 0, false);
        assert_unobservable(&ti, &refr, &plan, 0, &format!("transient inline u={units}"));
        assert_unobservable(
            &tt,
            &refr,
            &plan,
            0,
            &format!("transient threaded u={units}"),
        );
        prop_assert_eq!(
            &ti.fault_stats,
            &tt.fault_stats,
            "transient stats u={}",
            units
        );
        prop_assert_eq!(ti.time, tt.time, "transient clock u={}", units);
        let ti2 = run_dataflow(&g, &bufs, &plan, units, seed, tplan.clone(), 0, true);
        let tt2 = run_dataflow(&g, &bufs, &plan, units, seed, tplan, 0, false);
        prop_assert_eq!(&ti2.fault_stats, &ti.fault_stats);
        prop_assert_eq!((&ti2.caches, ti2.time), (&ti.caches, ti.time));
        prop_assert_eq!(&tt2.fault_stats, &tt.fault_stats);
        prop_assert_eq!((&tt2.caches, tt2.time), (&tt.caches, tt.time));

        // Recoverable permanent faults (chaos-style: at most
        // `units − 1` victims): recovery must stay byte-unobservable
        // in both executors; the inline executor — with no dispatch
        // timing — additionally replays its fault record exactly.
        let pplan = FaultPlan::seeded(seed ^ 0xC44F, units, HORIZON, 150, units / 2);
        let pi = run_dataflow(&g, &bufs, &plan, units, seed, pplan.clone(), 0, true);
        let pt = run_dataflow(&g, &bufs, &plan, units, seed, pplan.clone(), 0, false);
        assert_unobservable(&pi, &refr, &plan, 0, &format!("permanent inline u={units}"));
        assert_unobservable(
            &pt,
            &refr,
            &plan,
            0,
            &format!("permanent threaded u={units}"),
        );
        let pi2 = run_dataflow(&g, &bufs, &plan, units, seed, pplan, 0, true);
        prop_assert_eq!(
            &pi2.fault_stats,
            &pi.fault_stats,
            "inline replay u={}",
            units
        );
        prop_assert_eq!(pi2.time, pi.time, "inline replay clock u={}", units);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random RAW pipelines × 1/2/4/8 units × {fault-free, transient,
    // permanent} × {inline, threaded} × steal seeds: the dataflow
    // driver must be byte-unobservable against the serial scheduled
    // run, with replay determinism exactly as documented.
    #[test]
    fn dataflow_execution_is_byte_identical_to_serial(seed in 0u64..10_000) {
        check_dataflow_contract(seed);
    }
}
