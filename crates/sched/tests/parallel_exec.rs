//! Thread-count invariance of the multi-unit wave driver.
//!
//! `Schedule::run_parallel` executes each wave's unit assignments on
//! real threads, so these properties pin the determinism contract the
//! driver claims: for random RAW-pipeline graphs and every unit count
//! in {1, 2, 4, 8}, the parallel run's *elements*, *Stats*, *trace*
//! (events and digest), and aggregate pack-cache counters must be
//! byte-identical to the serial scheduled run — and re-running at the
//! same unit count must reproduce the per-unit pack-cache counters
//! exactly (cache behaviour may depend on placement, never on thread
//! timing).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcu_core::{
    ModelTensorUnit, PackCacheStats, PadPolicy, ParallelTcuMachine, TcuMachine, TensorOp,
};
use tcu_linalg::Matrix;
use tcu_sched::{BufferId, ExecEnv, OpGraph, OperandRef, Scheduler};

const DIM: usize = 32;
const SQRT_M: usize = 8;
const UNIT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Buffer handles of the shared 4-buffer layout (A, B inputs; C, D
/// read-write, all `DIM × DIM`) — the same layout the scheduler
/// determinism suite generates over.
struct Bufs {
    a: BufferId,
    b: BufferId,
    c: BufferId,
    d: BufferId,
}

fn random_graph(seed: u64) -> (OpGraph, Bufs) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut g = OpGraph::new();
    let bufs = Bufs {
        a: g.buffer("A", DIM, DIM),
        b: g.buffer("B", DIM, DIM),
        c: g.buffer("C", DIM, DIM),
        d: g.buffer("D", DIM, DIM),
    };
    let n = rng.gen_range(4..24usize);
    for _ in 0..n {
        let rows = 16usize;
        let inner = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let width = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
        let a_r0 = 16 * rng.gen_range(0..=1usize);
        let a_c0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_r0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
        let b_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        // A third of the ops stream one read-write buffer and update
        // the other, turning the batch into a RAW/WAR pipeline.
        let (a_buf, out_buf) = if rng.gen_range(0..3u32) == 0 {
            if rng.gen_range(0..2u32) == 0 {
                (bufs.c, bufs.d)
            } else {
                (bufs.d, bufs.c)
            }
        } else {
            let out = if rng.gen_range(0..2u32) == 0 {
                bufs.c
            } else {
                bufs.d
            };
            (bufs.a, out)
        };
        let out_r0 = 16 * rng.gen_range(0..=1usize);
        let out_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
        g.record(
            TensorOp {
                rows,
                inner,
                width,
                accumulate: rng.gen_range(0..4u32) != 0,
                pad: PadPolicy::ZeroPad,
            },
            OperandRef::new(a_buf, a_r0, a_c0, rows, inner),
            OperandRef::new(bufs.b, b_r0, b_c0, inner, width),
            OperandRef::new(out_buf, out_r0, out_c0, rows, width),
        );
    }
    (g, bufs)
}

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// One `run_parallel` execution on fresh machine + environment:
/// returns the written buffers, Stats, trace, wall-clock, and the
/// per-unit pack-cache counters.
#[allow(clippy::type_complexity)]
fn run_at(
    g: &OpGraph,
    bufs: &Bufs,
    plan: &tcu_sched::Schedule,
    units: usize,
    seed: u64,
) -> (
    Matrix<i64>,
    Matrix<i64>,
    tcu_core::Stats,
    tcu_core::TraceLog,
    u64,
    Vec<PackCacheStats>,
) {
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let mut mach = ParallelTcuMachine::new(unit, units);
    mach.enable_pack_caches(16);
    mach.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    plan.run_parallel(&mut mach, &mut env);
    let time = mach.time();
    let caches = (0..units)
        .map(|u| mach.unit_executor(u).pack_cache_stats().expect("cache on"))
        .collect();
    (c, d, mach.stats().clone(), mach.take_trace(), time, caches)
}

fn check_thread_count_invariance(seed: u64) {
    let (g, bufs) = random_graph(seed);
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);

    // Serial scheduled reference: same data, one TcuMachine.
    let plan1 = Scheduler::new().plan(&g, &unit);
    let mut ser = TcuMachine::new(unit);
    ser.executor_mut().enable_pack_cache(16);
    ser.enable_trace();
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (mut c_ref, mut d_ref) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(&g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c_ref.view_mut());
    env.bind_output(bufs.d, d_ref.view_mut());
    plan1.run(&mut ser, &mut env);
    let trace_ref = ser.take_trace();

    for units in UNIT_COUNTS {
        let plan = Scheduler::new().with_units(units).plan(&g, &unit);
        let (c, d, stats, trace, time, caches) = run_at(&g, &bufs, &plan, units, seed);

        // Elements, Stats, trace events (strictly stronger than the
        // digest) and the digest itself all match the serial run.
        prop_assert_eq!(&c, &c_ref, "elements (C) at {} units", units);
        prop_assert_eq!(&d, &d_ref, "elements (D) at {} units", units);
        prop_assert_eq!(&stats, ser.stats(), "Stats at {} units", units);
        prop_assert_eq!(
            trace.events(),
            trace_ref.events(),
            "trace at {} units",
            units
        );
        prop_assert_eq!(trace.digest(), trace_ref.digest());
        // Wall-clock is the planned multi-unit wall for whichever
        // driver `TCU_EXEC_MODE` selects, and every invocation
        // consulted exactly one unit's cache.
        prop_assert_eq!(time, plan.planned_parallel_time());
        let lookups: u64 = caches.iter().map(|s| s.lookups).sum();
        prop_assert_eq!(lookups, plan.invocations());

        // Determinism across repeats: a second run at the same unit
        // count reproduces every unit's cache counters exactly (fresh
        // epochs change the tags, never the hit/miss pattern).
        let (c2, d2, stats2, trace2, _, caches2) = run_at(&g, &bufs, &plan, units, seed);
        prop_assert_eq!((c2, d2), (c, d));
        prop_assert_eq!(stats2, stats);
        prop_assert_eq!(trace2.events(), trace.events());
        prop_assert_eq!(
            caches2,
            caches,
            "per-unit cache counters at {} units",
            units
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The wave driver's full determinism contract over random RAW
    // pipelines at 1/2/4/8 units.
    #[test]
    fn parallel_waves_are_byte_identical_across_unit_counts(seed in 0u64..10_000) {
        check_thread_count_invariance(seed);
    }
}

/// The planned-makespan monotonicity the bench gate relies on: more
/// units can only shrink the planned wall-clock, while tensor work is
/// invariant (a fixed check complementing the proptest's per-seed
/// equalities).
#[test]
fn more_units_never_slow_the_plan() {
    let (g, _) = random_graph(7);
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let mut prev = u64::MAX;
    for units in UNIT_COUNTS {
        let plan = Scheduler::new().with_units(units).plan(&g, &unit);
        assert!(
            plan.makespan() <= prev,
            "{units} units regressed the makespan"
        );
        prev = plan.makespan();
    }
}
