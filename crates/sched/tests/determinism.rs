//! Scheduler determinism and equivalence properties.
//!
//! The contract the whole subsystem rests on: a schedule is a function
//! of the *dependency structure and contents* of the op graph, never of
//! the order independent ops happened to be recorded in. Any
//! dependency-respecting shuffle of the recording must produce the same
//! emitted node list, the same `Stats`, the same trace digest, and the
//! same multi-unit makespan. And however aggressively ops were
//! coalesced, the numeric outputs must equal the eager per-op reference
//! exactly (over `i64`, where fused inner chains are associative).
//!
//! Both properties run over two graph families: independent random
//! streams (the PR-4 shape) and *RAW pipelines*, where later ops read
//! regions earlier ops wrote — the versioned-graph capability. For
//! pipelines the reference executes in recording order reading the
//! evolving buffer state, exactly the semantics the generation-staged
//! runtime must reproduce under any hazard-respecting reordering.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcu_core::{ModelTensorUnit, PadPolicy, ReplayExecutor, TcuMachine, TensorOp};
use tcu_linalg::ops::matmul_naive;
use tcu_linalg::Matrix;
use tcu_sched::{ExecEnv, Node, OpGraph, OperandRef, Scheduler};

const DIM: usize = 32;
const SQRT_M: usize = 8;

/// Buffer handles of the shared 4-buffer layout (A, B inputs; C, D
/// read-write, all `DIM × DIM`).
struct Bufs {
    a: tcu_sched::BufferId,
    b: tcu_sched::BufferId,
    c: tcu_sched::BufferId,
    d: tcu_sched::BufferId,
}

fn fresh_graph() -> (OpGraph, Bufs) {
    let mut g = OpGraph::new();
    let bufs = Bufs {
        a: g.buffer("A", DIM, DIM),
        b: g.buffer("B", DIM, DIM),
        c: g.buffer("C", DIM, DIM),
        d: g.buffer("D", DIM, DIM),
    };
    (g, bufs)
}

/// A random valid zero-padded op over the shared layout: dimensions are
/// 4-aligned so adjacency (and hence merging) happens often. With
/// `pipeline`, the left operand sometimes streams a region of `C`/`D` —
/// buffers other random ops write — turning the batch into a RAW/WAR
/// pipeline; such reads write the *other* read-write buffer so no op
/// writes a rectangle overlapping its own reads.
fn random_node(
    rng: &mut StdRng,
    bufs: &Bufs,
    pipeline: bool,
) -> (TensorOp, OperandRef, OperandRef, OperandRef) {
    let rows = 16usize;
    let inner = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
    let width = *[4usize, 8].get(rng.gen_range(0..2usize)).unwrap();
    let a_c0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
    let a_r0 = 16 * rng.gen_range(0..=1usize);
    let b_r0 = 4 * rng.gen_range(0..=(DIM - inner) / 4);
    let b_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
    let from_written = pipeline && rng.gen_range(0..3u32) == 0;
    let (a_buf, out_buf) = if from_written {
        // Stream one read-write buffer, update the other.
        if rng.gen_range(0..2u32) == 0 {
            (bufs.c, bufs.d)
        } else {
            (bufs.d, bufs.c)
        }
    } else {
        let out = if rng.gen_range(0..2u32) == 0 {
            bufs.c
        } else {
            bufs.d
        };
        (bufs.a, out)
    };
    let out_r0 = 16 * rng.gen_range(0..=1usize);
    let out_c0 = 4 * rng.gen_range(0..=(DIM - width) / 4);
    let op = TensorOp {
        rows,
        inner,
        width,
        accumulate: rng.gen_range(0..4u32) != 0,
        pad: PadPolicy::ZeroPad,
    };
    (
        op,
        OperandRef::new(a_buf, a_r0, a_c0, rows, inner),
        OperandRef::new(bufs.b, b_r0, b_c0, inner, width),
        OperandRef::new(out_buf, out_r0, out_c0, rows, width),
    )
}

fn random_graph(seed: u64, pipeline: bool) -> (OpGraph, Bufs) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let (mut g, bufs) = fresh_graph();
    let n = rng.gen_range(3..28usize);
    for _ in 0..n {
        let (op, a, b, out) = random_node(&mut rng, &bufs, pipeline);
        g.record(op, a, b, out);
    }
    (g, bufs)
}

/// Rebuild `g` with its nodes recorded in a random order that respects
/// every hazard pair (conflicting ops keep their relative order).
fn shuffled(g: &OpGraph, seed: u64) -> OpGraph {
    let nodes = g.nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF_CAFE_F00D);
    let mut emitted = vec![false; nodes.len()];
    let mut order = Vec::with_capacity(nodes.len());
    while order.len() < nodes.len() {
        let ready: Vec<usize> = (0..nodes.len())
            .filter(|&j| {
                !emitted[j] && (0..j).all(|i| emitted[i] || !nodes[i].conflicts(&nodes[j]))
            })
            .collect();
        let pick = ready[rng.gen_range(0..ready.len())];
        emitted[pick] = true;
        order.push(pick);
    }
    // Same buffer layout (registration order is fixed), so the recorded
    // refs transfer verbatim — and because generations count only
    // *overlapping* (hence order-pinned) writes, the re-recorded nodes
    // carry identical versions.
    let (mut g2, _) = fresh_graph();
    for &i in &order {
        let Node { op, a, b, out, .. } = nodes[i];
        let slot = g2.record(op, a, b, out);
        assert_eq!(
            (g2.nodes()[slot].a_gen, g2.nodes()[slot].out_gen),
            (nodes[i].a_gen, nodes[i].out_gen),
            "generations must survive dependency-respecting shuffles"
        );
    }
    g2
}

fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

/// Eager per-op reference: execute the recorded nodes in recording
/// order with plain CPU products, reading the *evolving* buffer state
/// (pipeline reads see every prior write, exactly like the runtime).
fn eager_reference(g: &OpGraph, a: &Matrix<i64>, b: &Matrix<i64>) -> (Matrix<i64>, Matrix<i64>) {
    let mut c = Matrix::<i64>::zeros(DIM, DIM);
    let mut d = Matrix::<i64>::zeros(DIM, DIM);
    for node in g.nodes() {
        let read = |bufs: (&Matrix<i64>, &Matrix<i64>), r: &OperandRef| {
            let src = match r.buf.index() {
                0 => a,
                1 => b,
                2 => bufs.0,
                _ => bufs.1,
            };
            src.block(r.r0, r.c0, r.rows, r.cols)
        };
        let av = read((&c, &d), &node.a);
        let bv = read((&c, &d), &node.b);
        let prod = matmul_naive(&av, &bv);
        let dst = if node.out.buf.index() == 2 {
            &mut c
        } else {
            &mut d
        };
        let mut region = dst.subview_mut(node.out.r0, node.out.c0, node.out.rows, node.out.cols);
        if node.op.accumulate {
            region.add_assign(prod.view());
        } else {
            region.copy_from(prod.view());
        }
    }
    (c, d)
}

/// Plan + run on an accounting-only machine; returns (stats, digest,
/// emitted nodes, makespans for 1 and 3 units).
fn plan_and_replay(
    g: &OpGraph,
    bufs: &Bufs,
) -> (
    tcu_core::Stats,
    u64,
    Vec<tcu_sched::ScheduledNode>,
    u64,
    u64,
) {
    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let plan = Scheduler::new().plan(g, &unit);
    let plan3 = Scheduler::new().with_units(3).plan(g, &unit);
    let mut mach = TcuMachine::with_executor(unit, ReplayExecutor::default());
    mach.enable_trace();
    let zero = Matrix::<i64>::zeros(DIM, DIM);
    let (mut c, mut d) = (zero.clone(), zero.clone());
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, zero.view());
    env.bind_input(bufs.b, zero.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    plan.run(&mut mach, &mut env);
    let digest = mach.take_trace().digest();
    (
        mach.stats().clone(),
        digest,
        plan.nodes().to_vec(),
        plan.makespan(),
        plan3.makespan(),
    )
}

/// Run the plan numerically (pack cache on) and compare buffers C and D
/// against the recording-order reference.
fn check_numerics(g: &OpGraph, bufs: &Bufs, seed: u64) {
    let a = pseudo(DIM, DIM, seed as i64);
    let b = pseudo(DIM, DIM, seed as i64 + 1);
    let (want_c, want_d) = eager_reference(g, &a, &b);

    let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
    let plan = Scheduler::new().plan(g, &unit);
    let mut mach = TcuMachine::model(SQRT_M * SQRT_M, 13);
    mach.executor_mut().enable_pack_cache(16);
    let (mut c, mut d) = (
        Matrix::<i64>::zeros(DIM, DIM),
        Matrix::<i64>::zeros(DIM, DIM),
    );
    let mut env = ExecEnv::new(g);
    env.bind_input(bufs.a, a.view());
    env.bind_input(bufs.b, b.view());
    env.bind_output(bufs.c, c.view_mut());
    env.bind_output(bufs.d, d.view_mut());
    plan.run(&mut mach, &mut env);
    prop_assert_eq!(c, want_c);
    prop_assert_eq!(d, want_d);
    prop_assert!(plan.ops() <= g.len());
    let plan3 = Scheduler::new().with_units(3).plan(g, &unit);
    prop_assert_eq!(plan3.tensor_time(), plan.tensor_time());
    prop_assert!(plan3.makespan() <= plan.makespan());
    prop_assert_eq!(mach.stats().tensor_time, plan.tensor_time());
}

fn check_shuffle_invariance(g1: &OpGraph, bufs: &Bufs, seed: u64) {
    let g2 = shuffled(g1, seed);
    let (s1, d1, n1, m1, m1p) = plan_and_replay(g1, bufs);
    let (s2, d2, n2, m2, m2p) = plan_and_replay(&g2, bufs);
    prop_assert_eq!(n1, n2);
    prop_assert_eq!(s1, s2);
    prop_assert_eq!(d1, d2);
    prop_assert_eq!(m1, m2);
    prop_assert_eq!(m1p, m2p);
}

/// Rebuild `g` with differently-named buffers: shape-equal by
/// construction (names are the only difference).
fn renamed(g: &OpGraph) -> OpGraph {
    let mut g2 = OpGraph::new();
    let _ = (
        g2.buffer("West", DIM, DIM),
        g2.buffer("Xen", DIM, DIM),
        g2.buffer("Yak", DIM, DIM),
        g2.buffer("Zed", DIM, DIM),
    );
    for Node { op, a, b, out, .. } in g.nodes() {
        g2.record(*op, *a, *b, *out);
    }
    g2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Any dependency-respecting shuffle of the recording yields the
    // same schedule, the same Stats, and the same trace digest.
    #[test]
    fn schedule_is_invariant_under_dependency_respecting_shuffles(seed in 0u64..10_000) {
        let (g1, bufs) = random_graph(seed, false);
        check_shuffle_invariance(&g1, &bufs, seed);
    }

    // The same invariance for RAW pipelines: reads of written regions
    // (and the generations they resolve to) pin exactly the conflicting
    // pairs, so shuffling the rest changes nothing — schedule, Stats,
    // digest, or the 1- and 3-unit makespans.
    #[test]
    fn raw_pipeline_schedule_is_shuffle_invariant(seed in 0u64..10_000) {
        let (g1, bufs) = random_graph(seed, true);
        check_shuffle_invariance(&g1, &bufs, seed);
    }

    // Coalesced, reordered execution computes exactly what the eager
    // per-op recording order computes, and multi-unit planning never
    // changes per-op accounting — only the makespan (≤ serial).
    #[test]
    fn scheduled_numerics_match_the_eager_reference(seed in 0u64..10_000) {
        let (g, bufs) = random_graph(seed, false);
        check_numerics(&g, &bufs, seed);
    }

    // Pipelines too: generation-staged reads reproduce the recording-
    // order semantics element-for-element under any legal reordering.
    #[test]
    fn raw_pipeline_numerics_match_the_eager_reference(seed in 0u64..10_000) {
        let (g, bufs) = random_graph(seed, true);
        check_numerics(&g, &bufs, seed);
    }

    // The structural fingerprint plan caches key on: renaming buffers
    // or applying any dependency-respecting shuffle leaves both the
    // shape hash and exact shape equality intact, while adding an op,
    // growing a buffer, or moving an operand rectangle breaks both
    // (the negative cases a memo must treat as misses).
    #[test]
    fn shape_hash_erases_names_and_recording_order(seed in 0u64..10_000) {
        let (g1, _) = random_graph(seed, true);
        let h = g1.shape_hash();
        let shuf = shuffled(&g1, seed);
        let ren = renamed(&g1);
        prop_assert_eq!(shuf.shape_hash(), h);
        prop_assert!(shuf.shape_eq(&g1));
        prop_assert_eq!(ren.shape_hash(), h);
        prop_assert!(ren.shape_eq(&g1));

        // One extra (duplicated) op: different stream, must miss.
        let mut extra = renamed(&g1);
        let last = *g1.nodes().last().unwrap();
        extra.record(last.op, last.a, last.b, last.out);
        prop_assert_ne!(extra.shape_hash(), h);
        prop_assert!(!extra.shape_eq(&g1));

        // A buffer dimension change: same nodes, different shape.
        let mut grown = OpGraph::new();
        let _ = (
            grown.buffer("A", DIM, DIM),
            grown.buffer("B", DIM, DIM),
            grown.buffer("C", DIM + 16, DIM),
            grown.buffer("D", DIM, DIM),
        );
        for Node { op, a, b, out, .. } in g1.nodes() {
            grown.record(*op, *a, *b, *out);
        }
        prop_assert_ne!(grown.shape_hash(), h);
        prop_assert!(!grown.shape_eq(&g1));

        // One operand rectangle moved: hazard structure differs.
        let (mut moved, _) = fresh_graph();
        for (i, Node { op, a, b, out, .. }) in g1.nodes().iter().enumerate() {
            let a2 = if i == 0 {
                OperandRef::new(a.buf, 16 - a.r0, a.c0, a.rows, a.cols)
            } else {
                *a
            };
            moved.record(*op, a2, *b, *out);
        }
        prop_assert_ne!(moved.shape_hash(), h);
        prop_assert!(!moved.shape_eq(&g1));
    }

    // A Schedule compiles once (first run) and the compiled plan re-runs
    // against rebound same-shape buffers: element- and Stats-identical
    // to a freshly planned run on the new data, and deterministic when
    // re-run on the original data.
    #[test]
    fn compiled_plan_rerun_on_rebound_buffers_is_identical(seed in 0u64..10_000) {
        let (g, bufs) = random_graph(seed, true);
        let unit = ModelTensorUnit::new(SQRT_M * SQRT_M, 13);
        let plan = Scheduler::new().plan(&g, &unit);

        let run = |plan: &tcu_sched::Schedule, data_seed: i64| {
            let a = pseudo(DIM, DIM, data_seed);
            let b = pseudo(DIM, DIM, data_seed + 1);
            let mut mach = TcuMachine::model(SQRT_M * SQRT_M, 13);
            mach.executor_mut().enable_pack_cache(16);
            let (mut c, mut d) = (
                Matrix::<i64>::zeros(DIM, DIM),
                Matrix::<i64>::zeros(DIM, DIM),
            );
            let mut env = ExecEnv::new(&g);
            env.bind_input(bufs.a, a.view());
            env.bind_input(bufs.b, b.view());
            env.bind_output(bufs.c, c.view_mut());
            env.bind_output(bufs.d, d.view_mut());
            plan.run(&mut mach, &mut env);
            drop(env);
            (c, d, mach.stats().clone())
        };

        let first = run(&plan, seed as i64);
        // Rebind to different same-shape data: the cached compiled form
        // must compute exactly what a fresh plan computes.
        let rerun = run(&plan, seed as i64 + 4096);
        let fresh_plan = Scheduler::new().plan(&g, &unit);
        let fresh = run(&fresh_plan, seed as i64 + 4096);
        prop_assert_eq!(&rerun.0, &fresh.0);
        prop_assert_eq!(&rerun.1, &fresh.1);
        prop_assert_eq!(&rerun.2, &fresh.2);
        // And re-running on the original data reproduces the first run.
        let again = run(&plan, seed as i64);
        prop_assert_eq!(&again.0, &first.0);
        prop_assert_eq!(&again.1, &first.1);
        prop_assert_eq!(&again.2, &first.2);
    }
}
