//! Graph → schedule: coalescing passes and deterministic list scheduling.
//!
//! [`Scheduler::plan`] runs three phases over a recorded [`OpGraph`]:
//!
//! 1. **Coalescing** (optional): rewrite the node list into fewer,
//!    wider invocations wherever the model's shape contract allows —
//!    see [width merging](#width-merging) and [inner
//!    merging](#inner-merging) below. Every merge removes one whole
//!    `n·√m + ℓ` invocation charge, which is the model's own cost term,
//!    not a host implementation detail.
//! 2. **Leveling**: dependency depth from the hazard structure, built
//!    through the per-buffer bucket index of [`crate::graph`] (near-
//!    linear for disjoint-region streams) rather than an all-pairs
//!    scan. Nodes of equal depth are mutually independent (a conflict
//!    edge always increases depth), so each depth is a wave the machine
//!    may run in any order — or on parallel units. A RAW pipeline
//!    (reads of previously written regions) simply contributes extra
//!    depths: stage boundaries are waves like any other.
//! 3. **Emission**: a canonical serial order (depth, then
//!    [`Node::canonical_key`]) plus one [`tcu_core::Partition`] per wave
//!    from [`tcu_core::partition_lpt`], exactly the partitioner the
//!    parallel machine uses. Single-unit replay and multi-unit dispatch
//!    therefore charge identical per-op Stats; only the makespan —
//!    the max-loaded unit per wave — depends on the unit count.
//!
//! The emitted order depends only on the *dependency structure and
//! contents* of the graph, never on recording order: any
//! dependency-respecting shuffle of the recording yields the same
//! schedule, stats, and trace (`tests/determinism.rs` pins this).
//!
//! # Width merging
//!
//! Two same-depth zero-padded ops that stream the **same left-operand
//! region** against horizontally adjacent weight blocks, writing
//! horizontally adjacent output blocks, are one wider instruction:
//! `C[:, j0..j1] (+)= A·B[:, j0..j1]`. Legal whenever the combined
//! width still fits the unit (`≤ √m`) *and* hoisting the later member
//! to the earlier one's position crosses nothing it must stay ordered
//! with — an interposed write to an overlapping region blocks the merge
//! unless both sides accumulate, which commutes exactly over rings
//! (see [`width_merge_pass`]). The fused instruction itself computes
//! each output column's inner product untouched; when a hoist crosses
//! an interposed accumulate, float sums into that region reassociate
//! (rings stay exact). This is the ROADMAP's "E2 re-streamed strips"
//! collapse: the strip is streamed once for the merged ops instead of
//! once per block column.
//!
//! # Inner merging
//!
//! An accumulate chain `C += A₁·B₁; C += A₂·B₂` whose left operands are
//! horizontally adjacent (and weight blocks vertically adjacent) is one
//! instruction with the concatenated inner dimension, when that still
//! fits `√m`. For ring scalars (integers, `F_p`) results are exactly
//! equal; for floats the fused chain reassociates the per-element sum
//! (documented, and why the pinned equivalence tests run over `i64`).

use crate::graph::{hazard_successors, levels, Node, OpGraph, RegionBuckets};
use tcu_core::{partition_lpt, PadPolicy, Partition, TensorUnit};
use tcu_obs::Recorder as _;

/// Planner configuration: unit count and whether coalescing runs.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    units: usize,
    coalesce: bool,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Single unit, coalescing on.
    #[must_use]
    pub fn new() -> Self {
        Self {
            units: 1,
            coalesce: true,
        }
    }

    /// Schedule onto `p ≥ 1` identical tensor units.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    #[must_use]
    pub fn with_units(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one unit");
        self.units = p;
        self
    }

    /// Disable the coalescing passes (hazard-respecting reordering and
    /// wave scheduling still run): the ablation the benchmarks compare
    /// against, and the mode whose charges match the eager path op-for-op.
    #[must_use]
    pub fn without_coalescing(mut self) -> Self {
        self.coalesce = false;
        self
    }

    /// Plan `graph` for a machine with `unit`'s costing policy.
    ///
    /// # Panics
    /// Panics if a recorded op violates `unit`'s shape contract.
    #[must_use]
    pub fn plan<U: TensorUnit>(&self, graph: &OpGraph, unit: &U) -> Schedule {
        // Telemetry wrapper only — planning itself is below. The span
        // covers coalescing through wave partitioning and lands on the
        // scheduler lane of the process-global sink, when tracing.
        let rec = tcu_obs::env_recorder();
        let start = rec.as_ref().map(|r| r.now_ns());
        let sched = self.plan_inner(graph, unit);
        if let (Some(rec), Some(t0)) = (rec, start) {
            rec.record(
                tcu_obs::Lane::Scheduler,
                tcu_obs::SpanEvent {
                    kind: tcu_obs::EventKind::PlanBuild {
                        recorded: graph.len() as u64,
                        scheduled: sched.ops() as u64,
                        waves: sched.waves() as u64,
                    },
                    t_ns: t0,
                    dur_ns: rec.now_ns().saturating_sub(t0),
                },
            );
        }
        sched
    }

    fn plan_inner<U: TensorUnit>(&self, graph: &OpGraph, unit: &U) -> Schedule {
        let s = unit.sqrt_m();
        let mut nodes: Vec<Node> = graph.nodes().to_vec();
        for n in &nodes {
            n.op.validate(s);
        }
        let mut fused: Vec<u32> = vec![1; nodes.len()];
        if self.coalesce {
            loop {
                let merged = width_merge_pass(&mut nodes, &mut fused, s)
                    + inner_merge_pass(&mut nodes, &mut fused, s);
                if merged == 0 {
                    break;
                }
            }
        }

        // Level, then order canonically within level.
        let succs = hazard_successors(&nodes);
        let lv = levels(&nodes, &succs);

        // Critical path: the longest cost-weighted hazard chain through
        // the (post-coalescing) graph — the makespan no unit count can
        // beat. Computed on the pre-sort index order, which the hazard
        // index's forward-canonicalized edges make topological.
        let node_costs: Vec<u64> = nodes
            .iter()
            .map(|n| {
                invocation_rows(n, unit)
                    .into_iter()
                    .map(|rows| unit.invocation_cost(rows))
                    .sum()
            })
            .collect();
        let critical_path = tcu_obs::critical_path(&node_costs, &succs);

        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&i, &j| {
            (lv[i], nodes[i].canonical_key()).cmp(&(lv[j], nodes[j].canonical_key()))
        });

        let mut scheduled = Vec::with_capacity(order.len());
        let mut waves = Vec::new();
        let mut makespan = 0u64;
        let (mut invocations, mut charged_rows, mut tensor_time) = (0u64, 0u64, 0u64);
        // Per emitted node (emission order): total invocation cost and
        // invocation count — the dataflow placement's cost model and
        // its walk of the per-invocation wave assignments.
        let mut emitted_costs: Vec<u64> = Vec::with_capacity(order.len());
        let mut emitted_invs: Vec<u32> = Vec::with_capacity(order.len());
        let mut wave_costs: Vec<u64> = Vec::new();
        // Serial-order write index per buffer: each emitted node's read
        // generations are the overlapping writes already emitted, which
        // is exactly when the runtime will execute them.
        let mut emitted_writes: Vec<RegionBuckets> = (0..graph.buffer_count())
            .map(|_| RegionBuckets::default())
            .collect();
        for (pos, &i) in order.iter().enumerate() {
            let node = nodes[i];
            let a_gen = emitted_writes[node.a.buf.index()].count_overlapping(&node.a);
            let b_gen = emitted_writes[node.b.buf.index()].count_overlapping(&node.b);
            emitted_writes[node.out.buf.index()].insert(&node.out);
            scheduled.push(ScheduledNode {
                node,
                level: lv[i],
                fused: fused[i],
                a_gen,
                b_gen,
            });
            let rows_list = invocation_rows(&node, unit);
            emitted_invs.push(rows_list.len() as u32);
            let mut ncost = 0u64;
            for rows in rows_list {
                invocations += 1;
                charged_rows += rows as u64;
                let cost = unit.invocation_cost(rows);
                tensor_time += cost;
                ncost += cost;
                wave_costs.push(cost);
            }
            emitted_costs.push(ncost);
            let wave_ends = pos + 1 == order.len() || lv[order[pos + 1]] != lv[i];
            if wave_ends {
                let partition = partition_lpt(&wave_costs, self.units);
                makespan += partition.makespan();
                waves.push(partition);
                wave_costs.clear();
            }
        }

        Schedule {
            nodes: scheduled,
            waves,
            recorded_ops: graph.len(),
            buffer_shapes: (0..graph.buffer_count())
                .map(|i| graph.buffer_shape(crate::BufferId(i)))
                .collect(),
            units: self.units,
            sqrt_m: s,
            makespan,
            invocations,
            charged_rows,
            tensor_time,
            critical_path,
            node_costs: emitted_costs,
            node_invocations: emitted_invs,
            compiled: std::sync::OnceLock::new(),
        }
    }
}

/// The hardware invocations one node decomposes into under `unit`: one
/// tall call, or `⌈n/√m⌉` square tiles without native tall support —
/// the same split the serial machine's charge path applies.
fn invocation_rows<U: TensorUnit>(node: &Node, unit: &U) -> Vec<usize> {
    let s = unit.sqrt_m();
    let n = node.op.charge_rows(s);
    if unit.supports_tall() {
        vec![n]
    } else {
        vec![s; n.div_ceil(s)]
    }
}

/// One emitted op: the (possibly merged) node, its dependency depth,
/// and how many recorded ops it stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledNode {
    /// The instruction and its operand regions.
    pub node: Node,
    /// Dependency depth (wave index).
    pub level: usize,
    /// Recorded ops this node coalesces (1 = not merged).
    pub fused: u32,
    /// Content version of the left operand in *emission order*: how many
    /// emitted writes overlapping the region execute before this op.
    /// Equal `(buffer, region, a_gen)` within one run ⇒ bit-identical
    /// data — the soundness contract of the executor's pack cache. Can
    /// differ from `node.a_gen` (the record-order version) once merges
    /// rewrite regions, which is why it is recomputed here.
    pub a_gen: u32,
    /// Content version of the right operand in emission order (used by
    /// the runtime to key same-buffer read snapshots).
    pub b_gen: u32,
}

/// A planned execution: canonical serial order, per-wave unit
/// partitions, and the model-cost aggregates of the planned stream.
#[derive(Clone, Debug)]
pub struct Schedule {
    nodes: Vec<ScheduledNode>,
    waves: Vec<Partition>,
    recorded_ops: usize,
    pub(crate) buffer_shapes: Vec<(usize, usize)>,
    units: usize,
    pub(crate) sqrt_m: usize,
    makespan: u64,
    invocations: u64,
    charged_rows: u64,
    tensor_time: u64,
    critical_path: u64,
    /// Per emitted node, emission order: total simulated invocation
    /// cost (the sum over its hardware invocations under the planning
    /// unit) — the dataflow placement's cost model.
    pub(crate) node_costs: Vec<u64>,
    /// Per emitted node, emission order: hardware invocations it
    /// decomposes into (1, or the tall split) — how the dataflow
    /// placement walks the per-invocation wave assignments.
    pub(crate) node_invocations: Vec<u32>,
    /// Lazily compiled executable form (first run, or an explicit
    /// [`Schedule::compile`], fills it; every later run reuses it).
    pub(crate) compiled: std::sync::OnceLock<crate::compile::ExecutablePlan>,
}

impl Schedule {
    /// The emitted ops in serial execution order.
    #[must_use]
    pub fn nodes(&self) -> &[ScheduledNode] {
        &self.nodes
    }

    /// Ops after coalescing.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.nodes.len()
    }

    /// Ops as recorded, before coalescing.
    #[must_use]
    pub fn recorded_ops(&self) -> usize {
        self.recorded_ops
    }

    /// Recorded ops eliminated by coalescing.
    #[must_use]
    pub fn coalesced_away(&self) -> usize {
        self.recorded_ops - self.nodes.len()
    }

    /// Dependency levels (independent-op waves).
    #[must_use]
    pub fn waves(&self) -> usize {
        self.waves.len()
    }

    /// Per-wave unit assignments: the [`tcu_core::partition_lpt`]
    /// schedule of each wave's invocation costs onto `units()` units
    /// (invocation order follows [`Self::nodes`], tall splits expanded).
    #[must_use]
    pub fn wave_partitions(&self) -> &[Partition] {
        &self.waves
    }

    /// Unit count the makespan was planned for.
    #[must_use]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Hardware invocations the planned stream charges (after tall
    /// splits under the planning unit).
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Total rows charged across planned invocations.
    #[must_use]
    pub fn charged_rows(&self) -> u64 {
        self.charged_rows
    }

    /// Total tensor-unit work of the planned stream (the `Stats`
    /// tensor-time a single-unit run of this schedule charges).
    #[must_use]
    pub fn tensor_time(&self) -> u64 {
        self.tensor_time
    }

    /// Simulated wall-clock of the tensor work on `units()` units: the
    /// sum of per-wave LPT makespans. Equals [`Self::tensor_time`] on
    /// one unit.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// The longest cost-weighted hazard chain through the scheduled
    /// graph: the simulated makespan no number of units can beat. On
    /// one unit [`Self::makespan`] instead degenerates to
    /// [`Self::tensor_time`], so the interesting comparison is
    /// multi-unit — see [`Self::sched_efficiency`].
    #[must_use]
    pub fn critical_path(&self) -> u64 {
        self.critical_path
    }

    /// How close the wave schedule gets to the best possible makespan:
    /// `lower_bound / makespan`, where the lower bound is the larger of
    /// the critical path and the perfect work split
    /// `⌈tensor_time / units⌉`. Always in `(0, 1]` (every wave's LPT
    /// load is at least the wave's average, and the critical path
    /// threads through the per-wave maxima, so the bound never exceeds
    /// the makespan); `1.0` means wave-synchronous LPT left nothing on
    /// the table, lower values quantify idle-unit time a cleverer
    /// (e.g. wave-free list) schedule could reclaim. An empty schedule
    /// reports `1.0`.
    #[must_use]
    pub fn sched_efficiency(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        let bound = self
            .critical_path
            .max(self.tensor_time.div_ceil(self.units as u64));
        bound as f64 / self.makespan as f64
    }
}

/// Merge same-depth ops that stream one left-operand region against
/// adjacent weight columns into wider invocations. Returns merges made.
///
/// Equal depth guarantees the *pair* is unordered, but the merged node
/// executes at the earlier member's program position — so the later
/// member is hoisted across everything recorded between them. That is
/// only sound when every interposed conflicting node commutes with it,
/// which [`hoist_is_benign`] decides per conflict kind: any producer/
/// consumer relation (the hoisted op reads what an interposed op writes,
/// or vice versa — possible now that pipelines read written buffers)
/// pins the order, while two accumulates into one region commute
/// exactly over rings (floats reassociate, as the module docs note).
fn width_merge_pass(nodes: &mut Vec<Node>, fused: &mut Vec<u32>, s: usize) -> usize {
    let succs = hazard_successors(nodes);
    let lv = levels(nodes, &succs);
    // Sort candidates so chain members become consecutive: everything
    // that must agree first, then the b-column that must be adjacent.
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by_key(|&i| {
        let n = &nodes[i];
        (
            lv[i],
            n.a,
            n.op.accumulate,
            n.b.buf,
            n.b.r0,
            n.out.buf,
            n.out.r0,
            n.b.c0,
            n.out.c0,
        )
    });
    let mut removed = vec![false; nodes.len()];
    let mut merges = 0usize;
    let mut chain_head: Option<usize> = None;
    for w in order.windows(2) {
        let (i, j) = (w[0], w[1]);
        let head = chain_head.unwrap_or(i);
        let (h, n) = (nodes[head], nodes[j]);
        let mergeable = lv[i] == lv[j]
            && h.op.pad == PadPolicy::ZeroPad
            && n.op.pad == PadPolicy::ZeroPad
            && h.op.accumulate == n.op.accumulate
            && h.a == n.a
            && (n.b.buf, n.b.r0, n.b.rows) == (h.b.buf, h.b.r0, h.b.rows)
            && (n.out.buf, n.out.r0, n.out.rows) == (h.out.buf, h.out.r0, h.out.rows)
            && n.b.c0 == h.b.c0 + h.op.width
            && n.out.c0 == h.out.c0 + h.op.width
            && h.op.width + n.op.width <= s
            && hoist_is_benign(nodes, &removed, head, j);
        if mergeable {
            let head_node = &mut nodes[head];
            head_node.op.width += n.op.width;
            head_node.b.cols += n.b.cols;
            head_node.out.cols += n.out.cols;
            fused[head] += fused[j];
            removed[j] = true;
            merges += 1;
            chain_head = Some(head);
        } else {
            chain_head = None;
        }
    }
    compact(nodes, fused, &removed);
    merges
}

/// `true` iff folding node `j` into the merge head at slot `head` moves
/// `j` across nothing it must stay ordered with. Every live node `w`
/// recorded strictly between the two slots is examined per conflict
/// kind:
///
/// * `w` writes a region `j` reads (RAW) — hoisting would read the
///   pre-write value: blocked;
/// * `j` writes a region `w` reads (WAR) — hoisting would clobber `w`'s
///   input early: blocked;
/// * both write one region (WAW) — commutes exactly (over rings) iff
///   both accumulate, blocked otherwise.
///
/// The first two cases could not arise under the pre-versioned graph's
/// input/output-disjoint rule; with pipelines reading written buffers
/// they are real, so the check is per-kind rather than the old blanket
/// "any conflict commutes if both accumulate". The head must precede
/// `j` in program order — merging backwards would instead move the
/// *earlier* member across the window, so it is simply refused. Slots
/// already merged away this pass are skipped: their regions live on at
/// their (earlier) host slot, which is checked in their place.
fn hoist_is_benign(nodes: &[Node], removed: &[bool], head: usize, j: usize) -> bool {
    head < j
        && (head + 1..j).all(|w| {
            if removed[w] {
                return true;
            }
            let (w, j) = (&nodes[w], &nodes[j]);
            if w.out.overlaps(&j.a)
                || w.out.overlaps(&j.b)
                || j.out.overlaps(&w.a)
                || j.out.overlaps(&w.b)
            {
                return false;
            }
            !w.out.overlaps(&j.out) || (w.op.accumulate && j.op.accumulate)
        })
}

/// Merge accumulate chains over adjacent inner-dimension slices into
/// single invocations with the concatenated inner dimension. Returns
/// merges made.
///
/// One *batched* round: the hazard analysis runs once, every mergeable
/// pair found in canonical order is applied (each node participating in
/// at most one merge per round), and the caller's fixpoint loop
/// re-rounds until nothing merges. A chain of `k` slices therefore
/// collapses in `O(log k)` hazard builds instead of the seed's one
/// build per merge — together with the bucketed hazard index, this is
/// what took planning the 1024-op coalesce case from ≈92 ms to
/// single-digit milliseconds. Applying several merges on one analysis
/// is sound because merged pairs are disjoint: an untouched candidate's
/// adjacency fields are re-read from the live nodes, and a node merged
/// away earlier in the round moved to its host's *earlier* slot, where
/// [`hoist_is_benign`] already examines the (widened) host in its place.
fn inner_merge_pass(nodes: &mut Vec<Node>, fused: &mut Vec<u32>, s: usize) -> usize {
    let succs = hazard_successors(nodes);
    let lv = levels(nodes, &succs);
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by(|&i, &j| {
        (lv[i], nodes[i].canonical_key()).cmp(&(lv[j], nodes[j].canonical_key()))
    });
    let mut used = vec![false; nodes.len()];
    let mut removed = vec![false; nodes.len()];
    let mut merges = 0usize;
    for &i in &order {
        if used[i] {
            continue;
        }
        let h = nodes[i];
        if h.op.pad != PadPolicy::ZeroPad || !h.op.accumulate {
            continue;
        }
        for &j in &succs[i] {
            if used[j] {
                continue;
            }
            // The pair's only conflict must be the commuting WAW on the
            // shared destination: if the head's write feeds the tail's
            // reads (possible in a pipeline), fusing would consume the
            // pre-write value — refuse.
            let n = nodes[j];
            let pure_waw = !h.out.overlaps(&n.a) && !h.out.overlaps(&n.b);
            let mergeable = pure_waw
                && n.op.pad == PadPolicy::ZeroPad
                && n.op.accumulate
                && n.out == h.out
                && (n.a.buf, n.a.r0, n.a.rows) == (h.a.buf, h.a.r0, h.a.rows)
                && n.a.c0 == h.a.c0 + h.op.inner
                && (n.b.buf, n.b.c0, n.b.cols) == (h.b.buf, h.b.c0, h.b.cols)
                && n.b.r0 == h.b.r0 + h.op.inner
                && h.op.inner + n.op.inner <= s
                && hoist_is_benign(nodes, &removed, i, j);
            if mergeable {
                let head = &mut nodes[i];
                head.op.inner += n.op.inner;
                head.a.cols += n.a.cols;
                head.b.rows += n.b.rows;
                fused[i] += fused[j];
                used[i] = true;
                used[j] = true;
                removed[j] = true;
                merges += 1;
                break;
            }
        }
    }
    compact(nodes, fused, &removed);
    merges
}

/// Drop the nodes flagged in `removed`, preserving program order.
fn compact(nodes: &mut Vec<Node>, fused: &mut Vec<u32>, removed: &[bool]) {
    let mut k = 0usize;
    nodes.retain(|_| {
        k += 1;
        !removed[k - 1]
    });
    let mut k = 0usize;
    fused.retain(|_| {
        k += 1;
        !removed[k - 1]
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OperandRef;
    use tcu_core::{ModelTensorUnit, TensorOp, WeakTensorUnit};

    /// The blocked Theorem-2 loop at block size `blk` over `d × d`
    /// buffers: the canonical recording every scheduler test reuses.
    fn blocked_graph(d: usize, blk: usize) -> (OpGraph, [crate::BufferId; 3]) {
        let mut g = OpGraph::new();
        let a = g.buffer("A", d, d);
        let b = g.buffer("B", d, d);
        let c = g.buffer("C", d, d);
        let q = d / blk;
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, blk, blk)
                    },
                    OperandRef::new(a, 0, k * blk, d, blk),
                    OperandRef::new(b, k * blk, j * blk, blk, blk),
                    OperandRef::new(c, 0, j * blk, d, blk),
                );
            }
        }
        (g, [a, b, c])
    }

    #[test]
    fn blocked_flow_coalesces_to_quarter_on_a_double_width_unit() {
        // Block-16 recording on a √m = 32 unit: width merging pairs the
        // column blocks, inner merging pairs the k-slices — 4× fewer
        // invocations, each still ≤ √m, and 4× fewer streamed charges.
        let d = 64usize;
        let (g, _) = blocked_graph(d, 16);
        assert_eq!(g.len(), 16);
        let unit = ModelTensorUnit::new(32 * 32, 100);
        let plan = Scheduler::new().plan(&g, &unit);
        assert_eq!(plan.ops(), 4);
        assert_eq!(plan.coalesced_away(), 12);
        assert_eq!(plan.invocations(), 4);
        for sn in plan.nodes() {
            assert_eq!(sn.fused, 4);
            assert_eq!((sn.node.op.inner, sn.node.op.width), (32, 32));
        }
        // Un-coalesced plan charges 4× the invocations and rows.
        let eager = Scheduler::new().without_coalescing().plan(&g, &unit);
        assert_eq!(eager.ops(), 16);
        assert_eq!(eager.charged_rows(), 4 * plan.charged_rows());
    }

    #[test]
    fn strict_full_width_ops_never_merge() {
        let d = 64usize;
        let (g, _) = blocked_graph(d, 16);
        // On a √m = 16 unit the blocks already fill the footprint.
        let unit = ModelTensorUnit::new(256, 10);
        let plan = Scheduler::new().plan(&g, &unit);
        assert_eq!(plan.ops(), 16);
        assert_eq!(plan.coalesced_away(), 0);
        // 4 accumulate waves of 4 independent column blocks each.
        assert_eq!(plan.waves(), 4);
    }

    #[test]
    fn schedule_is_canonical_and_wave_partitions_reuse_lpt() {
        let (g, _) = blocked_graph(64, 16);
        let unit = ModelTensorUnit::new(256, 5);
        let p1 = Scheduler::new().plan(&g, &unit);
        let p4 = Scheduler::new().with_units(4).plan(&g, &unit);
        // Same serial order and per-op charges; only makespan differs.
        assert_eq!(p1.nodes(), p4.nodes());
        assert_eq!(p1.tensor_time(), p4.tensor_time());
        assert_eq!(p1.makespan(), p1.tensor_time());
        // 4 equal ops per wave on 4 units: makespan = 1 op per wave.
        assert_eq!(p4.makespan() * 4, p4.tensor_time());
    }

    #[test]
    fn weak_units_split_tall_ops_into_square_invocations() {
        let (g, _) = blocked_graph(64, 16);
        let unit = WeakTensorUnit::new(256, 5);
        let plan = Scheduler::new().plan(&g, &unit);
        assert_eq!(plan.ops(), 16);
        // Every 64-row op splits into 4 square invocations.
        assert_eq!(plan.invocations(), 64);
        assert_eq!(plan.charged_rows(), 64 * 16);
    }

    #[test]
    fn interposed_overwrite_blocks_width_merge() {
        // overwrite C[:,0..4]; acc C[:,0..4] += A·B₁; overwrite
        // C[:,4..8]; acc C[:,4..8] += A·B₂ — the two accumulates are
        // same-level width-merge candidates sharing the left strip, but
        // fusing them would hoist the second accumulate above the
        // overwrite of its own region (recorded between them), dropping
        // its contribution. The merge must be refused.
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 8);
        let x = g.buffer("x", 8, 8);
        let xb = g.buffer("xb", 4, 8);
        let c = g.buffer("c", 8, 8);
        let astrip = OperandRef::new(a, 0, 0, 8, 4);
        let acc = TensorOp {
            accumulate: true,
            ..TensorOp::padded(8, 4, 4)
        };
        for half in 0..2usize {
            // Distinct left strips, so the overwrites themselves are
            // not merge candidates — only the unsound accumulate hoist
            // is on offer.
            g.record(
                TensorOp::padded(8, 4, 4),
                OperandRef::new(x, 0, half * 4, 8, 4),
                OperandRef::new(xb, 0, half * 4, 4, 4),
                OperandRef::new(c, 0, half * 4, 8, 4),
            );
            g.record(
                acc,
                astrip,
                OperandRef::new(b, 0, half * 4, 4, 4),
                OperandRef::new(c, 0, half * 4, 8, 4),
            );
        }
        let unit = ModelTensorUnit::new(64, 0);
        let plan = Scheduler::new().plan(&g, &unit);
        assert_eq!(
            plan.ops(),
            4,
            "hoisting an accumulate across an overwrite of its region \
             must be refused (and overwrites themselves may not merge \
             across the interposed accumulate)"
        );

        // Numeric proof, not just a count: run the plan and compare to
        // program-order evaluation.
        use crate::ExecEnv;
        use tcu_core::TcuMachine;
        use tcu_linalg::ops::matmul_naive;
        use tcu_linalg::Matrix;
        let am = Matrix::from_fn(8, 4, |i, j| (i * 3 + j) as i64 % 5 - 2);
        let bm = Matrix::from_fn(4, 8, |i, j| (i * 7 + j) as i64 % 9 - 4);
        let xm = Matrix::from_fn(8, 8, |i, j| (i + j * 5) as i64 % 7 - 3);
        let xbm = Matrix::from_fn(4, 8, |i, j| (i * 2 + j * 3) as i64 % 11 - 5);
        let mut cm = Matrix::<i64>::zeros(8, 8);
        let mut env = ExecEnv::new(&g);
        env.bind_input(a, am.view());
        env.bind_input(b, bm.view());
        env.bind_input(x, xm.view());
        env.bind_input(xb, xbm.view());
        env.bind_output(c, cm.view_mut());
        let mut mach = TcuMachine::model(64, 0);
        plan.run(&mut mach, &mut env);
        // Program-order reference: per half, overwrite then accumulate.
        let acc_full = matmul_naive(&am, &bm);
        let mut want = Matrix::<i64>::zeros(8, 8);
        for half in 0..2usize {
            let ow = matmul_naive(&xm.block(0, half * 4, 8, 4), &xbm.block(0, half * 4, 4, 4));
            want.set_block(0, half * 4, &ow);
            let mut region = want.subview_mut(0, half * 4, 8, 4);
            region.add_assign(acc_full.view().subview(0, half * 4, 8, 4));
        }
        assert_eq!(cm, want);
    }

    #[test]
    fn interposed_accumulates_commute_so_width_merge_proceeds() {
        // The block-16-on-√m-32 shape in miniature: accumulates into
        // different column blocks interleave in program order, but every
        // interposed conflict is accumulate-with-accumulate — hoisting
        // commutes exactly, so the merges must still happen.
        let (g, _) = blocked_graph(16, 4);
        let unit = ModelTensorUnit::new(64, 0);
        let plan = Scheduler::new().plan(&g, &unit);
        assert_eq!(plan.ops(), 4);
        assert_eq!(plan.coalesced_away(), 12);
    }

    #[test]
    fn interposed_writer_blocks_inner_merge() {
        // C += A₀·B₀ ; C = X (overwrite) ; C += A₁·B₁ — the k-chain is
        // broken by the overwrite, so nothing may merge across it.
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 8);
        let b = g.buffer("b", 8, 4);
        let x = g.buffer("x", 8, 4);
        let xb = g.buffer("xb", 4, 4);
        let c = g.buffer("c", 8, 4);
        let acc = TensorOp {
            accumulate: true,
            ..TensorOp::padded(8, 4, 4)
        };
        let out = OperandRef::new(c, 0, 0, 8, 4);
        g.record(
            acc,
            OperandRef::new(a, 0, 0, 8, 4),
            OperandRef::new(b, 0, 0, 4, 4),
            out,
        );
        g.record(
            TensorOp::padded(8, 4, 4),
            OperandRef::new(x, 0, 0, 8, 4),
            OperandRef::new(xb, 0, 0, 4, 4),
            out,
        );
        g.record(
            acc,
            OperandRef::new(a, 0, 4, 8, 4),
            OperandRef::new(b, 4, 0, 4, 4),
            out,
        );
        let unit = ModelTensorUnit::new(64, 0);
        let plan = Scheduler::new().plan(&g, &unit);
        assert_eq!(plan.ops(), 3, "overwrite in the chain must block merging");
        assert_eq!(plan.waves(), 3);
    }
}
