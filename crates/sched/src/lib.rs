#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # tcu-sched — deferred op-stream runtime for the (m, ℓ)-TCU simulator
//!
//! In the TCU model, an algorithm's cost is its instruction stream: each
//! tensor invocation pays `n·√m + ℓ`, so *how many* invocations you
//! issue and *how much* each one streams are the whole game. This crate
//! attacks both terms after the fact: instead of issuing eagerly,
//! callers **record** their tensor ops into an [`OpGraph`] against named
//! logical buffers, a [`Scheduler`] rewrites and orders the stream, and
//! the resulting [`Schedule`] replays it through any
//! [`tcu_core::TcuMachine`] — host kernels, systolic array, or
//! accounting-only replay.
//!
//! The pipeline, layer by layer:
//!
//! * **[`OpGraph`]** — nodes are [`tcu_core::TensorOp`]s plus operand
//!   regions ([`OperandRef`]: rectangles of logical buffers); hazards
//!   (RAW/WAR/WAW) are inferred automatically from region overlap, and
//!   only conflicting ops keep their recording order.
//! * **[`Scheduler`]** — (1) *coalescing*: merges compatible ops into
//!   wider invocations (adjacent-width merge for ops sharing a left
//!   strip, inner-dimension merge for accumulate chains), each merge
//!   deleting a whole `n·√m + ℓ` charge; (2) *deterministic list
//!   scheduling*: dependency levels, canonical within-level order, and
//!   per-wave unit assignment through [`tcu_core::partition_lpt`] — the
//!   same partitioner the parallel machine uses, so one-unit replay and
//!   multi-unit dispatch charge identical `Stats` and differ only in
//!   makespan.
//! * **[`ExecEnv`] / [`Schedule::run`]** — binds buffers to borrowed
//!   matrix views and issues the stream through
//!   `TcuMachine::issue_into_tagged`, tagging every left operand with
//!   its buffer/generation/region identity so `HostExecutor`'s pack
//!   cache reuses packed strips across invocations (the blocked flow
//!   packs each strip once per run instead of once per block column).
//!
//! Scheduling is strictly opt-in: nothing in the eager
//! `TcuMachine::tensor_mul*` path changes, and with coalescing disabled
//! a scheduled run charges exactly the ops that were recorded.
//!
//! Execution is fallible end to end: [`Schedule::try_run`] and
//! [`Schedule::try_run_parallel`] surface binding, validation, and unit
//! faults as [`tcu_core::TcuError`]s, and the parallel path retries or
//! quarantines faulty units (see the [`run`] module docs for the fault
//! model). The panicking `run`/`run_parallel` forms are thin unwrapping
//! wrappers kept for callers that treat faults as bugs.

pub mod compile;
pub mod dataflow;
pub mod graph;
pub mod run;
pub mod scheduler;

pub use compile::ExecutablePlan;
pub use dataflow::{exec_mode, DataflowTuning, ExecMode};
pub use graph::{BufferId, Node, OpGraph, OperandRef};
pub use run::ExecEnv;
pub use scheduler::{Schedule, ScheduledNode, Scheduler};
