//! Schedule compilation: lower a planned [`Schedule`] into a dense
//! [`ExecutablePlan`] the runtime can replay with no hash lookups, no
//! per-op environment scans, and no staging decisions in the hot loop.
//!
//! Planning resolves *what* to execute (coalesced ops, canonical order,
//! wave partitions); compilation resolves *how*: every operand read is
//! interned into a slot of a run-local snapshot arena keyed by
//! `(buffer, rectangle, generation)`, every staging decision — does this
//! read need a snapshot, and exactly before which op must it be taken —
//! is precomputed into sorted directive lists, and the wave structure is
//! flattened into index ranges. The result is structural (no data, no
//! scalar type): one compiled plan serves every environment whose buffer
//! shapes match, which is what lets `gauss`/`closure` compile a stage's
//! schedule once and re-run it against rebound buffers per step.
//!
//! Three directive classes cover every binding pattern:
//!
//! * **`serial_stages`** — reads of written buffers that some op reads
//!   *while writing the same buffer*. Safe Rust cannot hold the output
//!   binding mutably and read it at once, so the serial runtime
//!   snapshots these (only these — every other read is zero-copy) right
//!   before their first reader.
//! * **`par_stages`** — every read of a written buffer. Wave workers
//!   run while the main thread retains mutable access to the outputs,
//!   so the parallel runtime snapshots each such region once, at the
//!   wave of its first reader (the hazard order makes the bytes
//!   identical wherever in that window the snapshot is taken).
//! * **`cond_stages`** — reads of buffers the graph never writes.
//!   Normally input-bound and zero-copy; if the caller bound one as an
//!   output instead, the parallel runtime snapshots it once at run
//!   start (its content cannot change during the run).
//!
//! Compilation happens implicitly on first execution and is cached in
//! the schedule (see [`Schedule::compile`]), so `run`/`try_run*` are
//! thin compile-then-execute wrappers and repeat runs skip straight to
//! the precomputed form.

use crate::graph::{hazard_successors, Node, OperandRef};
use crate::run::ExecEnv;
use crate::scheduler::Schedule;
use std::collections::HashMap;
use tcu_core::{TcuError, TensorOp};
use tcu_linalg::Scalar;
use tcu_obs::Recorder as _;

/// Identity of one read snapshot: buffer, rectangle, content version.
type ReadKey = (usize, usize, usize, usize, usize, u32);

/// One compiled operand read: the resolved rectangle, its content
/// version, its snapshot slot, and whether the *serial* runtime serves
/// it from the snapshot (the parallel runtime decides per slot at run
/// time instead, since staging there also depends on input bindings).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CompiledRead {
    pub(crate) buf: usize,
    pub(crate) r0: usize,
    pub(crate) c0: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) gen: u32,
    pub(crate) slot: u32,
    pub(crate) serial_staged: bool,
}

/// One emitted op with every operand resolved to concrete offsets.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CompiledOp {
    pub(crate) op: TensorOp,
    pub(crate) out_buf: usize,
    pub(crate) out_r0: usize,
    pub(crate) out_c0: usize,
    pub(crate) out_rows: usize,
    pub(crate) out_cols: usize,
    pub(crate) a: CompiledRead,
    pub(crate) b: CompiledRead,
}

/// A precomputed staging decision: snapshot `(buf, rectangle)` into
/// `slot` before op `before_op` (the key's first reader) executes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StageDirective {
    pub(crate) buf: usize,
    pub(crate) r0: usize,
    pub(crate) c0: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) slot: u32,
    pub(crate) before_op: u32,
}

/// A [`Schedule`] lowered to its executable form: dense op array,
/// sorted staging directives, and flattened wave ranges. Structural —
/// it references logical buffers and slots, never data — so one
/// compiled plan is re-runnable against any rebound environment of the
/// same buffer shapes.
#[derive(Clone, Debug, Default)]
pub struct ExecutablePlan {
    pub(crate) ops: Vec<CompiledOp>,
    /// Written-buffer keys with a same-buffer reader, by `before_op`.
    pub(crate) serial_stages: Vec<StageDirective>,
    /// Every written-buffer key, sorted by `before_op`.
    pub(crate) par_stages: Vec<StageDirective>,
    /// Never-written-buffer keys (staged at run start if not
    /// input-bound; parallel runtime only).
    pub(crate) cond_stages: Vec<StageDirective>,
    /// Snapshot-arena size (one slot per distinct read key).
    pub(crate) slots: usize,
    /// `ops` index range of each wave, in wave order.
    pub(crate) wave_ranges: Vec<(usize, usize)>,
    /// Per-op hazard-predecessor count, emission order — the dataflow
    /// driver's ready gate (an op is dispatchable once this many
    /// predecessors have committed).
    pub(crate) preds: Vec<u32>,
    /// CSR hazard-successor lists over `ops`: op `i`'s successors are
    /// `succs[succ_off[i] .. succ_off[i + 1]]`. Edges are strictly
    /// forward in emission order (conflicting nodes always sit on
    /// different levels, and emission sorts by level first).
    pub(crate) succs: Vec<u32>,
    /// `succs` offsets, length `ops + 1`.
    pub(crate) succ_off: Vec<u32>,
}

impl ExecutablePlan {
    /// Compiled ops (equals the schedule's emitted ops).
    #[must_use]
    pub fn ops(&self) -> usize {
        self.ops.len()
    }

    /// Waves (equals the schedule's).
    #[must_use]
    pub fn waves(&self) -> usize {
        self.wave_ranges.len()
    }

    /// Distinct read keys (the snapshot arena's size). Most are never
    /// materialized: only [`Self::staged_reads`] snapshot on the
    /// parallel path, and strictly fewer on the serial path.
    #[must_use]
    pub fn read_slots(&self) -> usize {
        self.slots
    }

    /// Read keys the parallel runtime snapshots (written-buffer reads).
    #[must_use]
    pub fn staged_reads(&self) -> usize {
        self.par_stages.len()
    }

    /// Read keys the serial runtime snapshots (same-buffer
    /// read-while-write only — everything else is zero-copy).
    #[must_use]
    pub fn serial_staged_reads(&self) -> usize {
        self.serial_stages.len()
    }

    /// Hazard edges between compiled ops (the dependency count the
    /// dataflow driver's ready gating walks).
    #[must_use]
    pub fn hazard_edges(&self) -> usize {
        self.succs.len()
    }

    /// Op `i`'s hazard successors (emission-order indices, all `> i`).
    pub(crate) fn successors_of(&self, i: usize) -> &[u32] {
        &self.succs[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }
}

/// Intern one operand read: find-or-create its arena slot, record the
/// first reader and whether any reader also writes the buffer.
#[allow(clippy::too_many_arguments)]
fn intern_read(
    region: &OperandRef,
    gen: u32,
    op_index: usize,
    out_buf: usize,
    slot_of: &mut HashMap<ReadKey, u32>,
    keys: &mut Vec<ReadKey>,
    first_reader: &mut Vec<u32>,
    same_buf: &mut Vec<bool>,
) -> CompiledRead {
    let key = (
        region.buf.0,
        region.r0,
        region.c0,
        region.rows,
        region.cols,
        gen,
    );
    let slot = *slot_of.entry(key).or_insert_with(|| {
        keys.push(key);
        first_reader.push(op_index as u32);
        same_buf.push(false);
        (keys.len() - 1) as u32
    });
    if region.buf.0 == out_buf {
        same_buf[slot as usize] = true;
    }
    CompiledRead {
        buf: region.buf.0,
        r0: region.r0,
        c0: region.c0,
        rows: region.rows,
        cols: region.cols,
        gen,
        slot,
        serial_staged: false,
    }
}

/// Lower `sched` into its executable form. Validates every op against
/// the planned `√m` once (execution re-checks nothing), resolves each
/// read to a slot of the snapshot arena, and classifies every slot into
/// the directive lists described in the module docs. Directive lists
/// come out sorted by `before_op` for free: slots are created in
/// first-reader order.
///
/// # Panics
/// Panics if an emitted node's operand or output rectangles disagree
/// with its op descriptor — a scheduler bug, not a caller error (the
/// graph validates these shapes at record time and coalescing preserves
/// them).
pub(crate) fn compile_schedule(sched: &Schedule) -> Result<ExecutablePlan, TcuError> {
    let nodes = sched.nodes();
    // A buffer is written iff an emitted node writes it: coalescing
    // merges writes into fewer nodes but never removes a buffer's last
    // write, so this matches the recorded graph's notion exactly.
    let mut written = vec![false; sched.buffer_shapes.len()];
    for sn in nodes {
        written[sn.node.out.buf.0] = true;
    }

    let mut slot_of: HashMap<ReadKey, u32> = HashMap::new();
    let mut keys: Vec<ReadKey> = Vec::new();
    let mut first_reader: Vec<u32> = Vec::new();
    let mut same_buf: Vec<bool> = Vec::new();
    let mut ops: Vec<CompiledOp> = Vec::with_capacity(nodes.len());
    let mut wave_ranges: Vec<(usize, usize)> = Vec::new();
    let mut wstart = 0usize;
    for (i, sn) in nodes.iter().enumerate() {
        let node = &sn.node;
        node.op.check(sched.sqrt_m)?;
        if i > 0 && sn.level != nodes[i - 1].level {
            wave_ranges.push((wstart, i));
            wstart = i;
        }
        let out_buf = node.out.buf.0;
        let a = intern_read(
            &node.a,
            sn.a_gen,
            i,
            out_buf,
            &mut slot_of,
            &mut keys,
            &mut first_reader,
            &mut same_buf,
        );
        let b = intern_read(
            &node.b,
            sn.b_gen,
            i,
            out_buf,
            &mut slot_of,
            &mut keys,
            &mut first_reader,
            &mut same_buf,
        );
        assert!(
            node.op
                .matches((node.a.rows, node.a.cols), (node.b.rows, node.b.cols)),
            "operands do not match the op descriptor"
        );
        assert_eq!(
            (node.out.rows, node.out.cols),
            (node.op.rows, node.op.width),
            "output region does not match the op descriptor"
        );
        ops.push(CompiledOp {
            op: node.op,
            out_buf,
            out_r0: node.out.r0,
            out_c0: node.out.c0,
            out_rows: node.out.rows,
            out_cols: node.out.cols,
            a,
            b,
        });
    }
    if !nodes.is_empty() {
        wave_ranges.push((wstart, nodes.len()));
    }

    let mut serial_stages = Vec::new();
    let mut par_stages = Vec::new();
    let mut cond_stages = Vec::new();
    for (slot, key) in keys.iter().enumerate() {
        let d = StageDirective {
            buf: key.0,
            r0: key.1,
            c0: key.2,
            rows: key.3,
            cols: key.4,
            slot: slot as u32,
            before_op: first_reader[slot],
        };
        if written[d.buf] {
            par_stages.push(d);
            if same_buf[slot] {
                serial_stages.push(d);
            }
        } else {
            cond_stages.push(d);
        }
    }
    // A key with *any* same-buffer reader serves *all* its serial
    // readers from the snapshot — one snapshot, one code path, and the
    // bytes are identical either way (the snapshot is taken at the
    // region's exact content version).
    for cop in &mut ops {
        for r in [&mut cop.a, &mut cop.b] {
            if written[r.buf] && same_buf[r.slot as usize] {
                r.serial_staged = true;
            }
        }
    }

    // Hazard dependency structure over the *emission-ordered* ops:
    // per-op predecessor counts and CSR successor lists. Conflicting
    // nodes always differ in level and emission sorts by level first,
    // so every edge points strictly forward in emission order — which
    // is what lets the dataflow driver gate dispatch on a simple
    // committed-predecessor countdown.
    let emitted: Vec<Node> = nodes.iter().map(|sn| sn.node).collect();
    let succ_lists = hazard_successors(&emitted);
    let mut preds = vec![0u32; emitted.len()];
    let mut succ_off = Vec::with_capacity(emitted.len() + 1);
    let mut succs = Vec::new();
    succ_off.push(0u32);
    for (i, list) in succ_lists.iter().enumerate() {
        for &j in list {
            debug_assert!(j > i, "hazard edges must be forward in emission order");
            preds[j] += 1;
            succs.push(j as u32);
        }
        succ_off.push(succs.len() as u32);
    }

    Ok(ExecutablePlan {
        ops,
        serial_stages,
        par_stages,
        cond_stages,
        slots: keys.len(),
        wave_ranges,
        preds,
        succs,
        succ_off,
    })
}

impl Schedule {
    /// The compiled form of this schedule, lowering it on first use and
    /// caching the result in the schedule itself.
    pub(crate) fn compiled(&self) -> Result<&ExecutablePlan, TcuError> {
        if let Some(p) = self.compiled.get() {
            return Ok(p);
        }
        // Telemetry: the lowering itself is a scheduler-lane span (only
        // cold compiles land here — cache hits return above).
        let rec = tcu_obs::env_recorder();
        let start = rec.as_ref().map(|r| r.now_ns());
        let plan = compile_schedule(self)?;
        if let (Some(rec), Some(t0)) = (rec, start) {
            rec.record(
                tcu_obs::Lane::Scheduler,
                tcu_obs::SpanEvent {
                    kind: tcu_obs::EventKind::Compile {
                        ops: plan.ops.len() as u64,
                    },
                    t_ns: t0,
                    dur_ns: rec.now_ns().saturating_sub(t0),
                },
            );
        }
        Ok(self.compiled.get_or_init(|| plan))
    }

    /// Compile this schedule against `env`'s buffer shapes, returning
    /// the cached [`ExecutablePlan`].
    ///
    /// Compilation is structural — it depends on the schedule alone —
    /// so the environment only serves as a shape witness here: the call
    /// fails exactly when running against `env` would. The plan is
    /// computed once per schedule and cached; `run`/`try_run*` call
    /// this implicitly, so explicit compilation is only useful to front
    /// the (small) lowering cost or to inspect the compiled shape.
    pub fn compile<T: Scalar>(&self, env: &ExecEnv<'_, T>) -> Result<&ExecutablePlan, TcuError> {
        if env.shapes() != &self.buffer_shapes[..] {
            return Err(TcuError::PlanMismatch {
                what: "environment built for a different graph (buffer shapes disagree)",
            });
        }
        self.compiled()
    }
}
