//! Deterministic dataflow placement: list-schedule the compiled plan's
//! hazard DAG onto the planned units *at plan time*, so the barrier-free
//! runtime can execute fixed per-unit op sequences and stay bit-for-bit
//! deterministic no matter how threads interleave.
//!
//! The wave driver inserts a global barrier at every hazard level, so
//! its makespan is the *sum of per-wave maxima* — a straggler idles
//! every other unit for the rest of its wave. The dataflow placement
//! replays the same cost model through an event-driven simulation
//! instead: ops become ready as their hazard predecessors finish, the
//! ready pool is drained in `(ready time, cost desc, emission index)`
//! order, and each op runs on the unit that can start it earliest.
//! Ties prefer the op's *home* — the unit the wave planner's LPT
//! partition assigned its first invocation to — and otherwise follow a
//! seeded permutation of the units; a non-home choice is a
//! **deterministic steal**, resolved here rather than raced over at run
//! time (cf. Bobpp-style deterministic work partitioning). For a
//! single-wave schedule the simulation reduces exactly to
//! [`tcu_core::partition_lpt`]: every op is ready at time zero, the
//! pool drains in decreasing cost order, and the min-start unit is the
//! min-load unit, with the home tie-break picking the LPT assignment
//! itself.
//!
//! Greedy list scheduling can lose to per-wave LPT on adversarial
//! graphs, so the placement falls back to the wave assignment (home
//! units, emission order) whenever the simulated makespan exceeds the
//! wave makespan — [`Schedule::dataflow_makespan`] therefore never
//! exceeds [`Schedule::makespan`].
//!
//! The placement is pure integer arithmetic over the plan — no clocks,
//! no thread timing — so a given `(schedule, seed)` always yields the
//! same unit assignment, the same per-unit op order, and the same
//! simulated makespan, which is what the runtime charges into
//! `time()`.

use crate::compile::ExecutablePlan;
use crate::scheduler::Schedule;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which parallel driver [`Schedule::try_run_parallel`] routes to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// The PR-6 wave driver: a global barrier per hazard level.
    Wave,
    /// The barrier-free dataflow driver (the default).
    #[default]
    Dataflow,
}

/// The driver selection for this process: `TCU_EXEC_MODE=wave` pins the
/// legacy wave driver, anything else (including unset) selects
/// dataflow. Read per run, so tests can toggle it.
#[must_use]
pub fn exec_mode() -> ExecMode {
    match std::env::var("TCU_EXEC_MODE") {
        Ok(v) if v.eq_ignore_ascii_case("wave") => ExecMode::Wave,
        _ => ExecMode::Dataflow,
    }
}

/// Knobs of the dataflow driver that do not affect results: the steal
/// tie-break seed (any seed yields byte-identical elements, `Stats`,
/// and digest — it only moves which unit runs what, hence per-unit
/// cache counters and `time()`), and the inline/threaded choice (also
/// unobservable in `time()` and cache counters, except for the
/// threaded driver's timing-dependent recovery charges under
/// *permanent* faults — see the `run` module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataflowTuning {
    /// Seed of the steal tie-break permutation (0 = lowest-index-first
    /// after the home unit).
    pub steal_seed: u64,
    /// `Some(true)` forces the single-threaded inline executor,
    /// `Some(false)` forces the worker-pool executor, `None` picks
    /// inline exactly when the host has one core (where worker threads
    /// only add dispatch overhead).
    pub inline: Option<bool>,
}

impl DataflowTuning {
    /// Tuning from the environment: `TCU_STEAL_SEED` (integer, default
    /// 0) and `TCU_DF_INLINE` (`1`/`0`, default auto).
    #[must_use]
    pub fn from_env() -> Self {
        let steal_seed = std::env::var("TCU_STEAL_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let inline = match std::env::var("TCU_DF_INLINE").as_deref() {
            Ok("1") => Some(true),
            Ok("0") => Some(false),
            _ => None,
        };
        Self { steal_seed, inline }
    }

    /// Resolve the inline/threaded choice.
    #[must_use]
    pub fn use_inline(&self) -> bool {
        self.inline
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(true, |p| p.get() <= 1))
    }
}

/// The resolved dataflow placement of one schedule: fixed unit
/// assignment and per-unit execution order, plus the simulated makespan
/// the runtime charges.
#[derive(Clone, Debug)]
pub(crate) struct DataflowPlacement {
    /// Unit each op runs on, emission order.
    pub(crate) unit_of: Vec<u32>,
    /// Each op's wave-LPT home unit (`unit_of[i] != home[i]` is a
    /// steal), emission order.
    pub(crate) home: Vec<u32>,
    /// Simulated start time of each op (the fallback placement stores
    /// the emission index — any topological stamp works; only the
    /// relative order is consumed).
    pub(crate) start: Vec<u64>,
    /// Per-unit op indices in execution order (ascending `start`).
    pub(crate) unit_order: Vec<Vec<u32>>,
    /// Global execution order for the inline executor: sorted by
    /// `(start, unit, index)`, which interleaves the per-unit orders
    /// without reordering any of them and respects every hazard edge.
    pub(crate) order: Vec<u32>,
    /// Simulated makespan the runtime charges (never exceeds the wave
    /// makespan — see the fallback).
    pub(crate) makespan: u64,
    /// Ops placed off their home unit.
    pub(crate) steals: u64,
    /// Whether the wave placement was kept (the simulation lost).
    pub(crate) fallback: bool,
}

/// `splitmix64` step — the standard 64-bit mix, enough PRNG for a
/// tie-break permutation without pulling in a dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates permutation of the unit indices — the order
/// non-home units are considered when several can start an op equally
/// early. Seed 0 still shuffles (the shuffle is what the seeded
/// steal-order proptests vary); determinism per seed is the contract.
fn steal_permutation(units: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..units).collect();
    let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
    for i in (1..units).rev() {
        let r = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, r);
    }
    perm
}

/// Each op's home unit: the wave-LPT unit of its first invocation —
/// exactly the unit the wave driver would run it on.
fn home_units(sched: &Schedule, plan: &ExecutablePlan) -> Vec<u32> {
    let mut home = vec![0u32; sched.ops()];
    for (wave, &(wstart, wend)) in plan.wave_ranges.iter().enumerate() {
        let assignment = &sched.wave_partitions()[wave].assignment;
        let mut inv_at = 0usize;
        for (i, h) in home.iter_mut().enumerate().take(wend).skip(wstart) {
            *h = assignment[inv_at] as u32;
            inv_at += sched.node_invocations[i] as usize;
        }
    }
    home
}

/// Compute the deterministic dataflow placement of `sched` under
/// `steal_seed`. Pure function of its arguments — see the module docs
/// for the simulation and the wave fallback.
pub(crate) fn place_dataflow(
    sched: &Schedule,
    plan: &ExecutablePlan,
    steal_seed: u64,
) -> DataflowPlacement {
    let n = sched.ops();
    let units = sched.units();
    let costs = &sched.node_costs;
    let home = home_units(sched, plan);

    let mut indeg: Vec<u32> = plan.preds.clone();
    let mut ready_time = vec![0u64; n];
    // Min-heap on (ready time, cost descending, emission index): the
    // drain order that reduces to LPT within a single wave.
    let mut heap: BinaryHeap<Reverse<(u64, Reverse<u64>, u32)>> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| Reverse((0u64, Reverse(costs[i]), i as u32)))
        .collect();
    let perm = steal_permutation(units, steal_seed);

    let mut avail = vec![0u64; units];
    let mut unit_of = vec![0u32; n];
    let mut start = vec![0u64; n];
    let mut unit_order: Vec<Vec<u32>> = vec![Vec::new(); units];
    let mut steals = 0u64;
    while let Some(Reverse((rt, Reverse(cost), idx))) = heap.pop() {
        let i = idx as usize;
        let h = home[i] as usize;
        // `units >= 1` always (the planner asserts it), so the min
        // exists.
        let best = (0..units).map(|u| avail[u].max(rt)).min().unwrap_or(rt);
        let chosen = if avail[h].max(rt) == best {
            h
        } else {
            steals += 1;
            perm.iter()
                .copied()
                .find(|&u| avail[u].max(rt) == best)
                .unwrap_or(h)
        };
        start[i] = best;
        avail[chosen] = best + cost;
        unit_of[i] = chosen as u32;
        unit_order[chosen].push(idx);
        let finish = best + cost;
        for &j in plan.successors_of(i) {
            let j = j as usize;
            ready_time[j] = ready_time[j].max(finish);
            indeg[j] -= 1;
            if indeg[j] == 0 {
                heap.push(Reverse((ready_time[j], Reverse(costs[j]), j as u32)));
            }
        }
    }
    let makespan = avail.iter().copied().max().unwrap_or(0);

    if makespan > sched.makespan() {
        // The barrier-free greedy lost to per-wave LPT (possible on
        // adversarial graphs): keep the wave placement, whose emission
        // order is trivially hazard-safe and whose makespan the wave
        // driver already achieves.
        let mut unit_order: Vec<Vec<u32>> = vec![Vec::new(); units];
        for (i, &h) in home.iter().enumerate() {
            unit_order[h as usize].push(i as u32);
        }
        return DataflowPlacement {
            unit_of: home.clone(),
            start: (0..n as u64).collect(),
            unit_order,
            order: (0..n as u32).collect(),
            makespan: sched.makespan(),
            steals: 0,
            fallback: true,
            home,
        };
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| (start[i as usize], unit_of[i as usize], i));
    DataflowPlacement {
        unit_of,
        home,
        start,
        unit_order,
        order,
        makespan,
        steals,
        fallback: false,
    }
}

impl Schedule {
    /// The simulated makespan of the dataflow driver under the
    /// environment's steal seed (`TCU_STEAL_SEED`, default 0): what a
    /// dataflow run charges into `time()` as its tensor wall-clock.
    /// Never exceeds [`Schedule::makespan`] — the placement falls back
    /// to the wave assignment when the barrier-free simulation loses —
    /// and never undercuts
    /// `max(critical_path, ⌈tensor_time / units⌉)`.
    #[must_use]
    pub fn dataflow_makespan(&self) -> u64 {
        self.dataflow_makespan_seeded(DataflowTuning::from_env().steal_seed)
    }

    /// [`Schedule::dataflow_makespan`] under an explicit steal seed.
    #[must_use]
    pub fn dataflow_makespan_seeded(&self, steal_seed: u64) -> u64 {
        match self.compiled() {
            Ok(plan) => place_dataflow(self, plan, steal_seed).makespan,
            Err(_) => self.makespan(),
        }
    }

    /// Deterministic steals in the dataflow placement under the
    /// environment's steal seed: ops the simulation moved off their
    /// wave-LPT home unit.
    #[must_use]
    pub fn dataflow_steals(&self) -> u64 {
        match self.compiled() {
            Ok(plan) => place_dataflow(self, plan, DataflowTuning::from_env().steal_seed).steals,
            Err(_) => 0,
        }
    }

    /// Whether the dataflow placement fell back to the wave assignment
    /// because the barrier-free simulation did not beat the wave
    /// makespan (rare; the fallback keeps
    /// `dataflow_makespan ≤ makespan` unconditional).
    #[must_use]
    pub fn dataflow_fallback(&self) -> bool {
        match self.compiled() {
            Ok(plan) => place_dataflow(self, plan, DataflowTuning::from_env().steal_seed).fallback,
            Err(_) => true,
        }
    }

    /// [`Schedule::sched_efficiency`] for the dataflow driver:
    /// `lower_bound / dataflow_makespan`. At least the wave efficiency
    /// (the dataflow makespan never exceeds the wave makespan), and
    /// `1.0` means the barrier-free schedule is provably optimal for
    /// the cost model.
    #[must_use]
    pub fn dataflow_efficiency(&self) -> f64 {
        let df = self.dataflow_makespan();
        if df == 0 {
            return 1.0;
        }
        let bound = self
            .critical_path()
            .max(self.tensor_time().div_ceil(self.units() as u64));
        bound as f64 / df as f64
    }

    /// The simulated tensor wall-clock [`Schedule::try_run_parallel`]
    /// will charge under the *current* [`exec_mode`]:
    /// [`Schedule::makespan`] for the wave driver,
    /// [`Schedule::dataflow_makespan`] for the dataflow driver. What
    /// mode-agnostic tests compare `time()` against.
    #[must_use]
    pub fn planned_parallel_time(&self) -> u64 {
        match exec_mode() {
            ExecMode::Wave => self.makespan(),
            ExecMode::Dataflow => self.dataflow_makespan(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpGraph, OperandRef, Scheduler};
    use tcu_core::TensorOp;

    /// A two-stage RAW pipeline whose waves are wide enough to place.
    fn pipeline(d: usize, s: usize) -> OpGraph {
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let mb = g.buffer("M", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for (src, dst) in [(ab, mb), (mb, cb)] {
            for j in 0..q {
                for k in 0..q {
                    g.record(
                        TensorOp {
                            accumulate: true,
                            ..TensorOp::padded(d, s, s)
                        },
                        OperandRef::new(src, 0, k * s, d, s),
                        OperandRef::new(bb, k * s, j * s, s, s),
                        OperandRef::new(dst, 0, j * s, d, s),
                    );
                }
            }
        }
        g
    }

    #[test]
    fn placement_is_deterministic_and_bounded() {
        let unit = tcu_core::ModelTensorUnit::new(64, 13);
        let plan = Scheduler::new().with_units(4).plan(&pipeline(32, 8), &unit);
        let compiled = plan.compiled().expect("compiles");
        let p1 = place_dataflow(&plan, compiled, 7);
        let p2 = place_dataflow(&plan, compiled, 7);
        assert_eq!(p1.unit_of, p2.unit_of);
        assert_eq!(p1.order, p2.order);
        assert_eq!(p1.makespan, p2.makespan);
        assert!(plan.dataflow_makespan_seeded(7) <= plan.makespan());
        let bound = plan
            .critical_path()
            .max(plan.tensor_time().div_ceil(plan.units() as u64));
        assert!(p1.makespan >= bound, "makespan cannot beat the lower bound");
    }

    #[test]
    fn global_order_respects_every_hazard_edge() {
        let unit = tcu_core::ModelTensorUnit::new(64, 13);
        let plan = Scheduler::new().with_units(3).plan(&pipeline(32, 8), &unit);
        let compiled = plan.compiled().expect("compiles");
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let p = place_dataflow(&plan, compiled, seed);
            let mut pos = vec![0usize; plan.ops()];
            for (k, &i) in p.order.iter().enumerate() {
                pos[i as usize] = k;
            }
            for i in 0..plan.ops() {
                for &j in compiled.successors_of(i) {
                    assert!(
                        pos[i] < pos[j as usize],
                        "op {i} must execute before its successor {j} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_wave_reduces_to_the_wave_lpt() {
        // Independent ops only — one wave. The simulation must replay
        // the LPT partition exactly: home units, zero steals, the wave
        // makespan.
        let d = 32usize;
        let s = 8usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp::padded(s, s, s),
                    OperandRef::new(ab, j * s, k * s, s, s),
                    OperandRef::new(bb, 0, 0, s, s),
                    OperandRef::new(cb, j * s, k * s, s, s),
                );
            }
        }
        let unit = tcu_core::ModelTensorUnit::new(64, 13);
        let plan = Scheduler::new().with_units(3).plan(&g, &unit);
        assert_eq!(plan.waves(), 1);
        let compiled = plan.compiled().expect("compiles");
        for seed in [0u64, 42] {
            let p = place_dataflow(&plan, compiled, seed);
            assert_eq!(p.unit_of, p.home, "single wave must keep LPT homes");
            assert_eq!(p.steals, 0);
            assert_eq!(p.makespan, plan.makespan());
        }
    }
}
