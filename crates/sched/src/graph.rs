//! The deferred op stream: logical buffers, operand regions, and the
//! hazard-analyzed [`OpGraph`].
//!
//! Callers *record* tensor ops instead of issuing them: each node names
//! a [`TensorOp`] plus the three operand regions — rectangles of named
//! logical buffers — it reads (`a`, `b`) and writes (`out`). The graph
//! infers the dependency structure automatically from region overlap:
//! two nodes conflict when one's write rectangle intersects anything the
//! other touches (read-after-write, write-after-read, write-after-write
//! all reduce to that test), and conflicting nodes must execute in
//! recording order. Everything else is reorderable — which is exactly
//! the freedom the [`crate::Scheduler`] exploits to coalesce compatible
//! ops and group invocations that share a left-operand strip.

use tcu_core::TensorOp;

/// Handle to a logical buffer registered with [`OpGraph::buffer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// Position of the buffer in its graph's registration order.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A rectangle of a logical buffer: what one op operand occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperandRef {
    /// The buffer the region lives in.
    pub buf: BufferId,
    /// First row of the region.
    pub r0: usize,
    /// First column of the region.
    pub c0: usize,
    /// Region height.
    pub rows: usize,
    /// Region width.
    pub cols: usize,
}

impl OperandRef {
    /// The `rows × cols` region of `buf` anchored at `(r0, c0)`.
    #[must_use]
    pub fn new(buf: BufferId, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        Self {
            buf,
            r0,
            c0,
            rows,
            cols,
        }
    }

    /// `true` iff the two regions share at least one element.
    #[must_use]
    pub fn overlaps(&self, other: &OperandRef) -> bool {
        self.buf == other.buf
            && self.r0 < other.r0 + other.rows
            && other.r0 < self.r0 + self.rows
            && self.c0 < other.c0 + other.cols
            && other.c0 < self.c0 + self.cols
    }
}

/// One recorded tensor op: the descriptor plus its operand regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Node {
    /// The instruction descriptor (shapes, accumulate flag, pad policy).
    pub op: TensorOp,
    /// Left operand region (`op.rows × op.inner`).
    pub a: OperandRef,
    /// Right operand region (`op.inner × op.width`).
    pub b: OperandRef,
    /// Destination region (`op.rows × op.width`), overwritten or
    /// accumulated into per `op.accumulate`.
    pub out: OperandRef,
}

impl Node {
    /// `true` iff executing the two nodes in either order could differ:
    /// one's write rectangle intersects something the other touches.
    #[must_use]
    pub fn conflicts(&self, other: &Node) -> bool {
        self.out.overlaps(&other.a)
            || self.out.overlaps(&other.b)
            || self.out.overlaps(&other.out)
            || self.a.overlaps(&other.out)
            || self.b.overlaps(&other.out)
    }

    /// Total order used wherever independent nodes need a canonical
    /// sequence (within-level schedule order, merge-scan order): every
    /// field of the node, so two nodes compare equal only when they are
    /// the same instruction on the same data — in which case their order
    /// is immaterial. Crucially *not* the recording index, which is what
    /// makes schedules invariant under dependency-respecting shuffles of
    /// the recording order.
    #[must_use]
    pub fn canonical_key(&self) -> impl Ord {
        (self.out, self.a, self.b, op_key(&self.op))
    }
}

/// `TensorOp` as an orderable tuple (the descriptor derives no `Ord`).
fn op_key(op: &TensorOp) -> (usize, usize, usize, bool, u8) {
    (
        op.rows,
        op.inner,
        op.width,
        op.accumulate,
        matches!(op.pad, tcu_core::PadPolicy::ZeroPad).into(),
    )
}

/// Shape of a registered logical buffer, plus the role the recorded ops
/// have given it so far (input-read, output-written, or neither yet).
#[derive(Clone, Debug)]
pub(crate) struct BufferInfo {
    pub(crate) name: String,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) read: bool,
    pub(crate) written: bool,
}

/// A recorded stream of tensor ops over named logical buffers, with
/// dependencies inferred from operand-region overlap.
#[derive(Clone, Debug, Default)]
pub struct OpGraph {
    pub(crate) buffers: Vec<BufferInfo>,
    pub(crate) nodes: Vec<Node>,
}

impl OpGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a `rows × cols` logical buffer under `name` (names are
    /// diagnostic only; identity is the returned id).
    pub fn buffer(&mut self, name: &str, rows: usize, cols: usize) -> BufferId {
        self.buffers.push(BufferInfo {
            name: name.to_string(),
            rows,
            cols,
            read: false,
            written: false,
        });
        BufferId(self.buffers.len() - 1)
    }

    /// Number of registered buffers.
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Diagnostic name of a buffer.
    ///
    /// # Panics
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn buffer_name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    /// Shape of a buffer.
    ///
    /// # Panics
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn buffer_shape(&self, id: BufferId) -> (usize, usize) {
        let b = &self.buffers[id.0];
        (b.rows, b.cols)
    }

    /// Record one op reading `a`/`b` and writing `out`. Recording order
    /// is program order: conflicting ops keep it, independent ops may be
    /// reordered and coalesced by the scheduler.
    ///
    /// # Panics
    /// Panics if a region is out of its buffer's bounds, if a region
    /// shape disagrees with the descriptor, or if `out` names a buffer
    /// also used as `a`/`b` anywhere (the runtime binds buffers as
    /// whole-buffer inputs or outputs, so reading written data back
    /// through the graph is not supported — run a second graph instead).
    pub fn record(&mut self, op: TensorOp, a: OperandRef, b: OperandRef, out: OperandRef) -> usize {
        self.check_region(&a, "left operand");
        self.check_region(&b, "right operand");
        self.check_region(&out, "output");
        assert_eq!(
            (a.rows, a.cols),
            (op.rows, op.inner),
            "left region must be rows × inner"
        );
        assert_eq!(
            (b.rows, b.cols),
            (op.inner, op.width),
            "right region must be inner × width"
        );
        assert_eq!(
            (out.rows, out.cols),
            (op.rows, op.width),
            "output region must be rows × width"
        );
        assert!(
            out.buf != a.buf && out.buf != b.buf,
            "an op may not write the buffer it reads: outputs and inputs \
             are distinct bindings at run time"
        );
        for (id, role_write) in [(a.buf, false), (b.buf, false), (out.buf, true)] {
            let info = &mut self.buffers[id.0];
            let clash = if role_write { info.read } else { info.written };
            assert!(
                !clash,
                "buffer '{}' is used as both an input and an output in this \
                 graph; split the pipeline into two graphs",
                info.name
            );
            if role_write {
                info.written = true;
            } else {
                info.read = true;
            }
        }
        self.nodes.push(Node { op, a, b, out });
        self.nodes.len() - 1
    }

    /// The recorded nodes, in program (recording) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of recorded ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn check_region(&self, r: &OperandRef, what: &str) {
        let info = self
            .buffers
            .get(r.buf.0)
            .unwrap_or_else(|| panic!("{what}: unknown buffer id"));
        assert!(
            r.r0 + r.rows <= info.rows && r.c0 + r.cols <= info.cols,
            "{what}: region exceeds buffer '{}' ({} × {})",
            info.name,
            info.rows,
            info.cols
        );
    }
}

/// Directed hazard edges over a node list: `succs[i]` holds every later
/// node that conflicts with node `i` (program order orients each pair).
/// The quadratic pair scan is exact — no false independence — and cheap
/// at the graph sizes the blocked algorithms record (thousands of ops).
#[must_use]
pub(crate) fn hazard_successors(nodes: &[Node]) -> Vec<Vec<usize>> {
    let mut succs = vec![Vec::new(); nodes.len()];
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            if nodes[i].conflicts(&nodes[j]) {
                succs[i].push(j);
            }
        }
    }
    succs
}

/// Dependency depth of every node: 0 for sources, else one more than
/// the deepest conflicting predecessor. Depends only on the conflict
/// structure, so it is invariant under dependency-respecting shuffles
/// of the recording order.
#[must_use]
pub(crate) fn levels(nodes: &[Node], succs: &[Vec<usize>]) -> Vec<usize> {
    let mut level = vec![0usize; nodes.len()];
    for i in 0..nodes.len() {
        for &j in &succs[i] {
            level[j] = level[j].max(level[i] + 1);
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn padded(rows: usize, inner: usize, width: usize, acc: bool) -> TensorOp {
        TensorOp {
            accumulate: acc,
            ..TensorOp::padded(rows, inner, width)
        }
    }

    #[test]
    fn regions_overlap_only_within_a_buffer() {
        let mut g = OpGraph::new();
        let x = g.buffer("x", 8, 8);
        let y = g.buffer("y", 8, 8);
        let r = |b, r0, c0| OperandRef::new(b, r0, c0, 4, 4);
        assert!(r(x, 0, 0).overlaps(&r(x, 3, 3)));
        assert!(!r(x, 0, 0).overlaps(&r(x, 4, 0)));
        assert!(!r(x, 0, 0).overlaps(&r(x, 0, 4)));
        assert!(!r(x, 0, 0).overlaps(&r(y, 0, 0)));
        assert_eq!(g.buffer_name(y), "y");
        assert_eq!(g.buffer_shape(x), (8, 8));
    }

    #[test]
    fn hazards_order_conflicting_ops_and_free_independent_ones() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 8);
        let c = g.buffer("c", 8, 8);
        let op = padded(8, 4, 4, true);
        let areg = OperandRef::new(a, 0, 0, 8, 4);
        // Two accumulates into the same block: ordered. A third into a
        // disjoint block: free.
        g.record(
            op,
            areg,
            OperandRef::new(b, 0, 0, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
        g.record(
            op,
            areg,
            OperandRef::new(b, 0, 4, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
        g.record(
            op,
            areg,
            OperandRef::new(b, 0, 4, 4, 4),
            OperandRef::new(c, 0, 4, 8, 4),
        );
        let succs = hazard_successors(g.nodes());
        assert_eq!(succs[0], vec![1]);
        assert!(succs[1].is_empty() && succs[2].is_empty());
        assert_eq!(levels(g.nodes(), &succs), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn out_of_bounds_region_rejected() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 8, 4);
        g.record(
            padded(8, 4, 4, false),
            OperandRef::new(a, 1, 0, 8, 4),
            OperandRef::new(b, 0, 0, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
    }

    #[test]
    #[should_panic(expected = "both an input and an output")]
    fn reading_a_written_buffer_rejected() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 4, 4);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 4, 4);
        let d = g.buffer("d", 4, 4);
        let whole = |buf| OperandRef::new(buf, 0, 0, 4, 4);
        g.record(padded(4, 4, 4, false), whole(a), whole(b), whole(c));
        // c is written above; using it as a left operand must fail.
        g.record(padded(4, 4, 4, false), whole(c), whole(b), whole(d));
    }

    #[test]
    #[should_panic(expected = "rows × inner")]
    fn region_shape_must_match_descriptor() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 8, 4);
        g.record(
            padded(8, 4, 4, false),
            OperandRef::new(a, 0, 0, 4, 4),
            OperandRef::new(b, 0, 0, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
    }
}
