//! The deferred op stream: logical buffers, operand regions, and the
//! hazard-analyzed, *versioned* [`OpGraph`].
//!
//! Callers *record* tensor ops instead of issuing them: each node names
//! a [`TensorOp`] plus the three operand regions — rectangles of named
//! logical buffers — it reads (`a`, `b`) and writes (`out`). The graph
//! infers the dependency structure automatically from region overlap:
//! two nodes conflict when one's write rectangle intersects anything the
//! other touches (read-after-write, write-after-read, write-after-write
//! all reduce to that test), and conflicting nodes must execute in
//! recording order. Everything else is reorderable — which is exactly
//! the freedom the [`crate::Scheduler`] exploits to coalesce compatible
//! ops and group invocations that share a left-operand strip.
//!
//! # Buffer generations
//!
//! Buffers are versioned SSA-style at the region level: every write
//! bumps the generation of the rectangle it covers, and each recorded
//! operand resolves against the generation live at record time — the
//! number of previously recorded writes overlapping its region
//! ([`Node::a_gen`]/[`Node::b_gen`]; [`Node::out_gen`] is the version
//! the write supersedes). Two reads of the same region at the same
//! generation are therefore guaranteed to observe bit-identical data,
//! which is what lets a pack-caching executor reuse derived operand
//! forms across invocations, *and* what lets one graph express a
//! multi-stage pipeline: an op may read regions an earlier op wrote
//! (the read is ordered after the write by the inferred RAW hazard).
//! Because a region's overlapping writes are exactly its conflicting
//! predecessors, generations are invariant under dependency-respecting
//! shuffles of the recording order — the scheduler's determinism
//! contract extends to versioned pipelines unchanged.
//!
//! The only restriction left is *within* one op: an op may not write a
//! region that overlaps its own reads (in-place self-multiplication has
//! no sequential meaning in the model). Reading elsewhere in the buffer
//! it writes — a Schur-complement update streaming the pivot panel of
//! the very matrix it updates — is fine.

use std::collections::HashMap;
use tcu_core::TensorOp;

/// Handle to a logical buffer registered with [`OpGraph::buffer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// Position of the buffer in its graph's registration order.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A rectangle of a logical buffer: what one op operand occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperandRef {
    /// The buffer the region lives in.
    pub buf: BufferId,
    /// First row of the region.
    pub r0: usize,
    /// First column of the region.
    pub c0: usize,
    /// Region height.
    pub rows: usize,
    /// Region width.
    pub cols: usize,
}

impl OperandRef {
    /// The `rows × cols` region of `buf` anchored at `(r0, c0)`.
    #[must_use]
    pub fn new(buf: BufferId, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        Self {
            buf,
            r0,
            c0,
            rows,
            cols,
        }
    }

    /// `true` iff the two regions share at least one element.
    #[must_use]
    pub fn overlaps(&self, other: &OperandRef) -> bool {
        self.buf == other.buf
            && self.r0 < other.r0 + other.rows
            && other.r0 < self.r0 + self.rows
            && self.c0 < other.c0 + other.cols
            && other.c0 < self.c0 + self.cols
    }
}

/// One recorded tensor op: the descriptor, its operand regions, and the
/// buffer generations the operands resolved against at record time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Node {
    /// The instruction descriptor (shapes, accumulate flag, pad policy).
    pub op: TensorOp,
    /// Left operand region (`op.rows × op.inner`).
    pub a: OperandRef,
    /// Right operand region (`op.inner × op.width`).
    pub b: OperandRef,
    /// Destination region (`op.rows × op.width`), overwritten or
    /// accumulated into per `op.accumulate`.
    pub out: OperandRef,
    /// Generation of `a` at record time: prior recorded writes
    /// overlapping the region.
    pub a_gen: u32,
    /// Generation of `b` at record time.
    pub b_gen: u32,
    /// Generation of `out` this write supersedes (the write itself
    /// creates generation `out_gen + 1` of the covered rectangle).
    pub out_gen: u32,
}

impl Node {
    /// `true` iff executing the two nodes in either order could differ:
    /// one's write rectangle intersects something the other touches.
    #[must_use]
    pub fn conflicts(&self, other: &Node) -> bool {
        self.out.overlaps(&other.a)
            || self.out.overlaps(&other.b)
            || self.out.overlaps(&other.out)
            || self.a.overlaps(&other.out)
            || self.b.overlaps(&other.out)
    }

    /// Total order used wherever independent nodes need a canonical
    /// sequence (within-level schedule order, merge-scan order): every
    /// field of the node — regions, generations, descriptor — so two
    /// nodes compare equal only when they are the same instruction on
    /// the same data version, in which case their order is immaterial.
    /// Crucially *not* the recording index, which is what makes
    /// schedules invariant under dependency-respecting shuffles of the
    /// recording order.
    #[must_use]
    pub fn canonical_key(&self) -> impl Ord {
        (
            self.out,
            self.a,
            self.b,
            op_key(&self.op),
            self.a_gen,
            self.b_gen,
            self.out_gen,
        )
    }
}

/// `TensorOp` as an orderable tuple (the descriptor derives no `Ord`).
fn op_key(op: &TensorOp) -> (usize, usize, usize, bool, u8) {
    (
        op.rows,
        op.inner,
        op.width,
        op.accumulate,
        matches!(op.pad, tcu_core::PadPolicy::ZeroPad).into(),
    )
}

/// Shape of a registered logical buffer, plus whether any recorded op
/// writes it (written buffers must be bound mutably at run time; the
/// versioned graph accepts buffers that are read, written, or both).
#[derive(Clone, Debug)]
pub(crate) struct BufferInfo {
    pub(crate) name: String,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) written: bool,
}

/// A recorded stream of tensor ops over named logical buffers, with
/// dependencies inferred from operand-region overlap and per-region
/// write generations tracked as the stream is recorded.
#[derive(Clone, Debug, Default)]
pub struct OpGraph {
    pub(crate) buffers: Vec<BufferInfo>,
    pub(crate) nodes: Vec<Node>,
    /// Per-buffer index of the write regions recorded so far, for the
    /// near-linear generation lookups `record` performs.
    write_index: Vec<RegionBuckets>,
}

impl OpGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a `rows × cols` logical buffer under `name` (names are
    /// diagnostic only; identity is the returned id).
    pub fn buffer(&mut self, name: &str, rows: usize, cols: usize) -> BufferId {
        self.buffers.push(BufferInfo {
            name: name.to_string(),
            rows,
            cols,
            written: false,
        });
        self.write_index.push(RegionBuckets::default());
        BufferId(self.buffers.len() - 1)
    }

    /// Number of registered buffers.
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Diagnostic name of a buffer.
    ///
    /// # Panics
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn buffer_name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    /// Shape of a buffer.
    ///
    /// # Panics
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn buffer_shape(&self, id: BufferId) -> (usize, usize) {
        let b = &self.buffers[id.0];
        (b.rows, b.cols)
    }

    /// `true` iff any recorded op writes into the buffer (such buffers
    /// must be bound mutably at run time; reads of them resolve against
    /// the generation recorded per op).
    ///
    /// # Panics
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn buffer_written(&self, id: BufferId) -> bool {
        self.buffers[id.0].written
    }

    /// Current write generation of a region: how many recorded writes
    /// overlap it. The generation the next op reading `r` would record.
    ///
    /// # Panics
    /// Panics if the region is out of bounds or from another graph.
    #[must_use]
    pub fn generation(&self, r: &OperandRef) -> u32 {
        self.check_region(r, "generation query");
        self.write_index[r.buf.0].count_overlapping(r)
    }

    /// Record one op reading `a`/`b` and writing `out`. Recording order
    /// is program order: conflicting ops keep it, independent ops may be
    /// reordered and coalesced by the scheduler. Reads of regions
    /// earlier ops wrote are welcome — each operand resolves against the
    /// write generation live at this point of the recording, and the
    /// inferred RAW hazard orders the read after its producers.
    ///
    /// # Panics
    /// Panics if a region is out of its buffer's bounds, if a region
    /// shape disagrees with the descriptor, or if `out` overlaps `a` or
    /// `b` (an op may read the buffer it writes — a pipeline — but not
    /// the very rectangle it is writing).
    pub fn record(&mut self, op: TensorOp, a: OperandRef, b: OperandRef, out: OperandRef) -> usize {
        self.check_region(&a, "left operand");
        self.check_region(&b, "right operand");
        self.check_region(&out, "output");
        assert_eq!(
            (a.rows, a.cols),
            (op.rows, op.inner),
            "left region must be rows × inner"
        );
        assert_eq!(
            (b.rows, b.cols),
            (op.inner, op.width),
            "right region must be inner × width"
        );
        assert_eq!(
            (out.rows, out.cols),
            (op.rows, op.width),
            "output region must be rows × width"
        );
        assert!(
            !out.overlaps(&a) && !out.overlaps(&b),
            "an op may not write a region overlapping its own reads \
             (in-place self-multiplication is not a sequential program)"
        );
        let a_gen = self.write_index[a.buf.0].count_overlapping(&a);
        let b_gen = self.write_index[b.buf.0].count_overlapping(&b);
        let out_gen = self.write_index[out.buf.0].count_overlapping(&out);
        self.buffers[out.buf.0].written = true;
        self.write_index[out.buf.0].insert(&out);
        self.nodes.push(Node {
            op,
            a,
            b,
            out,
            a_gen,
            b_gen,
            out_gen,
        });
        self.nodes.len() - 1
    }

    /// Structural shape-hash of the recorded stream: equal for two
    /// graphs that differ only in buffer *names* or in any
    /// dependency-respecting shuffle of the recording order, different
    /// whenever a buffer shape, an operand rectangle, an op descriptor,
    /// or the hazard/generation structure differs.
    ///
    /// Buffers contribute `(rows, cols, written)` in registration order
    /// (names erased); nodes contribute their [`Node::canonical_key`]
    /// fields *sorted*, so recording order drops out — and because
    /// region generations count overlapping earlier writes, they are
    /// themselves invariant under dependency-respecting shuffles, which
    /// makes the sorted key multiset a faithful fingerprint of the
    /// dependency structure. Two graphs with equal hashes plan to the
    /// same [`crate::Schedule`] (modulo buffer identity), which is what
    /// lets a plan cache share one memoized schedule across equal-shape
    /// stages regardless of how callers named or ordered their streams.
    #[must_use]
    pub fn shape_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut keys: Vec<_> = self
            .nodes
            .iter()
            .map(|n| (n.out, n.a, n.b, op_key(&n.op), n.a_gen, n.b_gen, n.out_gen))
            .collect();
        keys.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.buffers.len().hash(&mut h);
        for b in &self.buffers {
            (b.rows, b.cols, b.written).hash(&mut h);
        }
        keys.hash(&mut h);
        h.finish()
    }

    /// Exact shape equality — the relation [`Self::shape_hash`]
    /// abstracts: same buffer count with the same `(rows, cols,
    /// written)` per id (names ignored) and the same *sorted* canonical
    /// node-key multiset (recording order erased, exactly like the
    /// hash; generations pin every hazard-ordered pair, so equal
    /// multisets plan identically — the shuffle-invariance property the
    /// determinism proptests pin). Plan caches use this as the
    /// collision-proof verifier before sharing a memoized schedule: a
    /// hash collision between unequal graphs degrades to a cache miss,
    /// never to a wrong plan.
    #[must_use]
    pub fn shape_eq(&self, other: &Self) -> bool {
        if self.buffers.len() != other.buffers.len() || self.nodes.len() != other.nodes.len() {
            return false;
        }
        let buffers_eq = self
            .buffers
            .iter()
            .zip(&other.buffers)
            .all(|(a, b)| (a.rows, a.cols, a.written) == (b.rows, b.cols, b.written));
        if !buffers_eq {
            return false;
        }
        let keys = |g: &Self| {
            let mut v: Vec<_> = g
                .nodes
                .iter()
                .map(|n| (n.out, n.a, n.b, op_key(&n.op), n.a_gen, n.b_gen, n.out_gen))
                .collect();
            v.sort_unstable();
            v
        };
        keys(self) == keys(other)
    }

    /// The recorded nodes, in program (recording) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of recorded ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn check_region(&self, r: &OperandRef, what: &str) {
        let info = self
            .buffers
            .get(r.buf.0)
            .unwrap_or_else(|| panic!("{what}: unknown buffer id"));
        assert!(
            r.r0 + r.rows <= info.rows && r.c0 + r.cols <= info.cols,
            "{what}: region exceeds buffer '{}' ({} × {})",
            info.name,
            info.rows,
            info.cols
        );
    }
}

/// Most grid cells one region may enumerate before the index treats it
/// as *oversize* and handles it by exact linear scan instead. Bounds
/// the worst case of mismatched extents (a tiny first region fixing a
/// tiny cell size, then a huge region arriving) at a constant, without
/// giving up exactness: oversize regions are simply checked against
/// everything, and everything checks against them.
const MAX_COVERED_CELLS: usize = 4096;

/// A spatial index over rectangles of one buffer: regions are hashed
/// into a uniform grid of cells sized to the first inserted region, so
/// overlap queries touch only the candidates sharing a cell instead of
/// every region ever inserted. For the disjoint, uniformly-sized
/// streams the blocked algorithms record, insert and query are O(cells
/// covered) — constant per op — which is what keeps both `record`'s
/// generation lookups and the planner's hazard build near-linear.
/// Regions spanning more than [`MAX_COVERED_CELLS`] cells fall back to
/// an exact linear overflow list, so adversarially mixed extents
/// degrade gracefully instead of enumerating millions of cells.
#[derive(Clone, Debug, Default)]
pub(crate) struct RegionBuckets {
    cell: Option<(usize, usize)>,
    cells: HashMap<(usize, usize), Vec<u32>>,
    /// Regions too large for the grid, matched by exact scan.
    oversize: Vec<u32>,
    regions: Vec<OperandRef>,
}

impl RegionBuckets {
    /// Number of grid cells `r` covers under cell size `(ch, cw)`.
    fn covered_count(r: &OperandRef, (ch, cw): (usize, usize)) -> usize {
        let rows = (r.r0 + r.rows.saturating_sub(1)) / ch - r.r0 / ch + 1;
        let cols = (r.c0 + r.cols.saturating_sub(1)) / cw - r.c0 / cw + 1;
        rows.saturating_mul(cols)
    }

    /// Grid cells covered by `r` under cell size `(ch, cw)`.
    fn covered(
        r: &OperandRef,
        (ch, cw): (usize, usize),
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        let rows = r.r0 / ch..=(r.r0 + r.rows.saturating_sub(1)) / ch;
        rows.flat_map(move |i| {
            (r.c0 / cw..=(r.c0 + r.cols.saturating_sub(1)) / cw).map(move |j| (i, j))
        })
    }

    /// Add a region to the index.
    pub(crate) fn insert(&mut self, r: &OperandRef) {
        if r.rows == 0 || r.cols == 0 {
            return;
        }
        let cell = *self.cell.get_or_insert((r.rows, r.cols));
        let id = self.regions.len() as u32;
        self.regions.push(*r);
        if Self::covered_count(r, cell) > MAX_COVERED_CELLS {
            self.oversize.push(id);
            return;
        }
        for c in Self::covered(r, cell) {
            self.cells.entry(c).or_default().push(id);
        }
    }

    /// Number of indexed regions overlapping `r`.
    pub(crate) fn count_overlapping(&self, r: &OperandRef) -> u32 {
        let Some(cell) = self.cell else {
            return 0;
        };
        if r.rows == 0 || r.cols == 0 {
            return 0;
        }
        if Self::covered_count(r, cell) > MAX_COVERED_CELLS {
            // Oversize query: exact scan over everything beats walking
            // millions of cells.
            return self.regions.iter().filter(|q| q.overlaps(r)).count() as u32;
        }
        let mut candidates: Vec<u32> = Self::covered(r, cell)
            .filter_map(|c| self.cells.get(&c))
            .flatten()
            .chain(&self.oversize)
            .copied()
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .filter(|&id| self.regions[id as usize].overlaps(r))
            .count() as u32
    }
}

/// Directed hazard edges over a node list: `succs[i]` holds every later
/// node that conflicts with node `i` (program order orients each pair).
///
/// Built through a per-buffer grid index rather than the all-pairs scan:
/// operand occurrences are bucketed by the cells they cover, buffers
/// nothing writes are skipped outright (reads alone never conflict), and
/// candidate pairs are only the write–write and write–read occupants of
/// a shared cell, confirmed by the exact rectangle test. For the
/// disjoint-region streams the blocked algorithms emit this is
/// near-linear in recorded ops plus true conflicts — the planning-cost
/// fix the ROADMAP asked for — and it is exact: the candidate set of a
/// cell always contains every genuinely overlapping pair.
#[must_use]
pub(crate) fn hazard_successors(nodes: &[Node]) -> Vec<Vec<usize>> {
    // Operand occurrences per buffer: (node, region, is_write).
    let mut per_buf: HashMap<usize, Vec<(u32, OperandRef, bool)>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        let i = i as u32;
        per_buf.entry(n.a.buf.0).or_default().push((i, n.a, false));
        per_buf.entry(n.b.buf.0).or_default().push((i, n.b, false));
        per_buf
            .entry(n.out.buf.0)
            .or_default()
            .push((i, n.out, true));
    }
    let mut succs = vec![Vec::new(); nodes.len()];
    let mut edge = |x: u32, y: u32| {
        if x != y {
            let (i, j) = (x.min(y) as usize, x.max(y) as usize);
            succs[i].push(j);
        }
    };
    for entries in per_buf.into_values() {
        if !entries.iter().any(|e| e.2) {
            continue;
        }
        let cell = entries
            .iter()
            .filter(|e| e.1.rows > 0 && e.1.cols > 0)
            .map(|e| (e.1.rows, e.1.cols))
            .fold((usize::MAX, usize::MAX), |(h, w), (rh, rw)| {
                (h.min(rh), w.min(rw))
            });
        if cell.0 == usize::MAX {
            continue;
        }
        // Bucket writes and reads separately per cell: read–read pairs
        // can never conflict, so they are never even enumerated. An
        // entry spanning more than MAX_COVERED_CELLS cells (possible
        // when extents are wildly mixed and the min-dims cell is tiny)
        // skips the grid and is paired against every entry exactly —
        // bounded degradation instead of cell-enumeration blow-up.
        let mut cells: HashMap<(usize, usize), (Vec<usize>, Vec<usize>)> = HashMap::new();
        let mut oversize: Vec<usize> = Vec::new();
        for (e, entry) in entries.iter().enumerate() {
            if entry.1.rows == 0 || entry.1.cols == 0 {
                continue;
            }
            if RegionBuckets::covered_count(&entry.1, cell) > MAX_COVERED_CELLS {
                oversize.push(e);
                continue;
            }
            for c in RegionBuckets::covered(&entry.1, cell) {
                let slot = cells.entry(c).or_default();
                if entry.2 {
                    slot.0.push(e);
                } else {
                    slot.1.push(e);
                }
            }
        }
        for &o in &oversize {
            let (on, or_, o_write) = entries[o];
            for &(en, er, e_write) in &entries {
                // Self-pairs are dropped by `edge`; duplicate pairs are
                // canonicalized by the final sort+dedup.
                if (o_write || e_write) && or_.overlaps(&er) {
                    edge(on, en);
                }
            }
        }
        for (writes, reads) in cells.into_values() {
            for (wi, &w) in writes.iter().enumerate() {
                let (wn, wr, _) = entries[w];
                for &w2 in &writes[wi + 1..] {
                    let (on, or, _) = entries[w2];
                    if wr.overlaps(&or) {
                        edge(wn, on);
                    }
                }
                for &r in &reads {
                    let (rn, rr, _) = entries[r];
                    if wr.overlaps(&rr) {
                        edge(wn, rn);
                    }
                }
            }
        }
    }
    // A pair sharing several cells is found several times; canonicalize.
    for s in &mut succs {
        s.sort_unstable();
        s.dedup();
    }
    succs
}

/// Dependency depth of every node: 0 for sources, else one more than
/// the deepest conflicting predecessor. Depends only on the conflict
/// structure, so it is invariant under dependency-respecting shuffles
/// of the recording order.
#[must_use]
pub(crate) fn levels(nodes: &[Node], succs: &[Vec<usize>]) -> Vec<usize> {
    let mut level = vec![0usize; nodes.len()];
    for i in 0..nodes.len() {
        for &j in &succs[i] {
            level[j] = level[j].max(level[i] + 1);
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn padded(rows: usize, inner: usize, width: usize, acc: bool) -> TensorOp {
        TensorOp {
            accumulate: acc,
            ..TensorOp::padded(rows, inner, width)
        }
    }

    /// The exact quadratic reference the bucket index must agree with.
    fn hazard_successors_naive(nodes: &[Node]) -> Vec<Vec<usize>> {
        let mut succs = vec![Vec::new(); nodes.len()];
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                if nodes[i].conflicts(&nodes[j]) {
                    succs[i].push(j);
                }
            }
        }
        succs
    }

    #[test]
    fn regions_overlap_only_within_a_buffer() {
        let mut g = OpGraph::new();
        let x = g.buffer("x", 8, 8);
        let y = g.buffer("y", 8, 8);
        let r = |b, r0, c0| OperandRef::new(b, r0, c0, 4, 4);
        assert!(r(x, 0, 0).overlaps(&r(x, 3, 3)));
        assert!(!r(x, 0, 0).overlaps(&r(x, 4, 0)));
        assert!(!r(x, 0, 0).overlaps(&r(x, 0, 4)));
        assert!(!r(x, 0, 0).overlaps(&r(y, 0, 0)));
        assert_eq!(g.buffer_name(y), "y");
        assert_eq!(g.buffer_shape(x), (8, 8));
    }

    #[test]
    fn hazards_order_conflicting_ops_and_free_independent_ones() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 8);
        let c = g.buffer("c", 8, 8);
        let op = padded(8, 4, 4, true);
        let areg = OperandRef::new(a, 0, 0, 8, 4);
        // Two accumulates into the same block: ordered. A third into a
        // disjoint block: free.
        g.record(
            op,
            areg,
            OperandRef::new(b, 0, 0, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
        g.record(
            op,
            areg,
            OperandRef::new(b, 0, 4, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
        g.record(
            op,
            areg,
            OperandRef::new(b, 0, 4, 4, 4),
            OperandRef::new(c, 0, 4, 8, 4),
        );
        let succs = hazard_successors(g.nodes());
        assert_eq!(succs[0], vec![1]);
        assert!(succs[1].is_empty() && succs[2].is_empty());
        assert_eq!(levels(g.nodes(), &succs), vec![0, 1, 0]);
        // The two writes to the same rectangle carry successive
        // generations; the disjoint third write starts fresh.
        let gens: Vec<u32> = g.nodes().iter().map(|n| n.out_gen).collect();
        assert_eq!(gens, vec![0, 1, 0]);
    }

    #[test]
    fn bucket_index_matches_the_quadratic_scan() {
        // Mixed region sizes, shared cells, a read-write buffer, and a
        // couple of pipeline hops — every structural case at once.
        let mut g = OpGraph::new();
        let x = g.buffer("x", 32, 32);
        let w = g.buffer("w", 32, 32);
        let p = g.buffer("p", 32, 32);
        for (k, (ar, ac, or, oc, rows)) in [
            (0usize, 0usize, 0usize, 8usize, 8usize),
            (0, 0, 8, 8, 8),
            (8, 0, 0, 16, 16),
            (0, 8, 16, 0, 8),
            (0, 16, 8, 8, 24),
            (4, 0, 24, 24, 8),
        ]
        .into_iter()
        .enumerate()
        {
            let op = padded(rows, 4, 4, k.is_multiple_of(2));
            g.record(
                op,
                OperandRef::new(x, ar, ac, rows, 4),
                OperandRef::new(w, (k * 4) % 16, 0, 4, 4),
                OperandRef::new(if k.is_multiple_of(3) { x } else { p }, or, oc, rows, 4),
            );
        }
        assert_eq!(
            hazard_successors(g.nodes()),
            hazard_successors_naive(g.nodes())
        );
    }

    #[test]
    fn oversize_regions_fall_back_to_exact_scans() {
        // A 1×1 write fixes the output buffer's grid cell at 1×1, so
        // the whole-buffer write that follows would cover 512² cells —
        // it must take the oversize path (and the later read must find
        // both writes by exact scan) without walking the grid.
        let d = 512usize;
        let mut g = OpGraph::new();
        let x = g.buffer("x", d, d);
        let w = g.buffer("w", d, d);
        let o = g.buffer("o", d, d);
        let whole = |b| OperandRef::new(b, 0, 0, d, d);
        g.record(
            padded(1, 1, 1, false),
            OperandRef::new(x, 0, 0, 1, 1),
            OperandRef::new(w, 0, 0, 1, 1),
            OperandRef::new(o, 0, 0, 1, 1),
        );
        g.record(padded(d, d, d, false), whole(x), whole(w), whole(o));
        let i = g.record(
            padded(1, 1, 1, false),
            OperandRef::new(o, 3, 3, 1, 1),
            OperandRef::new(w, 0, 0, 1, 1),
            OperandRef::new(x, 9, 9, 1, 1),
        );
        // The pipeline read of o at (3,3) saw both the tiny write (no —
        // disjoint) and the whole-buffer write: generation 1.
        assert_eq!(g.nodes()[i].a_gen, 1);
        assert_eq!(g.generation(&OperandRef::new(o, 0, 0, 1, 1)), 2);
        assert_eq!(
            hazard_successors(g.nodes()),
            hazard_successors_naive(g.nodes())
        );
    }

    #[test]
    fn generations_count_overlapping_writes_only() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 8);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 8, 8);
        let d = g.buffer("d", 8, 8);
        let half = |buf, c0| OperandRef::new(buf, 0, c0, 8, 4);
        let wb = OperandRef::new(b, 0, 0, 4, 4);
        // Write c[:,0..4], then c[:,4..8]: disjoint, both generation 0.
        g.record(padded(8, 4, 4, false), half(a, 0), wb, half(c, 0));
        g.record(padded(8, 4, 4, false), half(a, 4), wb, half(c, 4));
        // Read c[:,0..4] (one overlapping write → gen 1), write d.
        let i = g.record(padded(8, 4, 4, false), half(c, 0), wb, half(d, 0));
        assert_eq!(g.nodes()[i].a_gen, 1);
        // Overwrite c[:,0..4] again: supersedes generation 1.
        let i = g.record(padded(8, 4, 4, false), half(a, 0), wb, half(c, 0));
        assert_eq!(g.nodes()[i].out_gen, 1);
        // A later read of the re-written half sees generation 2; the
        // untouched half still reads generation 0.
        let i = g.record(padded(8, 4, 4, false), half(c, 0), wb, half(d, 4));
        assert_eq!(g.nodes()[i].a_gen, 2);
        assert_eq!(g.generation(&half(c, 4)), 1);
        assert_eq!(g.generation(&half(a, 0)), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn out_of_bounds_region_rejected() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 8, 4);
        g.record(
            padded(8, 4, 4, false),
            OperandRef::new(a, 1, 0, 8, 4),
            OperandRef::new(b, 0, 0, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
    }

    #[test]
    fn reading_a_written_buffer_forms_a_pipeline() {
        // The RAW pipeline the pre-versioned graph rejected: stage one
        // writes C, stage two streams C against fresh weights into D.
        // Hazards order the stages; the read resolves at generation 1.
        let mut g = OpGraph::new();
        let a = g.buffer("a", 4, 4);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 4, 4);
        let d = g.buffer("d", 4, 4);
        let whole = |buf| OperandRef::new(buf, 0, 0, 4, 4);
        g.record(padded(4, 4, 4, false), whole(a), whole(b), whole(c));
        let i = g.record(padded(4, 4, 4, false), whole(c), whole(b), whole(d));
        assert_eq!(g.nodes()[i].a_gen, 1, "read resolves after the write");
        assert!(g.buffer_written(c) && !g.buffer_written(a));
        let succs = hazard_successors(g.nodes());
        assert_eq!(succs[0], vec![1], "RAW hazard orders the stages");
        assert_eq!(levels(g.nodes(), &succs), vec![0, 1]);
    }

    #[test]
    fn pipeline_may_update_the_buffer_it_streams() {
        // The Schur-complement shape: stream the pivot panel of X while
        // accumulating into a disjoint column of the same buffer.
        let mut g = OpGraph::new();
        let x = g.buffer("x", 8, 8);
        let w = g.buffer("w", 4, 4);
        let panel = OperandRef::new(x, 4, 0, 4, 4);
        let out = OperandRef::new(x, 4, 4, 4, 4);
        g.record(
            padded(4, 4, 4, true),
            panel,
            OperandRef::new(w, 0, 0, 4, 4),
            out,
        );
        let n = &g.nodes()[0];
        assert_eq!((n.a_gen, n.out_gen), (0, 0));
        assert!(g.buffer_written(x));
    }

    #[test]
    #[should_panic(expected = "overlapping its own reads")]
    fn in_place_self_multiplication_rejected() {
        let mut g = OpGraph::new();
        let x = g.buffer("x", 4, 4);
        let b = g.buffer("b", 4, 4);
        let whole = OperandRef::new(x, 0, 0, 4, 4);
        g.record(
            padded(4, 4, 4, false),
            whole,
            OperandRef::new(b, 0, 0, 4, 4),
            whole,
        );
    }

    #[test]
    #[should_panic(expected = "rows × inner")]
    fn region_shape_must_match_descriptor() {
        let mut g = OpGraph::new();
        let a = g.buffer("a", 8, 4);
        let b = g.buffer("b", 4, 4);
        let c = g.buffer("c", 8, 4);
        g.record(
            padded(8, 4, 4, false),
            OperandRef::new(a, 0, 0, 4, 4),
            OperandRef::new(b, 0, 0, 4, 4),
            OperandRef::new(c, 0, 0, 8, 4),
        );
    }
}
