//! Schedule execution: bind data to the graph's logical buffers and
//! drive the planned op stream through a [`TcuMachine`] — or across the
//! units of a [`ParallelTcuMachine`].
//!
//! [`ExecEnv`] maps every [`BufferId`] to real storage — immutable
//! [`MatrixView`]s for buffers the graph only reads, mutable views for
//! buffers it writes — and [`Schedule::run`] issues the emitted nodes
//! in serial order through [`TcuMachine::issue_into_tagged`]. Each left
//! operand is tagged with an [`OperandId`] whose generation combines a
//! process-unique stamp (the environment's *epoch* for frozen
//! input-bound reads, a fresh per-run stamp for reads of written
//! buffers — see `TagStamps`) with the operand's emission-order content
//! version from the schedule — so a pack-caching executor reuses packed
//! strips across every invocation that streams the same region *at the
//! same version*, a write in a pipeline retires the stale strip (its
//! readers carry the bumped generation), and re-running a schedule
//! against mutated outputs can never be served last run's bytes.
//!
//! # Reading written buffers (pipelines)
//!
//! A versioned graph may read regions of buffers it also writes — the
//! Schur-complement update streaming the pivot panel of the matrix it
//! updates, or a second pipeline stage consuming the first stage's
//! product. Such reads are *staged*: the runtime snapshots the region
//! once per `(region, generation)` into a run-local buffer and streams
//! the snapshot. The snapshot is taken when execution first reaches a
//! read of that version, which the hazard order guarantees is after
//! exactly the writes the version names — and it is taken once, not per
//! op, so a pivot panel re-streamed against every block column costs
//! one gather per stage, the same marshalling the eager blocked
//! algorithms perform. (Simulated cost is untouched either way: in the
//! model, operand marshalling is covered by the invocation charge.)
//!
//! Accounting flows through the machine exactly as eager execution
//! does: per-op model charges into `Stats` and the trace. What changes
//! with scheduling is *which* (coalesced) ops are issued and in what
//! (canonical) order — never how an issued op is charged.
//!
//! # Multi-unit execution
//!
//! [`Schedule::run_parallel`] consumes [`Schedule::wave_partitions`]
//! directly: every wave's invocations are issued on the units the
//! planner's LPT partition assigned them to (each unit owning its own
//! executor, hence its own pack cache), and the machine's wall-clock
//! advances by one makespan per wave. Numerics still execute in the
//! schedule's canonical serial order — waves hold only independent ops,
//! so this equals any true interleaving — which keeps multi-unit runs
//! bit-identical to serial runs and to each other for every unit count.

use crate::graph::{BufferId, OperandRef};
use crate::scheduler::Schedule;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tcu_core::{Executor, OperandId, ParallelTcuMachine, TcuMachine, TensorUnit};
use tcu_linalg::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// Process-wide epoch allocator: every environment gets a distinct
/// stamp, so operand tags from different environments (different data)
/// can never collide in an executor cache.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Data bindings for one run of a schedule: per-buffer views, split
/// into read-only inputs and mutable (written, possibly also read)
/// outputs.
#[derive(Debug)]
pub struct ExecEnv<'a, T: Scalar> {
    epoch: u64,
    shapes: Vec<(usize, usize)>,
    written: Vec<bool>,
    inputs: Vec<Option<MatrixView<'a, T>>>,
    outputs: Vec<Option<MatrixViewMut<'a, T>>>,
}

/// Key of one staged read snapshot: buffer, rectangle, content version.
type StageKey = (usize, usize, usize, usize, usize, u32);

impl<'a, T: Scalar> ExecEnv<'a, T> {
    /// Fresh bindings for `graph`'s buffers (all unbound, new epoch).
    #[must_use]
    pub fn new(graph: &crate::OpGraph) -> Self {
        let shapes = (0..graph.buffer_count())
            .map(|i| graph.buffer_shape(BufferId(i)))
            .collect::<Vec<_>>();
        let written = (0..graph.buffer_count())
            .map(|i| graph.buffer_written(BufferId(i)))
            .collect::<Vec<_>>();
        Self {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            inputs: vec![None; shapes.len()],
            outputs: shapes.iter().map(|_| None).collect(),
            written,
            shapes,
        }
    }

    /// The environment's cache-key epoch (diagnostic).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bind a read-only buffer to a view of its exact registered shape.
    ///
    /// # Panics
    /// Panics on shape mismatch, an id from another graph, or a buffer
    /// the graph writes (written buffers need [`Self::bind_output`], and
    /// reads of them resolve against per-op generations).
    pub fn bind_input(&mut self, id: BufferId, view: MatrixView<'a, T>) {
        assert_eq!(
            (view.rows(), view.cols()),
            self.shapes[id.0],
            "input binding shape mismatch"
        );
        assert!(
            !self.written[id.0],
            "buffer {} is written by the graph; bind it mutably with bind_output",
            id.0
        );
        self.inputs[id.0] = Some(view);
    }

    /// Bind a written buffer to a mutable view of its registered shape.
    /// Reads the graph performs on the same buffer (pipelines) are
    /// served from generation-keyed snapshots of this binding.
    ///
    /// # Panics
    /// Panics on shape mismatch or an id from another graph.
    pub fn bind_output(&mut self, id: BufferId, view: MatrixViewMut<'a, T>) {
        assert_eq!(
            (view.rows(), view.cols()),
            self.shapes[id.0],
            "output binding shape mismatch"
        );
        self.outputs[id.0] = Some(view);
    }

    /// Snapshot `region` at content version `gen` into `staged` if a
    /// read of it must be served from a written buffer and no snapshot
    /// of that version exists yet. `host` is the current op's output
    /// binding, temporarily moved out of `self.outputs` (the
    /// same-buffer read-while-write case reads through it).
    fn ensure_staged(
        &self,
        staged: &mut HashMap<StageKey, Matrix<T>>,
        region: &OperandRef,
        gen: u32,
        out_buf: usize,
        host: &MatrixViewMut<'_, T>,
    ) {
        let buf = region.buf.0;
        if self.inputs[buf].is_some() {
            return;
        }
        let key = stage_key(region, gen);
        if staged.contains_key(&key) {
            return;
        }
        let src = if buf == out_buf {
            host.as_view()
        } else {
            self.outputs[buf]
                .as_ref()
                .unwrap_or_else(|| panic!("buffer {buf} read but not bound as input or output"))
                .as_view()
        };
        let snap = src
            .subview(region.r0, region.c0, region.rows, region.cols)
            .to_matrix();
        staged.insert(key, snap);
    }

    /// Snapshot `region` at content version `gen` if it reads a written
    /// buffer and no snapshot of that version exists yet — the wave
    /// driver's staging pass. Unlike [`Self::ensure_staged`], no output
    /// binding has been moved out when this runs, so same-buffer reads
    /// go straight through the bound view. Waves never read a region a
    /// same-wave op writes (hazards split them into different waves), so
    /// staging a whole wave up front sees exactly the bytes per-op lazy
    /// staging would.
    fn stage_region(
        &self,
        staged: &mut HashMap<StageKey, Matrix<T>>,
        region: &OperandRef,
        gen: u32,
    ) {
        let buf = region.buf.0;
        if self.inputs[buf].is_some() {
            return;
        }
        let key = stage_key(region, gen);
        if staged.contains_key(&key) {
            return;
        }
        let snap = self.outputs[buf]
            .as_ref()
            .unwrap_or_else(|| panic!("buffer {buf} read but not bound as input or output"))
            .as_view()
            .subview(region.r0, region.c0, region.rows, region.cols)
            .to_matrix();
        staged.insert(key, snap);
    }

    /// The view a read operand streams from: the bound input region
    /// (zero-copy), or the staged snapshot of the named version.
    fn read_region<'s>(
        &'s self,
        staged: &'s HashMap<StageKey, Matrix<T>>,
        region: &OperandRef,
        gen: u32,
    ) -> MatrixView<'s, T> {
        match self.inputs[region.buf.0].as_ref() {
            Some(v) => v.subview(region.r0, region.c0, region.rows, region.cols),
            None => staged
                .get(&stage_key(region, gen))
                .expect("snapshot staged before use")
                .view(),
        }
    }

    /// Resolve one emitted node's operands for issue: move its output
    /// binding out of the environment (the caller hands it back after
    /// issuing), snapshot any written-buffer reads at their versions,
    /// and build the left operand's cache tag. The staging/tagging
    /// protocol lives here, once, for both [`Schedule::run`] and
    /// [`Schedule::run_parallel`].
    #[allow(clippy::type_complexity)]
    fn prepare_node<'s>(
        &'s mut self,
        staged: &'s mut HashMap<StageKey, Matrix<T>>,
        stamps: &TagStamps,
        sn: &crate::ScheduledNode,
    ) -> (
        MatrixView<'s, T>,
        MatrixView<'s, T>,
        OperandId,
        MatrixViewMut<'a, T>,
    ) {
        let node = &sn.node;
        let out_buf = node.out.buf.0;
        let host = self.outputs[out_buf].take().unwrap_or_else(|| {
            panic!("buffer {out_buf} written but not bound as output");
        });
        self.ensure_staged(staged, &node.a, sn.a_gen, out_buf, &host);
        self.ensure_staged(staged, &node.b, sn.b_gen, out_buf, &host);
        let a = self.read_region(staged, &node.a, sn.a_gen);
        let b = self.read_region(staged, &node.b, sn.b_gen);
        let input_bound = self.inputs[node.a.buf.0].is_some();
        let tag = operand_tag(stamps, input_bound, &node.a, sn.a_gen);
        (a, b, tag, host)
    }
}

fn stage_key(r: &OperandRef, gen: u32) -> StageKey {
    (r.buf.0, r.r0, r.c0, r.rows, r.cols, gen)
}

/// Cache-tag stamps for one execution of a schedule.
///
/// A tag is sound only while equal tags guarantee equal bytes, so two
/// stamps with different lifetimes back the two read sources:
///
/// * **input-bound** buffers are borrowed, hence frozen, for the
///   environment's whole lifetime — their reads carry the environment
///   *epoch*, so packed strips survive across repeated runs of one
///   environment (the plan-once / run-many contract);
/// * **output-bound** buffers mutate as the schedule executes, and a
///   *second* run of the same environment starts from different bytes
///   (e.g. accumulates applied twice) at the same emission generations —
///   so their reads carry a fresh per-run stamp, retiring every strip
///   packed from written data when the run ends.
///
/// Both stamps are drawn from one process-wide counter, so they can
/// never collide with each other. The stamp occupies the upper 32 bits
/// of `OperandId::generation` (emission generation below): aliasing
/// would need 2³² environments+runs while a strip from the first still
/// sits in a bounded FIFO cache — noted here rather than guarded,
/// since the guard would be a panic after four billion runs.
struct TagStamps {
    epoch: u64,
    run: u64,
}

fn operand_tag(stamps: &TagStamps, input_bound: bool, region: &OperandRef, gen: u32) -> OperandId {
    let stamp = if input_bound {
        stamps.epoch
    } else {
        stamps.run
    };
    OperandId {
        buffer: region.buf.0 as u64,
        generation: stamp.wrapping_shl(32) | u64::from(gen),
        origin: (region.r0, region.c0),
        extent: (region.rows, region.cols),
    }
}

impl Schedule {
    /// Execute the planned stream on `mach` with `env`'s bindings: each
    /// emitted node issues one tagged tensor instruction (charged and
    /// traced by the machine exactly like an eager call), outputs land
    /// in the bound views. The serial order is the schedule's canonical
    /// order; on a pack-caching host executor, repeated left-operand
    /// regions are packed once per content version per environment.
    ///
    /// # Panics
    /// Panics if the machine's `√m` differs from the one the schedule
    /// was planned for, if the environment's buffer shapes disagree
    /// with the planned graph's, or if a referenced buffer is unbound.
    pub fn run<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut TcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        assert_eq!(
            mach.sqrt_m(),
            self.sqrt_m,
            "schedule was planned for a different tensor-unit size"
        );
        assert_eq!(
            env.shapes, self.buffer_shapes,
            "environment built for a different graph (buffer shapes disagree)"
        );
        let stamps = TagStamps {
            epoch: env.epoch,
            run: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        };
        let mut staged: HashMap<StageKey, Matrix<T>> = HashMap::new();
        for sn in self.nodes() {
            let node = &sn.node;
            let (a, b, tag, mut host) = env.prepare_node(&mut staged, &stamps, sn);
            let mut out_view =
                host.subview_mut(node.out.r0, node.out.c0, node.out.rows, node.out.cols);
            mach.issue_into_tagged(node.op, a, Some(tag), b, &mut out_view);
            env.outputs[node.out.buf.0] = Some(host);
        }
    }

    /// Execute the planned stream *across the units* of a parallel
    /// machine, consuming [`Schedule::wave_partitions`] directly — and,
    /// unlike the serial [`Schedule::run`], on real threads: each wave
    /// spawns one scoped worker per unit with work, running that unit's
    /// assigned ops on that unit's own executor (hence its own pack
    /// cache). Concurrency is safe by construction — ops sharing a wave
    /// never overlap in any written region, which a debug assertion
    /// re-verifies per wave — and deterministic by design:
    ///
    /// * **accounting** (per-op `Stats` charges and trace events) is
    ///   recorded on the main thread in the schedule's canonical order
    ///   *before* the wave's numerics run, exactly as a serial scheduled
    ///   run charges them; wall-clock advances by one makespan per wave,
    ///   so `mach.time()` lands on [`Schedule::makespan`] (plus scalar
    ///   work);
    /// * **numerics** land in per-op scratch buffers — pre-seeded with
    ///   the destination bytes for accumulating ops, so the kernel
    ///   performs the identical arithmetic on identical values — and the
    ///   main thread merges the disjoint results back in canonical
    ///   order, making elements bit-identical to [`Schedule::run`] for
    ///   every unit count;
    /// * **pack-cache counters** are per unit, and each worker consumes
    ///   its ops in canonical order, so every unit's executor sees the
    ///   exact op subsequence a serial placement-following run would —
    ///   cache stats cannot depend on thread interleaving.
    ///
    /// A wave whose work all lands on one unit runs inline on the
    /// calling thread (same executor, same order — only spawn overhead
    /// is saved).
    ///
    /// # Panics
    /// Panics if the machine's `√m` or unit count differs from what the
    /// schedule was planned for, if the machine's unit splits ops
    /// differently than the planning unit did (tall support must
    /// agree), if the environment's buffer shapes disagree with the
    /// planned graph's, if a referenced buffer is unbound, or if a
    /// worker thread panics.
    pub fn run_parallel<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        assert_eq!(
            mach.sqrt_m(),
            self.sqrt_m,
            "schedule was planned for a different tensor-unit size"
        );
        assert_eq!(
            mach.units(),
            self.units(),
            "schedule was planned for a different unit count"
        );
        assert_eq!(
            env.shapes, self.buffer_shapes,
            "environment built for a different graph (buffer shapes disagree)"
        );
        let stamps = TagStamps {
            epoch: env.epoch,
            run: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        };
        let mut staged: HashMap<StageKey, Matrix<T>> = HashMap::new();
        let nodes = self.nodes();
        let (mut start, mut wave) = (0usize, 0usize);
        while start < nodes.len() {
            let mut end = start + 1;
            while end < nodes.len() && nodes[end].level == nodes[start].level {
                end += 1;
            }
            self.run_wave(mach, env, &mut staged, &stamps, &nodes[start..end], wave);
            wave += 1;
            start = end;
        }
    }

    /// Execute one wave of independent ops across the machine's units.
    fn run_wave<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
        staged: &mut HashMap<StageKey, Matrix<T>>,
        stamps: &TagStamps,
        wave_nodes: &[crate::ScheduledNode],
        wave: usize,
    ) {
        if cfg!(debug_assertions) {
            assert_wave_outputs_disjoint(wave_nodes);
        }
        // Staging pass: snapshot every written-buffer read of the wave
        // before anything executes (see `stage_region` for why this
        // matches lazy per-op staging byte-for-byte).
        for sn in wave_nodes {
            env.stage_region(staged, &sn.node.a, sn.a_gen);
            env.stage_region(staged, &sn.node.b, sn.b_gen);
        }
        let staged = &*staged;

        // Charging + assembly pass, in canonical order: meter each op,
        // resolve its operand views and cache tag, and build its work
        // item on the unit the planner assigned its first invocation to.
        let s = mach.sqrt_m();
        let tall = mach.unit().supports_tall();
        let partition = &self.wave_partitions()[wave];
        let mut per_unit: Vec<Vec<WaveItem<'_, T>>> =
            (0..mach.units()).map(|_| Vec::new()).collect();
        let mut inv_at = 0usize;
        for (idx, sn) in wave_nodes.iter().enumerate() {
            let node = &sn.node;
            let invocations = if tall {
                1
            } else {
                node.op.charge_rows(s).div_ceil(s)
            };
            let unit = *partition.assignment.get(inv_at).unwrap_or_else(|| {
                panic!(
                    "machine splits ops differently than the schedule planned \
                     (tall-operand support must match the planning unit)"
                )
            });
            inv_at += invocations;

            let a = env.read_region(staged, &node.a, sn.a_gen);
            let b = env.read_region(staged, &node.b, sn.b_gen);
            assert!(
                node.op.matches((a.rows(), a.cols()), (b.rows(), b.cols())),
                "operands do not match the op descriptor"
            );
            let out = &node.out;
            assert_eq!(
                (out.rows, out.cols),
                (node.op.rows, node.op.width),
                "output region does not match the op descriptor"
            );
            let input_bound = env.inputs[node.a.buf.0].is_some();
            let tag = operand_tag(stamps, input_bound, &node.a, sn.a_gen);
            mach.charge_wave_op(&node.op);

            // Per-op scratch destination: zeros suffice for overwrite
            // ops (the kernel writes every element); accumulating ops
            // are seeded with the exact destination bytes, so running
            // the kernel on the scratch performs the identical
            // arithmetic an in-place accumulate would.
            let mut scratch = Matrix::<T>::zeros(node.op.rows, node.op.width);
            if node.op.accumulate {
                let host = env.outputs[out.buf.0].as_ref().unwrap_or_else(|| {
                    panic!("buffer {} written but not bound as output", out.buf.0)
                });
                scratch
                    .view_mut()
                    .copy_from(host.as_view().subview(out.r0, out.c0, out.rows, out.cols));
            }
            per_unit[unit].push(WaveItem {
                idx,
                op: node.op,
                a,
                tag,
                b,
                scratch,
            });
        }
        assert_eq!(
            inv_at,
            partition.assignment.len(),
            "machine splits ops differently than the schedule planned \
             (tall-operand support must match the planning unit)"
        );

        // Execution: one scoped thread per unit with work, each running
        // its items in canonical order on its own executor. Single-unit
        // waves run inline — the identical code path minus the spawn.
        let busy = per_unit.iter().filter(|v| !v.is_empty()).count();
        let mut finished: Vec<(usize, Matrix<T>)> = Vec::with_capacity(wave_nodes.len());
        if busy <= 1 {
            if let Some(u) = per_unit.iter().position(|v| !v.is_empty()) {
                let items = std::mem::take(&mut per_unit[u]);
                finished = run_items(&mut mach.unit_executors_mut()[u], items);
            }
        } else {
            let execs = mach.unit_executors_mut();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(busy);
                for (exec, items) in execs.iter_mut().zip(per_unit) {
                    if !items.is_empty() {
                        handles.push(scope.spawn(move || run_items(exec, items)));
                    }
                }
                for h in handles {
                    finished.extend(h.join().expect("wave worker panicked"));
                }
            });
        }

        // Merge pass, canonical order: copy each scratch into its
        // (disjoint) destination region of the bound outputs.
        finished.sort_unstable_by_key(|(idx, _)| *idx);
        for (idx, scratch) in finished {
            let out = &wave_nodes[idx].node.out;
            env.outputs[out.buf.0]
                .as_mut()
                .expect("output bound (checked at assembly)")
                .subview_mut(out.r0, out.c0, out.rows, out.cols)
                .copy_from(scratch.view());
        }
        mach.complete_wave(partition.makespan());
    }
}

/// One op's share of a wave, bound for a specific unit's worker.
struct WaveItem<'v, T: Scalar> {
    /// Position within the wave (canonical order), for the merge pass.
    idx: usize,
    op: tcu_core::TensorOp,
    a: MatrixView<'v, T>,
    tag: OperandId,
    b: MatrixView<'v, T>,
    scratch: Matrix<T>,
}

/// Run one unit's wave items in canonical order on its executor,
/// returning the filled scratches for the merge pass.
fn run_items<T: Scalar, E: Executor>(
    exec: &mut E,
    items: Vec<WaveItem<'_, T>>,
) -> Vec<(usize, Matrix<T>)> {
    items
        .into_iter()
        .map(|item| {
            let WaveItem {
                idx,
                op,
                a,
                tag,
                b,
                mut scratch,
            } = item;
            let _ = exec.execute_tagged(&op, a, Some(tag), b, &mut scratch.view_mut());
            (idx, scratch)
        })
        .collect()
}

/// The soundness precondition of concurrent wave execution: no two ops
/// of one wave write overlapping output elements. The scheduler
/// guarantees this by construction — `Node::conflicts` flags every
/// write overlap and the leveler separates conflicting nodes — so the
/// wave driver re-checks it in debug builds only (the check is
/// quadratic in wave width).
///
/// # Panics
/// Panics if two ops of the wave write overlapping regions.
fn assert_wave_outputs_disjoint(wave: &[crate::ScheduledNode]) {
    for (i, x) in wave.iter().enumerate() {
        for y in &wave[i + 1..] {
            assert!(
                !x.node.out.overlaps(&y.node.out),
                "wave holds overlapping output regions {:?} and {:?} — \
                 concurrent execution would race; this is a scheduler bug",
                x.node.out,
                y.node.out
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpGraph, Scheduler};
    use tcu_core::{ReplayExecutor, TensorOp};
    use tcu_linalg::ops::matmul_naive;
    use tcu_linalg::Matrix;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
        })
    }

    /// Record, plan, run: the smallest end-to-end flow — one strip
    /// streamed against two adjacent weight blocks on a unit twice as
    /// wide, which the scheduler collapses into a single invocation.
    #[test]
    fn two_block_columns_collapse_and_match_the_oracle() {
        let d = 16usize;
        let a = pseudo(d, 4, 1);
        let b = pseudo(4, 8, 2);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, 4);
        let bb = g.buffer("B", 4, 8);
        let cb = g.buffer("C", d, 8);
        for j in 0..2 {
            g.record(
                TensorOp::padded(d, 4, 4),
                crate::OperandRef::new(ab, 0, 0, d, 4),
                crate::OperandRef::new(bb, 0, j * 4, 4, 4),
                crate::OperandRef::new(cb, 0, j * 4, d, 4),
            );
        }
        let mut mach = TcuMachine::model(64, 1000);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), 1);
        assert_eq!(plan.nodes()[0].fused, 2);

        let mut c = Matrix::<i64>::zeros(d, 8);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c, matmul_naive(&a, &b));
        // One invocation charged instead of two: d·√m + ℓ once.
        assert_eq!(mach.time(), (d * 8) as u64 + 1000);
        assert_eq!(mach.stats().tensor_calls, 1);
    }

    #[test]
    fn run_charges_exactly_what_the_plan_predicts() {
        let d = 32usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let s = 8usize;
        for j in 0..d / s {
            for k in 0..d / s {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::with_executor(
            tcu_core::ModelTensorUnit::new(64, 9),
            ReplayExecutor::default(),
        );
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (a, b) = (pseudo(d, d, 3), pseudo(d, d, 4));
        let mut c = Matrix::<i64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(mach.stats().tensor_calls, plan.invocations());
        assert_eq!(mach.stats().tensor_rows, plan.charged_rows());
        assert_eq!(mach.stats().tensor_time, plan.tensor_time());
        // Replay executor ran no numerics.
        assert_eq!(c, Matrix::<i64>::zeros(d, d));
    }

    #[test]
    fn pack_cache_hits_across_the_run_and_fresh_envs_miss() {
        let d = 32usize;
        let s = 8usize;
        let b = pseudo(d, d, 6);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::model(s * s, 7);
        mach.executor_mut().enable_pack_cache(2 * q);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), q * q, "√m-wide blocks cannot merge");

        let run_once = |mach: &mut TcuMachine<_, _>, seed: i64| {
            let aa = pseudo(d, d, seed);
            let mut c = Matrix::<i64>::zeros(d, d);
            let mut env = ExecEnv::new(&g);
            env.bind_input(ab, aa.view());
            env.bind_input(bb, b.view());
            env.bind_output(cb, c.view_mut());
            plan.run(mach, &mut env);
            (c, aa)
        };
        let (c1, a1) = run_once(&mut mach, 5);
        assert_eq!(c1, matmul_naive(&a1, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        // q distinct strips, q² lookups: q misses, q(q−1) hits.
        assert_eq!(stats.misses, q as u64);
        assert_eq!(stats.hits, (q * (q - 1)) as u64);

        // A second environment re-packs (new epoch): no stale reuse
        // even though buffer ids coincide.
        let (c2, a2) = run_once(&mut mach, 50);
        assert_eq!(c2, matmul_naive(&a2, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 2 * q as u64);
    }

    /// A two-stage RAW pipeline in one graph: M = A·B, then C = M·B —
    /// the shape the pre-versioned runtime forced into two graphs.
    fn pipeline_graph(d: usize, s: usize) -> (OpGraph, [crate::BufferId; 4]) {
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let mb = g.buffer("M", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for (src, dst) in [(ab, mb), (mb, cb)] {
            for j in 0..q {
                for k in 0..q {
                    g.record(
                        TensorOp {
                            accumulate: true,
                            ..TensorOp::padded(d, s, s)
                        },
                        crate::OperandRef::new(src, 0, k * s, d, s),
                        crate::OperandRef::new(bb, k * s, j * s, s, s),
                        crate::OperandRef::new(dst, 0, j * s, d, s),
                    );
                }
            }
        }
        (g, [ab, bb, mb, cb])
    }

    #[test]
    fn two_stage_pipeline_plans_and_matches_the_chained_oracle() {
        let (d, s) = (16usize, 4usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 7);
        let b = pseudo(d, d, 8);
        let mut mach = TcuMachine::model(s * s, 11);
        mach.executor_mut().enable_pack_cache(2 * d / s);
        let plan = Scheduler::new().plan(&g, mach.unit());
        // Stage 2's reads of M force it into later waves than stage 1's
        // accumulate chain into the same columns.
        assert!(plan.waves() > d / s, "RAW must add depth");
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let want_m = matmul_naive(&a, &b);
        assert_eq!(m, want_m);
        assert_eq!(c, matmul_naive(&want_m, &b));
        // Charges are the recorded stream's: 2 stages × q² ops, d rows.
        let q = (d / s) as u64;
        assert_eq!(mach.stats().tensor_calls, 2 * q * q);
    }

    #[test]
    fn pipeline_writes_retire_stale_strips_in_the_pack_cache() {
        // One graph: write M, read M (gen 1), overwrite M, read again
        // (gen 2). The second read must repack — tags differ — and the
        // result must reflect the overwrite.
        let s = 4usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", s, s);
        let bb = g.buffer("B", s, s);
        let mb = g.buffer("M", s, s);
        let c1b = g.buffer("C1", s, s);
        let c2b = g.buffer("C2", s, s);
        let xb = g.buffer("X", s, s);
        let whole = |buf| crate::OperandRef::new(buf, 0, 0, s, s);
        let op = TensorOp::padded(s, s, s);
        g.record(op, whole(ab), whole(bb), whole(mb)); // M = A·B
        g.record(op, whole(mb), whole(bb), whole(c1b)); // C1 = M·B
        g.record(op, whole(xb), whole(bb), whole(mb)); // M = X·B
        g.record(op, whole(mb), whole(bb), whole(c2b)); // C2 = M'·B
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(8);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.waves(), 4, "WAR + RAW serialize all four ops");

        let (a, b, x) = (pseudo(s, s, 21), pseudo(s, s, 22), pseudo(s, s, 23));
        let (mut m, mut c1, mut c2) = (
            Matrix::<i64>::zeros(s, s),
            Matrix::<i64>::zeros(s, s),
            Matrix::<i64>::zeros(s, s),
        );
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_input(xb, x.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(c1b, c1.view_mut());
        env.bind_output(c2b, c2.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c1, matmul_naive(&matmul_naive(&a, &b), &b));
        assert_eq!(c2, matmul_naive(&matmul_naive(&x, &b), &b));
        assert_eq!(m, matmul_naive(&x, &b));
        // Both M reads packed fresh strips (generations 1 and 2).
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn rerunning_one_env_repacks_written_reads_but_reuses_frozen_inputs() {
        // Accumulating pipeline: M += A·B, then C += M·B. Running the
        // schedule twice against ONE environment doubles M before the
        // second stage reads it, so run 2's C contribution is 2·(A·B)·B
        // and the total must be 3·(A·B)·B. A cache serving run 1's
        // packed M strips to run 2 (the per-env tag scheme) would
        // compute 2× instead — so written-buffer reads must repack per
        // run, while the frozen input A keeps hitting across runs.
        let (d, s) = (16usize, 4usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 61);
        let b = pseudo(d, d, 62);
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(4 * d / s);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let after_first = mach.executor().pack_cache_stats().expect("cache on");
        plan.run(&mut mach, &mut env);

        let ab_prod = matmul_naive(&a, &b);
        assert_eq!(m, ab_prod.scale(2));
        assert_eq!(c, matmul_naive(&ab_prod, &b).scale(3));
        // Frozen input strips (A) hit across runs; written-buffer strips
        // (M) repacked in run 2: q fresh misses, no more.
        let after_second = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(
            after_second.misses - after_first.misses,
            (d / s) as u64,
            "exactly the written-buffer strips repack on the second run"
        );
    }

    #[test]
    fn run_parallel_matches_serial_run_and_the_planned_makespan() {
        let (d, s, p) = (32usize, 8usize, 3usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 31);
        let b = pseudo(d, d, 32);
        let unit = tcu_core::ModelTensorUnit::new(s * s, 17);
        let plan = Scheduler::new().with_units(p).plan(&g, &unit);

        let mut serial = TcuMachine::new(unit);
        let (mut m1, mut c1) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m1.view_mut());
        env.bind_output(cb, c1.view_mut());
        plan.run(&mut serial, &mut env);

        let mut par = ParallelTcuMachine::new(unit, p);
        par.enable_pack_caches(2 * d / s);
        let (mut m2, mut c2) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m2.view_mut());
        env.bind_output(cb, c2.view_mut());
        plan.run_parallel(&mut par, &mut env);

        // Bit-identical results, identical per-op charges, and the
        // multi-unit wall-clock the planner predicted.
        assert_eq!((m2, c2), (m1, c1));
        assert_eq!(par.stats(), serial.stats());
        assert_eq!(par.time(), plan.makespan());
        assert!(plan.makespan() < plan.tensor_time(), "3 units must help");
        // The units' caches collectively served every lookup.
        let (mut lookups, mut misses) = (0u64, 0u64);
        for u in 0..p {
            if let Some(c) = par.unit_executor(u).pack_cache_stats() {
                lookups += c.lookups;
                misses += c.misses;
            }
        }
        assert_eq!(lookups, plan.invocations());
        assert!(misses < lookups, "schedule placement must enable reuse");
    }

    #[test]
    #[should_panic(expected = "different unit count")]
    fn run_parallel_rejects_mismatched_unit_count() {
        let (g, [_, _, _, _]) = pipeline_graph(8, 4);
        let unit = tcu_core::ModelTensorUnit::new(16, 0);
        let plan = Scheduler::new().with_units(2).plan(&g, &unit);
        let mut par = ParallelTcuMachine::<_, tcu_core::HostExecutor>::new(unit, 3);
        let mut env = ExecEnv::<i64>::new(&g);
        plan.run_parallel(&mut par, &mut env);
    }

    #[test]
    fn schur_update_reads_and_writes_one_buffer() {
        // The gauss kernel-D shape: X's trailing columns accumulate the
        // product of X's own pivot panel with external weights.
        let (d, s) = (8usize, 4usize);
        let mut g = OpGraph::new();
        let xb = g.buffer("X", d, d);
        let wb = g.buffer("W", s, s);
        g.record(
            TensorOp {
                accumulate: true,
                ..TensorOp::padded(s, s, s)
            },
            crate::OperandRef::new(xb, s, 0, s, s),
            crate::OperandRef::new(wb, 0, 0, s, s),
            crate::OperandRef::new(xb, s, s, s, s),
        );
        let mut mach = TcuMachine::model(s * s, 0);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let mut x = pseudo(d, d, 41);
        let want = {
            let mut w = x.clone();
            let prod = matmul_naive(&x.block(s, 0, s, s), &pseudo(s, s, 42));
            w.subview_mut(s, s, s, s).add_assign(prod.view());
            w
        };
        let wmat = pseudo(s, s, 42);
        let mut env = ExecEnv::new(&g);
        env.bind_input(wb, wmat.view());
        env.bind_output(xb, x.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(x, want);
    }

    #[test]
    #[should_panic(expected = "bind it mutably")]
    fn written_buffer_rejects_input_binding() {
        let (g, [_, _, mb, _]) = pipeline_graph(8, 4);
        let m = pseudo(8, 8, 1);
        let mut env = ExecEnv::new(&g);
        env.bind_input(mb, m.view());
    }

    /// Build one wave's worth of scheduled nodes writing the given
    /// output rectangles of a shared buffer (for the disjointness
    /// check's own tests — a real `Scheduler` can never emit such a
    /// wave, which is exactly why the assertion exists).
    fn wave_writing(outs: &[(usize, usize, usize, usize)]) -> Vec<crate::ScheduledNode> {
        let s = 4usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", s, s);
        let bb = g.buffer("B", s, s);
        let cb = g.buffer("C", 4 * s, 4 * s);
        outs.iter()
            .map(|&(r0, c0, rows, cols)| crate::ScheduledNode {
                node: crate::Node {
                    op: TensorOp::padded(rows, s, cols),
                    a: crate::OperandRef::new(ab, 0, 0, rows, s),
                    b: crate::OperandRef::new(bb, 0, 0, s, cols),
                    out: crate::OperandRef::new(cb, r0, c0, rows, cols),
                    a_gen: 0,
                    b_gen: 0,
                    out_gen: 0,
                },
                level: 0,
                fused: 1,
                a_gen: 0,
                b_gen: 0,
            })
            .collect()
    }

    #[test]
    fn disjoint_wave_outputs_pass_the_assertion() {
        // Adjacent but non-overlapping rectangles, including a shared
        // edge — exactly the tightest layout a wave legally holds.
        let wave = wave_writing(&[(0, 0, 4, 4), (0, 4, 4, 4), (4, 0, 4, 4), (4, 4, 8, 8)]);
        assert_wave_outputs_disjoint(&wave);
    }

    #[test]
    #[should_panic(expected = "overlapping output regions")]
    fn disjointness_assertion_catches_an_overlapping_wave() {
        // The second rectangle shares element (4, 4) with the third —
        // a deliberate scheduling-invariant violation.
        let wave = wave_writing(&[(0, 0, 4, 4), (0, 4, 8, 4), (4, 4, 4, 4)]);
        assert_wave_outputs_disjoint(&wave);
    }
}
