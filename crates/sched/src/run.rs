//! Schedule execution: bind data to the graph's logical buffers and
//! drive the planned op stream through a [`TcuMachine`] — or across the
//! units of a [`ParallelTcuMachine`].
//!
//! [`ExecEnv`] maps every [`BufferId`] to real storage — immutable
//! [`MatrixView`]s for buffers the graph only reads, mutable views for
//! buffers it writes. Execution itself runs off the schedule's compiled
//! form (see [`crate::compile`]): the first run lowers the schedule
//! into an [`crate::ExecutablePlan`] whose ops carry concrete buffer
//! offsets, precomputed staging directives, and flattened wave ranges,
//! so the per-op hot loop does no hash lookups, no environment scans,
//! and no staging decisions — it indexes dense arrays. Each left
//! operand is tagged with an [`OperandId`] whose generation combines a
//! process-unique stamp (the environment's *epoch* for frozen
//! input-bound reads, a fresh per-run stamp for reads of written
//! buffers — see [`tag_stamps`]) with the operand's emission-order
//! content version from the schedule — so a pack-caching executor
//! reuses packed strips across every invocation that streams the same
//! region *at the same version*, a write in a pipeline retires the
//! stale strip (its readers carry the bumped generation), and
//! re-running a schedule against mutated outputs can never be served
//! last run's bytes.
//!
//! # Reading written buffers (pipelines)
//!
//! A versioned graph may read regions of buffers it also writes — the
//! Schur-complement update streaming the pivot panel of the matrix it
//! updates, or a second pipeline stage consuming the first stage's
//! product. The hazard order guarantees that when a reader of content
//! version `gen` executes, the region holds exactly the bytes that
//! version names — so *direct* reads of written buffers are always
//! correct, and snapshots exist only where safe-Rust borrows force
//! them: on the serial path, solely the same-buffer read-while-write
//! case (one gather per `(region, generation)`, the same marshalling
//! the eager blocked algorithms perform — every cross-buffer read is
//! zero-copy); on the parallel path, every written-buffer read (worker
//! threads cannot borrow the outputs the main thread retains mutable
//! access to). Which reads snapshot, and before which op, is decided at
//! compile time; the run-time arena just fills the precomputed slots.
//! (Simulated cost is untouched either way: in the model, operand
//! marshalling is covered by the invocation charge.)
//!
//! Accounting flows through the machine exactly as eager execution
//! does: per-op model charges into `Stats` and the trace. What changes
//! with scheduling is *which* (coalesced) ops are issued and in what
//! (canonical) order — never how an issued op is charged.
//!
//! # Multi-unit execution
//!
//! [`Schedule::run_parallel`] routes to one of two drivers (selected
//! by [`crate::exec_mode`], dataflow by default). The **wave** driver
//! ([`Schedule::run_wave`]) consumes [`Schedule::wave_partitions`]
//! directly: every wave's invocations are issued on the units the
//! planner's LPT partition assigned them to (each unit owning its own
//! executor, hence its own pack cache), on a pool of worker threads
//! spawned **once per run** — each unit's worker holds its executor for
//! the whole run and receives per-round batches over a channel, instead
//! of a fresh `thread::scope` per wave. Per-op scratch comes from a
//! main-thread recycling pool (re-zeroed or re-seeded per op, so the
//! numerics are exactly a fresh allocation's). Numerics still execute
//! in the schedule's canonical serial order — waves hold only
//! independent ops, so this equals any true interleaving — which keeps
//! multi-unit runs bit-identical to serial runs and to each other for
//! every unit count.
//!
//! # Barrier-free dataflow execution
//!
//! The **dataflow** driver ([`Schedule::run_dataflow`]) removes the
//! per-wave barrier: instead of stalling every unit at each hazard
//! level, ops dispatch as soon as their hazard predecessors' results
//! have been committed. All scheduling decisions are resolved *at plan
//! time* by [`crate::dataflow`]'s deterministic placement simulation
//! (which unit runs each op, in what per-unit order, and with which
//! deterministic steals), so the runtime is a pure executor of fixed
//! per-unit sequences and the results cannot depend on thread timing:
//!
//! * **accounting** — every op is charged on the main thread, up
//!   front, in emission order (after validating all bindings), so
//!   `Stats` and the trace digest are byte-identical to the serial
//!   run's; wall-clock advances once, by the placement's simulated
//!   makespan, so `time()` lands on [`Schedule::dataflow_makespan`]
//!   (never above [`Schedule::makespan`]);
//! * **numerics** — workers execute into per-op scratch exactly as the
//!   wave driver does; the main thread commits finished scratches and
//!   only then releases hazard successors, so overlapping writes
//!   retire in hazard (emission) order and elements are bit-identical
//!   to [`Schedule::run`] for every unit count, steal seed, and
//!   interleaving;
//! * **dispatch overhead** — each idle unit receives its entire ready
//!   prefix as *one* channel message, and written-buffer reads are
//!   snapshotted incrementally, right before their first reader's
//!   dispatch, instead of per wave. On a single-core host (or under
//!   `TCU_DF_INLINE=1`) an inline executor skips workers, channels,
//!   and scratch entirely and replays the placement's global order
//!   serial-style — same bytes, same per-unit cache counters, no
//!   dispatch overhead.
//!
//! Fault recovery matches the wave driver (retry with backoff,
//! quarantine + LPT re-partition of the dead unit's queued and stolen
//! work onto survivors, preserving the per-unit queues' start-order
//! invariant so progress is never deadlocked) with two documented
//! deviations: charges are recorded up front, so a run that *fails*
//! still carries the full schedule's `Stats`; and under the inline
//! executor a *foreign* (non-injected) panic cannot be recovered — it
//! may have half-written its in-place destination — so it fails the
//! run where the scratch-based drivers rebuild and requeue. Under
//! permanent faults the threaded driver's recovery charges and
//! per-unit cache counters may vary with thread timing (the committed
//! frontier at quarantine time is physical); elements, `Stats`, and
//! the digest stay byte-identical regardless.
//!
//! # Fault tolerance
//!
//! Every entry point has a fallible `try_*` form returning
//! [`TcuError`] — binding mistakes, plan/machine mismatches, and op
//! contract violations come back as values; the legacy `bind_*`/`run*`
//! names are thin wrappers that panic with the error's `Display`
//! (preserving every historical panic message). On top of that,
//! [`Schedule::try_run_parallel`] *recovers* from unit faults: each
//! worker contains per-op panics with `catch_unwind`, transient faults
//! (an [`InjectedFault`] payload, as injected by
//! [`tcu_core::FaultyExecutor`]) are retried in place with simulated
//! backoff charged into wall-clock, and permanently failing units are
//! quarantined — for the rest of the *run*, not just the wave — with
//! their unexecuted items re-partitioned onto the survivors via
//! [`partition_lpt`]. Recovery is unobservable in results by
//! construction: per-op `Stats`/trace charges happen on the main thread
//! before numerics, faulted ops re-execute against intact (or
//! re-seeded) scratch, and fault/retry/quarantine trace annotations are
//! excluded from the digest — so a recoverable faulty run's elements,
//! `Stats`, and digest are byte-identical to the fault-free run's, with
//! only `time()` (backoff + requeue makespans) and
//! [`tcu_core::FaultStats`] recording that recovery happened. A
//! non-[`InjectedFault`] worker panic (a real executor bug) is treated
//! as a permanent unit fault whose in-flight scratch is conservatively
//! rebuilt from the environment before requeueing; a worker that dies
//! outside per-op containment (its channel disconnects) is recovered
//! the same way, with its whole round rebuilt.

use crate::compile::{CompiledRead, ExecutablePlan};
use crate::dataflow::{exec_mode, place_dataflow, DataflowPlacement, DataflowTuning, ExecMode};
use crate::graph::BufferId;
use crate::scheduler::Schedule;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use tcu_core::{
    partition_lpt, BindRole, Executor, FaultKind, InjectedFault, OperandId, ParallelTcuMachine,
    RecoveryPolicy, TcuError, TcuMachine, TensorUnit, WaveAccountant,
};
use tcu_linalg::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// Process-wide epoch allocator: every environment gets a distinct
/// stamp, so operand tags from different environments (different data)
/// can never collide in an executor cache.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Data bindings for one run of a schedule: per-buffer views, split
/// into read-only inputs and mutable (written, possibly also read)
/// outputs.
#[derive(Debug)]
pub struct ExecEnv<'a, T: Scalar> {
    epoch: u64,
    shapes: Vec<(usize, usize)>,
    written: Vec<bool>,
    inputs: Vec<Option<MatrixView<'a, T>>>,
    outputs: Vec<Option<MatrixViewMut<'a, T>>>,
    recorder: Option<std::sync::Arc<dyn tcu_obs::Recorder>>,
}

impl<'a, T: Scalar> ExecEnv<'a, T> {
    /// Fresh bindings for `graph`'s buffers (all unbound, new epoch).
    #[must_use]
    pub fn new(graph: &crate::OpGraph) -> Self {
        let shapes = (0..graph.buffer_count())
            .map(|i| graph.buffer_shape(BufferId(i)))
            .collect::<Vec<_>>();
        let written = (0..graph.buffer_count())
            .map(|i| graph.buffer_written(BufferId(i)))
            .collect::<Vec<_>>();
        Self {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            inputs: vec![None; shapes.len()],
            outputs: shapes.iter().map(|_| None).collect(),
            written,
            shapes,
            recorder: None,
        }
    }

    /// Attach an execution-telemetry recorder to this environment's
    /// runs: the driver forwards it to the machine (per-op execute
    /// spans, pack-cache traffic, fault annotations) and emits its own
    /// wave/stage/merge spans through it. Purely observational —
    /// results, `Stats`, traces, and simulated time are unchanged.
    pub fn enable_recorder(&mut self, recorder: std::sync::Arc<dyn tcu_obs::Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The environment's cache-key epoch (diagnostic).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registered buffer shapes, in buffer-id order (the witness
    /// [`Schedule::compile`] checks an environment against).
    pub(crate) fn shapes(&self) -> &[(usize, usize)] {
        &self.shapes
    }

    /// Bind a read-only buffer to a view of its exact registered shape,
    /// returning the binding error instead of panicking. Fails on a
    /// shape mismatch, an id from another graph, or a buffer the graph
    /// writes (written buffers need [`Self::try_bind_output`], and
    /// reads of them resolve against per-op generations).
    pub fn try_bind_input(
        &mut self,
        id: BufferId,
        view: MatrixView<'a, T>,
    ) -> Result<(), TcuError> {
        let expected = *self.shapes.get(id.0).ok_or(TcuError::PlanMismatch {
            what: "binding names a buffer from another graph",
        })?;
        if (view.rows(), view.cols()) != expected {
            return Err(TcuError::BindShape {
                buffer: id.0,
                role: BindRole::Input,
                expected,
                got: (view.rows(), view.cols()),
            });
        }
        if self.written[id.0] {
            return Err(TcuError::BindWrittenAsInput { buffer: id.0 });
        }
        self.inputs[id.0] = Some(view);
        Ok(())
    }

    /// Bind a read-only buffer to a view of its exact registered shape.
    ///
    /// # Panics
    /// Panics on shape mismatch, an id from another graph, or a buffer
    /// the graph writes (written buffers need [`Self::bind_output`], and
    /// reads of them resolve against per-op generations).
    pub fn bind_input(&mut self, id: BufferId, view: MatrixView<'a, T>) {
        self.try_bind_input(id, view)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Bind a written buffer to a mutable view of its registered shape,
    /// returning the binding error instead of panicking. Reads the
    /// graph performs on the same buffer (pipelines) are served from
    /// generation-keyed snapshots of this binding.
    pub fn try_bind_output(
        &mut self,
        id: BufferId,
        view: MatrixViewMut<'a, T>,
    ) -> Result<(), TcuError> {
        let expected = *self.shapes.get(id.0).ok_or(TcuError::PlanMismatch {
            what: "binding names a buffer from another graph",
        })?;
        if (view.rows(), view.cols()) != expected {
            return Err(TcuError::BindShape {
                buffer: id.0,
                role: BindRole::Output,
                expected,
                got: (view.rows(), view.cols()),
            });
        }
        self.outputs[id.0] = Some(view);
        Ok(())
    }

    /// Bind a written buffer to a mutable view of its registered shape.
    /// Reads the graph performs on the same buffer (pipelines) are
    /// served from generation-keyed snapshots of this binding.
    ///
    /// # Panics
    /// Panics on shape mismatch or an id from another graph.
    pub fn bind_output(&mut self, id: BufferId, view: MatrixViewMut<'a, T>) {
        self.try_bind_output(id, view)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Per-buffer cache-tag stamps for one execution of a schedule.
///
/// A tag is sound only while equal tags guarantee equal bytes, so two
/// stamps with different lifetimes back the two read sources:
///
/// * **input-bound** buffers are borrowed, hence frozen, for the
///   environment's whole lifetime — their reads carry the environment
///   *epoch*, so packed strips survive across repeated runs of one
///   environment (the plan-once / run-many contract);
/// * **output-bound** buffers mutate as the schedule executes, and a
///   *second* run of the same environment starts from different bytes
///   (e.g. accumulates applied twice) at the same emission generations —
///   so their reads carry a fresh per-run stamp, retiring every strip
///   packed from written data when the run ends.
///
/// Input bindings cannot change mid-run (the run borrows the
/// environment mutably), so the per-buffer choice is resolved once here
/// instead of per op. Both stamps are drawn from one process-wide
/// counter, so they can never collide with each other. The stamp
/// occupies the upper 32 bits of `OperandId::generation` (emission
/// generation below): aliasing would need 2³² environments+runs while
/// a strip from the first still sits in a bounded FIFO cache — noted
/// here rather than guarded, since the guard would be a panic after
/// four billion runs.
fn tag_stamps<T: Scalar>(env: &ExecEnv<'_, T>) -> Vec<u64> {
    let run = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
    env.inputs
        .iter()
        .map(|i| if i.is_some() { env.epoch } else { run })
        .collect()
}

/// The cache tag of one compiled read under its buffer's run stamp.
fn read_tag(r: &CompiledRead, stamp: u64) -> OperandId {
    OperandId {
        buffer: r.buf as u64,
        generation: stamp.wrapping_shl(32) | u64::from(r.gen),
        origin: (r.r0, r.c0),
        extent: (r.rows, r.cols),
    }
}

/// Resolve a compiled read on the serial path: the staged snapshot for
/// same-buffer reads, otherwise zero-copy from the bound input or
/// output view (callers check bindings first — see `try_run`).
fn serial_read<'s, T: Scalar>(
    arena: &'s [Option<Matrix<T>>],
    inputs: &'s [Option<MatrixView<'_, T>>],
    outputs: &'s [Option<MatrixViewMut<'_, T>>],
    r: &CompiledRead,
) -> MatrixView<'s, T> {
    if r.serial_staged {
        return arena[r.slot as usize]
            .as_ref()
            .unwrap_or_else(|| unreachable!("snapshot staged before use"))
            .view();
    }
    match inputs[r.buf].as_ref() {
        Some(v) => v.subview(r.r0, r.c0, r.rows, r.cols),
        None => outputs[r.buf]
            .as_ref()
            .unwrap_or_else(|| unreachable!("direct read checked bound"))
            .as_view()
            .subview(r.r0, r.c0, r.rows, r.cols),
    }
}

impl Schedule {
    /// Execute the planned stream on `mach` with `env`'s bindings: each
    /// emitted node issues one tagged tensor instruction (charged and
    /// traced by the machine exactly like an eager call), outputs land
    /// in the bound views. The serial order is the schedule's canonical
    /// order; on a pack-caching host executor, repeated left-operand
    /// regions are packed once per content version per environment.
    ///
    /// # Panics
    /// Panics if the machine's `√m` differs from the one the schedule
    /// was planned for, if the environment's buffer shapes disagree
    /// with the planned graph's, or if a referenced buffer is unbound.
    pub fn run<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut TcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        self.try_run(mach, env).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Schedule::run`], returning errors instead of panicking:
    /// plan/machine mismatches, op contract violations, and unbound
    /// buffers come back as [`TcuError`]s. Compilation errors (an op
    /// violating the planned unit's contract) surface before anything
    /// executes; on a mid-stream `Err` (an unbound buffer), the bound
    /// outputs hold whatever the already-issued prefix of the stream
    /// wrote (an error aborts mid-stream, it does not roll back). Fault
    /// *recovery* (retry, quarantine) is a property of the parallel
    /// wave driver — see [`Schedule::try_run_parallel`]; the serial
    /// path has no worker threads to contain, so an executor panic here
    /// propagates.
    pub fn try_run<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut TcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) -> Result<(), TcuError> {
        if mach.sqrt_m() != self.sqrt_m {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different tensor-unit size",
            });
        }
        if env.shapes != self.buffer_shapes {
            return Err(TcuError::PlanMismatch {
                what: "environment built for a different graph (buffer shapes disagree)",
            });
        }
        let plan = self.compiled()?;
        if let (Some(rec), None) = (env.recorder.clone(), mach.recorder_handle()) {
            mach.enable_recorder(rec);
        }
        let stamps = tag_stamps(env);
        let mut arena: Vec<Option<Matrix<T>>> = (0..plan.slots).map(|_| None).collect();
        let mut next_stage = 0usize;
        for (i, cop) in plan.ops.iter().enumerate() {
            let mut host = env.outputs[cop.out_buf].take().ok_or(TcuError::Unbound {
                buffer: cop.out_buf,
                written: true,
            })?;
            // Snapshot every same-buffer-read key whose first reader is
            // this op. The snapshot is taken before the op executes —
            // exactly the content version the key names, by the hazard
            // order — and an error must not leave the output binding
            // moved out.
            while next_stage < plan.serial_stages.len()
                && plan.serial_stages[next_stage].before_op as usize == i
            {
                let d = plan.serial_stages[next_stage];
                let snap = if d.buf == cop.out_buf {
                    host.as_view()
                        .subview(d.r0, d.c0, d.rows, d.cols)
                        .to_matrix()
                } else {
                    match env.outputs[d.buf].as_ref() {
                        Some(v) => v.as_view().subview(d.r0, d.c0, d.rows, d.cols).to_matrix(),
                        None => {
                            env.outputs[cop.out_buf] = Some(host);
                            return Err(TcuError::Unbound {
                                buffer: d.buf,
                                written: false,
                            });
                        }
                    }
                };
                arena[d.slot as usize] = Some(snap);
                next_stage += 1;
            }
            // Direct (zero-copy) reads fail *before* any view is taken,
            // so the output binding can be restored on the way out.
            for r in [&cop.a, &cop.b] {
                if !r.serial_staged
                    && env.inputs[r.buf].is_none()
                    && env.outputs[r.buf].is_none()
                    && r.buf != cop.out_buf
                {
                    env.outputs[cop.out_buf] = Some(host);
                    return Err(TcuError::Unbound {
                        buffer: r.buf,
                        written: false,
                    });
                }
            }
            let a = serial_read(&arena, &env.inputs, &env.outputs, &cop.a);
            let b = serial_read(&arena, &env.inputs, &env.outputs, &cop.b);
            let tag = read_tag(&cop.a, stamps[cop.a.buf]);
            let mut out_view = host.subview_mut(cop.out_r0, cop.out_c0, cop.out_rows, cop.out_cols);
            mach.issue_into_tagged(cop.op, a, Some(tag), b, &mut out_view);
            env.outputs[cop.out_buf] = Some(host);
        }
        Ok(())
    }

    /// Execute the planned stream *across the units* of a parallel
    /// machine, routing to the driver [`crate::exec_mode`] selects: the
    /// barrier-free dataflow driver ([`Schedule::run_dataflow`]) by
    /// default, the per-wave driver ([`Schedule::run_wave`]) under
    /// `TCU_EXEC_MODE=wave`. Both drivers produce elements, `Stats`,
    /// and trace digests byte-identical to the serial [`Schedule::run`]
    /// for every unit count; they differ only in host-thread structure
    /// and in the simulated wall-clock they charge
    /// ([`Schedule::planned_parallel_time`]).
    ///
    /// # Panics
    /// Panics if the machine's `√m` or unit count differs from what the
    /// schedule was planned for, if the machine's unit splits ops
    /// differently than the planning unit did (tall support must
    /// agree), if the environment's buffer shapes disagree with the
    /// planned graph's, if a referenced buffer is unbound, or if a
    /// fault was unrecoverable under the default [`RecoveryPolicy`].
    pub fn run_parallel<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        self.try_run_parallel(mach, env)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Schedule::run_parallel`] with fault recovery under the default
    /// [`RecoveryPolicy`] (3 attempts per op, quarantine on). See
    /// [`Schedule::try_run_parallel_with`].
    pub fn try_run_parallel<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) -> Result<(), TcuError> {
        self.try_run_parallel_with(mach, env, RecoveryPolicy::default())
    }

    /// The fault-tolerant parallel entry point: routes to
    /// [`Schedule::try_run_wave_with`] or
    /// [`Schedule::try_run_dataflow_with`] per [`crate::exec_mode`],
    /// with dataflow tuning read from the environment
    /// ([`DataflowTuning::from_env`]).
    pub fn try_run_parallel_with<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
        policy: RecoveryPolicy,
    ) -> Result<(), TcuError> {
        match exec_mode() {
            ExecMode::Wave => self.try_run_wave_with(mach, env, policy),
            ExecMode::Dataflow => {
                self.try_run_dataflow_with(mach, env, policy, DataflowTuning::from_env())
            }
        }
    }

    /// The per-wave-barrier parallel driver, pinned regardless of
    /// [`crate::exec_mode`]: every wave's invocations are issued on the
    /// units the planner's LPT partition assigned them to, and a global
    /// barrier separates waves. Panicking wrapper over
    /// [`Schedule::try_run_wave`].
    ///
    /// # Panics
    /// As [`Schedule::run_parallel`].
    pub fn run_wave<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        self.try_run_wave(mach, env)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Schedule::run_wave`] with fault recovery under the default
    /// [`RecoveryPolicy`], returning errors instead of panicking.
    pub fn try_run_wave<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) -> Result<(), TcuError> {
        self.try_run_wave_with(mach, env, RecoveryPolicy::default())
    }

    /// The fault-tolerant wave driver: one persistent worker per unit,
    /// per-wave dispatch with a global barrier between hazard levels,
    /// plus containment and recovery of worker faults under `policy`.
    /// Concurrency is safe by construction — ops sharing a wave never
    /// overlap in any written region, which a debug assertion
    /// re-verifies per wave — and deterministic by design:
    ///
    /// * **accounting** (per-op `Stats` charges and trace events) is
    ///   recorded on the main thread in the schedule's canonical order
    ///   *before* the wave's numerics run, exactly as a serial scheduled
    ///   run charges them; wall-clock advances by one makespan per wave,
    ///   so `mach.time()` lands on [`Schedule::makespan`] (plus scalar
    ///   work);
    /// * **numerics** land in per-op scratch buffers — pre-seeded with
    ///   the destination bytes for accumulating ops, so the kernel
    ///   performs the identical arithmetic on identical values — and the
    ///   main thread merges the disjoint results back in canonical
    ///   order, making elements bit-identical to [`Schedule::run`] for
    ///   every unit count;
    /// * **pack-cache counters** are per unit, and each worker consumes
    ///   its ops in canonical order, so every unit's executor sees the
    ///   exact op subsequence a serial placement-following run would —
    ///   cache stats cannot depend on thread interleaving.
    ///
    /// Every per-op panic on a worker is caught. An [`InjectedFault`]
    /// payload marked transient is retried on the same unit (bounded by
    /// `policy.max_attempts`, each retry charging simulated backoff
    /// into wall-clock); one marked permanent — or any *other* panic
    /// payload, i.e. a real executor bug — kills the unit: with
    /// `policy.quarantine` the unit is retired for the rest of the run
    /// and its unexecuted items are re-partitioned onto the survivors
    /// (charging the requeued batch's LPT makespan), without it the run
    /// fails with [`TcuError::UnitFault`]. A run out of retries fails
    /// with [`TcuError::RetriesExhausted`]; losing every unit with work
    /// still pending fails with [`TcuError::AllUnitsQuarantined`].
    ///
    /// For every *recoverable* fault schedule the recovery contract
    /// holds: output elements, `Stats`, and the trace digest are
    /// byte-identical to the fault-free run, with the recovery story
    /// visible only in `time()`, [`tcu_core::FaultStats`], and the
    /// digest-exempt fault/retry/quarantine trace annotations. On
    /// `Err`, outputs hold the completed waves' results only — the
    /// failing wave's scratches are discarded, never half-merged.
    pub fn try_run_wave_with<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
        policy: RecoveryPolicy,
    ) -> Result<(), TcuError> {
        if mach.sqrt_m() != self.sqrt_m {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different tensor-unit size",
            });
        }
        if mach.units() != self.units() {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different unit count",
            });
        }
        if env.shapes != self.buffer_shapes {
            return Err(TcuError::PlanMismatch {
                what: "environment built for a different graph (buffer shapes disagree)",
            });
        }
        let plan = self.compiled()?;
        // Telemetry: the environment's recorder (if the machine has
        // none of its own) is attached to the machine first, so worker
        // executors emit pack-cache traffic and the wave accountant
        // emits fault annotations through it. One handle then serves
        // the driver's own wave/stage/merge spans.
        if let (Some(rec), None) = (env.recorder.clone(), mach.recorder_handle()) {
            mach.enable_recorder(rec);
        }
        let recorder = mach.recorder_handle();
        let stamps = tag_stamps(env);
        let units = mach.units();
        let max_attempts = policy.max_attempts.max(1);

        // The run-local snapshot arena: one slot per compiled read key,
        // filled at most once per run (`OnceLock`, so the main thread
        // can keep staging while workers hold shared borrows). Reads of
        // never-written buffers are staged up front when not input-
        // bound — their content cannot change during the run.
        let arena: Vec<OnceLock<Matrix<T>>> = (0..plan.slots).map(|_| OnceLock::new()).collect();
        for d in &plan.cond_stages {
            if env.inputs[d.buf].is_some() {
                continue;
            }
            let snap = env.outputs[d.buf]
                .as_ref()
                .ok_or(TcuError::Unbound {
                    buffer: d.buf,
                    written: false,
                })?
                .as_view()
                .subview(d.r0, d.c0, d.rows, d.cols)
                .to_matrix();
            let _ = arena[d.slot as usize].set(snap);
        }

        // Borrow split for the run: workers see the arena and the
        // frozen inputs; the main thread keeps the outputs (staging
        // sources, accumulate seeds, merges) and the machine's
        // accounting half, while each worker owns one unit's executor.
        let arena = &arena;
        let inputs = &env.inputs;
        let outputs = &mut env.outputs;
        let (mut acct, execs) = mach.wave_parts();
        // Quarantine outlives the wave: a unit that failed permanently
        // stays retired for the remainder of this run.
        let mut quarantined = vec![false; units];
        let mut pool: Vec<Matrix<T>> = Vec::new();

        std::thread::scope(|scope| {
            // One persistent worker per unit for the whole run: tasks
            // arrive as (items, max_attempts) rounds, outcomes return on
            // the paired channel. A worker exits when the task sender
            // drops (normal shutdown) or its outcome can no longer be
            // delivered.
            let mut task_tx = Vec::with_capacity(units);
            let mut result_rx = Vec::with_capacity(units);
            let mut handles = Vec::with_capacity(units);
            for (u, exec) in execs.iter_mut().enumerate() {
                let (ttx, trx) = std::sync::mpsc::channel();
                let (rtx, rrx) = std::sync::mpsc::channel();
                let rec = recorder.clone();
                handles.push(scope.spawn(move || {
                    while let Ok((items, max)) = trx.recv() {
                        let outcome =
                            run_items_contained(exec, items, max, rec.as_deref(), u as u32);
                        if rtx.send(outcome).is_err() {
                            break;
                        }
                    }
                }));
                task_tx.push(ttx);
                result_rx.push(rrx);
            }

            let run_result = (|| -> Result<(), TcuError> {
                let mut next_stage = 0usize;
                for (wave, &(wstart, wend)) in plan.wave_ranges.iter().enumerate() {
                    let rec = recorder.as_deref();
                    let wave_t0 = rec.map(tcu_obs::Recorder::now_ns);
                    let wave_nodes = &self.nodes()[wstart..wend];
                    if cfg!(debug_assertions) {
                        assert_wave_outputs_disjoint(wave_nodes);
                    }
                    // Staging pass: snapshot every written-buffer read
                    // first consumed in this wave before anything
                    // executes (the hazard order makes this byte-equal
                    // to per-op lazy staging: a region's bytes are
                    // frozen between its last `gen` write and its last
                    // `gen` reader).
                    let stage_t0 = rec.map(tcu_obs::Recorder::now_ns);
                    let mut staged = 0u32;
                    while next_stage < plan.par_stages.len()
                        && (plan.par_stages[next_stage].before_op as usize) < wend
                    {
                        let d = plan.par_stages[next_stage];
                        let snap = outputs[d.buf]
                            .as_ref()
                            .ok_or(TcuError::Unbound {
                                buffer: d.buf,
                                written: false,
                            })?
                            .as_view()
                            .subview(d.r0, d.c0, d.rows, d.cols)
                            .to_matrix();
                        let _ = arena[d.slot as usize].set(snap);
                        staged += 1;
                        next_stage += 1;
                    }
                    emit_span(
                        rec,
                        tcu_obs::Lane::Scheduler,
                        stage_t0,
                        tcu_obs::EventKind::Stage { copies: staged },
                    );

                    // Charging + assembly pass, in canonical order:
                    // meter each op, resolve its operand views and
                    // cache tag, and build its work item on the unit
                    // the planner assigned its first invocation to.
                    // Items bound for already-quarantined units are
                    // displaced and re-partitioned onto the survivors
                    // below. Charges always happen here, on the main
                    // thread, in canonical order — faults can delay
                    // numerics, never reorder accounting.
                    let s = acct.sqrt_m();
                    let tall = acct.unit().supports_tall();
                    let partition = &self.wave_partitions()[wave];
                    let mut pending: Vec<Vec<WaveItem<'_, T>>> =
                        (0..units).map(|_| Vec::new()).collect();
                    let mut displaced: Vec<WaveItem<'_, T>> = Vec::new();
                    let mut inv_at = 0usize;
                    for i in wstart..wend {
                        let cop = &plan.ops[i];
                        let invocations = if tall {
                            1
                        } else {
                            cop.op.charge_rows(s).div_ceil(s)
                        };
                        let Some(&unit) = partition.assignment.get(inv_at) else {
                            return Err(split_mismatch());
                        };
                        inv_at += invocations;
                        acct.charge_wave_op(&cop.op);
                        let mut item =
                            build_item(arena, inputs, outputs, &stamps, &mut pool, plan, i)?;
                        item.rows = cop.op.charge_rows(s) as u64;
                        item.sim_cost = acct.op_cost(&cop.op);
                        if let Some(r) = rec {
                            let t = r.now_ns();
                            emit_span(
                                rec,
                                tcu_obs::Lane::Scheduler,
                                Some(t),
                                tcu_obs::EventKind::ScratchAcquire {
                                    unit: unit as u32,
                                    reused: item.reused,
                                    bytes: (cop.op.rows * cop.op.width * std::mem::size_of::<T>())
                                        as u64,
                                },
                            );
                        }
                        if quarantined[unit] {
                            displaced.push(item);
                        } else {
                            pending[unit].push(item);
                        }
                    }
                    if inv_at != partition.assignment.len() {
                        return Err(split_mismatch());
                    }
                    requeue_onto_survivors(&mut acct, &mut pending, displaced, &quarantined, wave)?;
                    let units_busy = pending.iter().filter(|v| !v.is_empty()).count() as u32;

                    // Execution rounds: dispatch every unit's batch to
                    // its persistent worker, then collect outcomes in
                    // unit order (deterministic for a given fault
                    // plan). A round ends when every dispatched worker
                    // answers; units that died during the round are
                    // quarantined and their unexecuted items
                    // re-partitioned, then the next round runs the
                    // requeued work.
                    let mut finished: Vec<(usize, Matrix<T>)> = Vec::with_capacity(wend - wstart);
                    loop {
                        let was_busy: Vec<bool> = pending.iter().map(|v| !v.is_empty()).collect();
                        if !was_busy.iter().any(|&b| b) {
                            break;
                        }
                        // Wave indices assigned this round, per unit —
                        // enough to rebuild a unit's entire round from
                        // the environment if its worker dies so hard
                        // its outcome is lost (outputs are pristine
                        // until the merge pass, so rebuilt items are
                        // byte-identical to the originals).
                        let assigned: Vec<Vec<usize>> = pending
                            .iter()
                            .map(|v| v.iter().map(|it| it.idx).collect())
                            .collect();
                        let mut sent = vec![false; units];
                        for u in 0..units {
                            if was_busy[u] {
                                let items = std::mem::take(&mut pending[u]);
                                sent[u] = task_tx[u].send((items, max_attempts)).is_ok();
                            }
                        }
                        // Process outcomes in unit order: record
                        // fault/retry annotations, collect completed
                        // scratches, quarantine dead units and gather
                        // their unexecuted items for re-partitioning.
                        // A failed send or a disconnected result
                        // channel means the worker itself is gone —
                        // the `lost` outcome, recovered like any other
                        // permanent unit death.
                        let mut requeue: Vec<WaveItem<'_, T>> = Vec::new();
                        for u in 0..units {
                            if !was_busy[u] {
                                continue;
                            }
                            let outcome = if sent[u] {
                                result_rx[u].recv().unwrap_or_else(|_| UnitOutcome::lost())
                            } else {
                                UnitOutcome::lost()
                            };
                            for note in &outcome.notes {
                                match *note {
                                    WorkerNote::Fault { transient } => {
                                        acct.record_fault(u, transient);
                                    }
                                    WorkerNote::Retry { attempt, op } => {
                                        let _ = acct.record_retry(u, attempt, op.charge_rows(s));
                                    }
                                }
                            }
                            finished.extend(outcome.done);
                            match outcome.terminal {
                                None => {}
                                Some(Terminal::Exhausted { attempts }) => {
                                    return Err(TcuError::RetriesExhausted {
                                        unit: u,
                                        wave,
                                        attempts,
                                    });
                                }
                                Some(Terminal::Dead { dirty }) => {
                                    if !policy.quarantine {
                                        return Err(TcuError::UnitFault { unit: u, wave });
                                    }
                                    quarantined[u] = true;
                                    let mut leftover = outcome.leftover;
                                    if outcome.lost {
                                        // The whole round is rebuilt:
                                        // nothing the worker did
                                        // reached the outputs, and the
                                        // charges were recorded at
                                        // assembly.
                                        leftover = assigned[u]
                                            .iter()
                                            .map(|&idx| {
                                                build_item(
                                                    arena, inputs, outputs, &stamps, &mut pool,
                                                    plan, idx,
                                                )
                                                .map(|mut it| {
                                                    it.rows =
                                                        plan.ops[idx].op.charge_rows(s) as u64;
                                                    it.sim_cost = acct.op_cost(&plan.ops[idx].op);
                                                    it
                                                })
                                            })
                                            .collect::<Result<_, _>>()?;
                                    } else if dirty {
                                        // A non-injected panic may have
                                        // fired mid-write: rebuild the
                                        // in-flight item's scratch from
                                        // the (untouched) environment.
                                        if let Some(first) = leftover.first_mut() {
                                            let (rows, sim_cost) = (first.rows, first.sim_cost);
                                            *first = build_item(
                                                arena, inputs, outputs, &stamps, &mut pool, plan,
                                                first.idx,
                                            )?;
                                            first.rows = rows;
                                            first.sim_cost = sim_cost;
                                        }
                                    }
                                    acct.record_quarantine(u, leftover.len());
                                    requeue.extend(leftover);
                                }
                            }
                        }
                        requeue_onto_survivors(
                            &mut acct,
                            &mut pending,
                            requeue,
                            &quarantined,
                            wave,
                        )?;
                    }

                    // Merge pass, canonical order: copy each scratch
                    // into its (disjoint) destination region of the
                    // bound outputs, then recycle it. Reached only when
                    // every item of the wave completed — an error above
                    // discards the wave's scratches instead of
                    // half-merging them.
                    let merge_t0 = rec.map(tcu_obs::Recorder::now_ns);
                    let merged = finished.len() as u32;
                    finished.sort_unstable_by_key(|(idx, _)| *idx);
                    for (idx, scratch) in finished {
                        let cop = &plan.ops[idx];
                        outputs[cop.out_buf]
                            .as_mut()
                            .unwrap_or_else(|| unreachable!("output bound (checked at assembly)"))
                            .subview_mut(cop.out_r0, cop.out_c0, cop.out_rows, cop.out_cols)
                            .copy_from(scratch.view());
                        pool.push(scratch);
                    }
                    emit_span(
                        rec,
                        tcu_obs::Lane::Scheduler,
                        merge_t0,
                        tcu_obs::EventKind::Merge { items: merged },
                    );
                    acct.complete_wave(partition.makespan());
                    emit_span(
                        rec,
                        tcu_obs::Lane::Scheduler,
                        wave_t0,
                        tcu_obs::EventKind::Wave {
                            wave: wave as u32,
                            items: (wend - wstart) as u32,
                            units_busy,
                        },
                    );
                }
                Ok(())
            })();

            // Shut the pool down and join every worker before leaving
            // the scope: joining consumes any worker panic, so a dead
            // worker can never re-raise at scope exit (lost workers
            // were already recovered as quarantines above).
            drop(task_tx);
            for h in handles {
                let _ = h.join();
            }
            run_result
        })
    }

    /// The barrier-free dataflow driver, pinned regardless of
    /// [`crate::exec_mode`]: ops dispatch as their hazard predecessors
    /// commit, on the deterministic plan-time placement (see the
    /// [module docs](self) and [`crate::dataflow`]). Panicking wrapper
    /// over [`Schedule::try_run_dataflow`].
    ///
    /// # Panics
    /// As [`Schedule::run_parallel`].
    pub fn run_dataflow<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        self.try_run_dataflow(mach, env)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Schedule::run_dataflow`] with fault recovery under the default
    /// [`RecoveryPolicy`] and environment tuning, returning errors
    /// instead of panicking.
    pub fn try_run_dataflow<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) -> Result<(), TcuError> {
        self.try_run_dataflow_with(
            mach,
            env,
            RecoveryPolicy::default(),
            DataflowTuning::from_env(),
        )
    }

    /// The fault-tolerant dataflow driver under explicit `policy` and
    /// `tuning`. Resolves the deterministic placement, validates every
    /// op's bindings, charges the whole stream up front in emission
    /// order (so `Stats` and the digest equal the serial run's even
    /// under recovery), then executes it inline or on the worker pool
    /// per `tuning` — the choice, like the steal seed, is byte-
    /// unobservable in elements, `Stats`, and digest. Wall-clock
    /// advances by [`Schedule::dataflow_makespan_seeded`] of the
    /// tuning's seed (plus any charged backoff/recovery); on `Err` the
    /// makespan is not charged and outputs hold only the committed
    /// ops' results (never a torn scratch merge — though under the
    /// inline executor, which writes destinations in place, the failing
    /// op's own region may be partially written by a *foreign* panic).
    pub fn try_run_dataflow_with<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
        policy: RecoveryPolicy,
        tuning: DataflowTuning,
    ) -> Result<(), TcuError> {
        if mach.sqrt_m() != self.sqrt_m {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different tensor-unit size",
            });
        }
        if mach.units() != self.units() {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different unit count",
            });
        }
        if env.shapes != self.buffer_shapes {
            return Err(TcuError::PlanMismatch {
                what: "environment built for a different graph (buffer shapes disagree)",
            });
        }
        let plan = self.compiled()?;
        if let (Some(rec), None) = (env.recorder.clone(), mach.recorder_handle()) {
            mach.enable_recorder(rec);
        }
        let recorder = mach.recorder_handle();
        let stamps = tag_stamps(env);
        let placement = place_dataflow(self, plan, tuning.steal_seed);

        // Snapshot arena, with never-written output-bound reads staged
        // up front — exactly as the wave driver stages them (their
        // content cannot change during the run).
        let arena: Vec<OnceLock<Matrix<T>>> = (0..plan.slots).map(|_| OnceLock::new()).collect();
        for d in &plan.cond_stages {
            if env.inputs[d.buf].is_some() {
                continue;
            }
            let snap = env.outputs[d.buf]
                .as_ref()
                .ok_or(TcuError::Unbound {
                    buffer: d.buf,
                    written: false,
                })?
                .as_view()
                .subview(d.r0, d.c0, d.rows, d.cols)
                .to_matrix();
            let _ = arena[d.slot as usize].set(snap);
        }

        let arena = &arena;
        let written = &env.written;
        let inputs = &env.inputs;
        let outputs = &mut env.outputs;
        let (mut acct, execs) = mach.wave_parts();

        // Upfront validation: every output bound, every read resolvable
        // (input-bound, or output-bound and hence stageable), and the
        // machine splitting ops exactly as the planning unit did —
        // checked for the *whole* stream before anything is charged or
        // executed, since charging happens up front below.
        let s = acct.sqrt_m();
        let tall = acct.unit().supports_tall();
        for (i, cop) in plan.ops.iter().enumerate() {
            if outputs[cop.out_buf].is_none() {
                return Err(TcuError::Unbound {
                    buffer: cop.out_buf,
                    written: true,
                });
            }
            for r in [&cop.a, &cop.b] {
                if inputs[r.buf].is_none() && outputs[r.buf].is_none() {
                    return Err(TcuError::Unbound {
                        buffer: r.buf,
                        written: false,
                    });
                }
            }
            let inv = if tall {
                1
            } else {
                cop.op.charge_rows(s).div_ceil(s)
            } as u32;
            if inv != self.node_invocations[i] {
                return Err(split_mismatch());
            }
        }
        // Charge the entire stream in emission order on the main
        // thread: byte-identical `Stats` and trace to the serial run,
        // no matter how execution interleaves below.
        for cop in &plan.ops {
            acct.charge_wave_op(&cop.op);
        }

        if tuning.use_inline() {
            run_dataflow_inline(
                self,
                plan,
                &placement,
                &mut acct,
                execs,
                arena,
                written,
                inputs,
                outputs,
                &stamps,
                policy,
                recorder.as_deref(),
            )
        } else {
            run_dataflow_threaded(
                self, plan, &placement, &mut acct, execs, arena, written, inputs, outputs, &stamps,
                policy, &recorder,
            )
        }
    }
}

/// Record one closed telemetry span: `t0` is the recorder clock at the
/// phase's start (captured only when recording), the duration is
/// measured here. No-op when recording is off — both arguments are
/// `None` together, so the disabled path is two `Option` checks.
fn emit_span(
    rec: Option<&dyn tcu_obs::Recorder>,
    lane: tcu_obs::Lane,
    t0: Option<u64>,
    kind: tcu_obs::EventKind,
) {
    if let (Some(r), Some(t0)) = (rec, t0) {
        r.record(
            lane,
            tcu_obs::SpanEvent {
                kind,
                t_ns: t0,
                dur_ns: r.now_ns().saturating_sub(t0),
            },
        );
    }
}

/// The plan/machine disagreement error of the wave driver's partition
/// walk (the planning unit and the executing machine must split tall
/// operands identically for the per-invocation assignment to line up).
fn split_mismatch() -> TcuError {
    TcuError::PlanMismatch {
        what: "machine splits ops differently than the schedule planned \
               (tall-operand support must match the planning unit)",
    }
}

/// One op's share of a wave, bound for a specific unit's worker.
struct WaveItem<'v, T: Scalar> {
    /// Compiled-op index (canonical order), for the merge pass.
    idx: usize,
    op: tcu_core::TensorOp,
    a: MatrixView<'v, T>,
    tag: OperandId,
    b: MatrixView<'v, T>,
    scratch: Matrix<T>,
    /// Whether `scratch` came from the recycling pool (telemetry only).
    reused: bool,
    /// Rows the op charges (telemetry annotation for its execute span).
    rows: u64,
    /// Simulated cost charged for the op (telemetry annotation).
    sim_cost: u64,
}

/// Resolve a compiled read on the parallel path: the staged snapshot
/// if its slot is filled (written-buffer reads always, never-written
/// output-bound reads at run start), otherwise zero-copy from the
/// bound input.
fn wave_read<'v, T: Scalar>(
    arena: &'v [OnceLock<Matrix<T>>],
    inputs: &'v [Option<MatrixView<'_, T>>],
    r: &CompiledRead,
) -> Result<MatrixView<'v, T>, TcuError> {
    if let Some(m) = arena[r.slot as usize].get() {
        return Ok(m.view());
    }
    match inputs[r.buf].as_ref() {
        Some(v) => Ok(v.subview(r.r0, r.c0, r.rows, r.cols)),
        None => Err(TcuError::Unbound {
            buffer: r.buf,
            written: false,
        }),
    }
}

/// An exactly-shaped scratch matrix from the recycling pool, or a
/// fresh zeroed one. Recycled scratch is re-zeroed when the op needs
/// zeros (`zero`): an executor is allowed to skip numerics entirely
/// (replay), so a recycled buffer must present the same bytes a fresh
/// allocation would. Accumulating callers skip the zeroing and seed
/// every element from the destination instead.
fn take_scratch<T: Scalar>(
    pool: &mut Vec<Matrix<T>>,
    rows: usize,
    cols: usize,
    zero: bool,
) -> (Matrix<T>, bool) {
    if let Some(pos) = pool
        .iter()
        .position(|m| m.rows() == rows && m.cols() == cols)
    {
        let mut m = pool.swap_remove(pos);
        if zero {
            m.as_mut_slice().fill(T::ZERO);
        }
        (m, true)
    } else {
        (Matrix::zeros(rows, cols), false)
    }
}

/// Resolve one compiled op into its executable work item: operand
/// views (staged snapshots or bound inputs), left-operand cache tag,
/// and a scratch destination — zeros for overwrite ops (the kernel
/// writes every element), the exact destination bytes for accumulating
/// ops (so the kernel performs the identical arithmetic an in-place
/// accumulate would). Also the rebuild path for faulted items: outputs
/// stay untouched until the wave's merge pass, so building the same
/// item twice yields byte-identical operands and seed.
fn build_item<'v, T: Scalar>(
    arena: &'v [OnceLock<Matrix<T>>],
    inputs: &'v [Option<MatrixView<'_, T>>],
    outputs: &[Option<MatrixViewMut<'_, T>>],
    stamps: &[u64],
    pool: &mut Vec<Matrix<T>>,
    plan: &ExecutablePlan,
    idx: usize,
) -> Result<WaveItem<'v, T>, TcuError> {
    let cop = &plan.ops[idx];
    let a = wave_read(arena, inputs, &cop.a)?;
    let b = wave_read(arena, inputs, &cop.b)?;
    let tag = read_tag(&cop.a, stamps[cop.a.buf]);
    let (mut scratch, reused) = take_scratch(pool, cop.op.rows, cop.op.width, !cop.op.accumulate);
    if cop.op.accumulate {
        let host = outputs[cop.out_buf].as_ref().ok_or(TcuError::Unbound {
            buffer: cop.out_buf,
            written: true,
        })?;
        scratch.view_mut().copy_from(host.as_view().subview(
            cop.out_r0,
            cop.out_c0,
            cop.out_rows,
            cop.out_cols,
        ));
    }
    Ok(WaveItem {
        idx,
        op: cop.op,
        a,
        tag,
        b,
        scratch,
        reused,
        // Telemetry annotations the assembly pass stamps from the
        // accountant (a rebuild path copies them from the plan).
        rows: 0,
        sim_cost: 0,
    })
}

/// A recovery annotation produced on a worker thread, recorded into the
/// machine by the main thread (in unit order, so trace annotations are
/// deterministic for a given fault plan).
#[derive(Clone, Copy)]
enum WorkerNote {
    /// A contained fault (transient = retried, permanent = unit died).
    Fault { transient: bool },
    /// A retry attempt; the op identifies the backoff's cost basis.
    Retry {
        attempt: u32,
        op: tcu_core::TensorOp,
    },
}

/// Why a unit's worker stopped executing mid-round.
enum Terminal {
    /// One op stayed transiently faulting through `max_attempts`.
    Exhausted { attempts: u32 },
    /// The unit failed permanently. `dirty` means the panic was not an
    /// [`InjectedFault`] (which fires before any write), so the
    /// in-flight item's scratch must be rebuilt before requeueing.
    Dead { dirty: bool },
}

/// Everything one unit's worker produced in one execution round.
struct UnitOutcome<'v, T: Scalar> {
    /// Completed `(op index, filled scratch)` pairs for the merge.
    done: Vec<(usize, Matrix<T>)>,
    /// Fault/retry annotations, in occurrence order.
    notes: Vec<WorkerNote>,
    /// Why the worker stopped early, if it did.
    terminal: Option<Terminal>,
    /// Items not executed (the in-flight item first).
    leftover: Vec<WaveItem<'v, T>>,
    /// The worker died outside per-op containment and its state is
    /// gone; the caller rebuilds the whole round from the environment.
    lost: bool,
}

impl<T: Scalar> UnitOutcome<'_, T> {
    /// The synthetic outcome for a worker whose channel disconnected.
    fn lost() -> Self {
        Self {
            done: Vec::new(),
            notes: vec![WorkerNote::Fault { transient: false }],
            terminal: Some(Terminal::Dead { dirty: true }),
            leftover: Vec::new(),
            lost: true,
        }
    }
}

/// Run one unit's wave items in canonical order on its executor, with
/// per-op fault containment: every execution is wrapped in
/// `catch_unwind`, transient [`InjectedFault`]s retry in place (bounded
/// by `max_attempts` — each retry consumes the executor's next
/// execution index, so a fault plan spacing its transients out by one
/// index always recovers), and permanent faults or foreign panics stop
/// the unit, returning the unexecuted items for requeueing. Injected
/// faults fire before the executor touches the scratch, so a retried
/// or requeued item's seed is exactly as built.
fn run_items_contained<'v, T: Scalar, E: Executor>(
    exec: &mut E,
    items: Vec<WaveItem<'v, T>>,
    max_attempts: u32,
    rec: Option<&dyn tcu_obs::Recorder>,
    unit: u32,
) -> UnitOutcome<'v, T> {
    let mut out = UnitOutcome {
        done: Vec::new(),
        notes: Vec::new(),
        terminal: None,
        leftover: Vec::new(),
        lost: false,
    };
    let mut iter = items.into_iter();
    while let Some(mut item) = iter.next() {
        let mut attempt = 1u32;
        loop {
            let t0 = rec.map(tcu_obs::Recorder::now_ns);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = exec.execute_tagged(
                    &item.op,
                    item.a,
                    Some(item.tag),
                    item.b,
                    &mut item.scratch.view_mut(),
                );
            }));
            match result {
                Ok(()) => {
                    emit_span(
                        rec,
                        tcu_obs::Lane::Unit(unit),
                        t0,
                        tcu_obs::EventKind::OpExec {
                            unit,
                            rows: item.rows,
                            sim_cost: item.sim_cost,
                        },
                    );
                    out.done.push((item.idx, item.scratch));
                    break;
                }
                Err(payload) => {
                    let terminal = match payload.downcast::<InjectedFault>() {
                        Ok(fault) if fault.kind == FaultKind::Transient => {
                            out.notes.push(WorkerNote::Fault { transient: true });
                            if attempt >= max_attempts {
                                Some(Terminal::Exhausted { attempts: attempt })
                            } else {
                                attempt += 1;
                                out.notes.push(WorkerNote::Retry {
                                    attempt,
                                    op: item.op,
                                });
                                None
                            }
                        }
                        Ok(_) => {
                            out.notes.push(WorkerNote::Fault { transient: false });
                            Some(Terminal::Dead { dirty: false })
                        }
                        Err(_foreign) => {
                            out.notes.push(WorkerNote::Fault { transient: false });
                            Some(Terminal::Dead { dirty: true })
                        }
                    };
                    if let Some(terminal) = terminal {
                        out.terminal = Some(terminal);
                        out.leftover.push(item);
                        out.leftover.extend(iter);
                        return out;
                    }
                    // else: retry the same item on the next loop pass.
                }
            }
        }
    }
    out
}

/// Re-partition `batch` (items displaced off quarantined units) onto
/// the surviving units via LPT over the items' invocation costs,
/// charging the batch's makespan as recovery time. Fails with
/// [`TcuError::AllUnitsQuarantined`] when work remains and no unit
/// survives.
fn requeue_onto_survivors<'v, T: Scalar, U: TensorUnit>(
    acct: &mut WaveAccountant<'_, U>,
    pending: &mut [Vec<WaveItem<'v, T>>],
    batch: Vec<WaveItem<'v, T>>,
    quarantined: &[bool],
    wave: usize,
) -> Result<(), TcuError> {
    if batch.is_empty() {
        return Ok(());
    }
    let survivors: Vec<usize> = (0..pending.len()).filter(|&u| !quarantined[u]).collect();
    if survivors.is_empty() {
        return Err(TcuError::AllUnitsQuarantined {
            wave,
            pending: batch.len(),
        });
    }
    let costs: Vec<u64> = batch
        .iter()
        .map(|it| invocation_cost_of(acct, &it.op))
        .collect();
    let part = partition_lpt(&costs, survivors.len());
    acct.charge_recovery(part.makespan());
    for (item, &slot) in batch.into_iter().zip(&part.assignment) {
        pending[survivors[slot]].push(item);
    }
    Ok(())
}

/// The simulated cost recovery LPT weighs an op at: what the executing
/// machine's unit charges for its invocations (the shared basis of the
/// wave and dataflow requeue paths).
fn invocation_cost_of<U: TensorUnit>(acct: &WaveAccountant<'_, U>, op: &tcu_core::TensorOp) -> u64 {
    let s = acct.sqrt_m();
    let n = op.charge_rows(s);
    if acct.unit().supports_tall() {
        acct.unit().invocation_cost(n)
    } else {
        (n.div_ceil(s) as u64) * acct.unit().invocation_cost(s)
    }
}

/// One worker→main message of the threaded dataflow driver: a batch's
/// outcome, or a drop-guard notice that the worker died outside per-op
/// containment (the outcome rides in a `Box` so the two variants stay
/// close in size).
enum DfMsg<'v, T: Scalar> {
    Done(usize, Box<UnitOutcome<'v, T>>),
    Gone(usize),
}

/// Arms a dataflow worker with a death notice: if the worker thread
/// unwinds anywhere outside `run_items_contained`'s per-op containment,
/// the guard's drop sends [`DfMsg::Gone`], so the main thread — which
/// blocks on one shared result channel — can never wait forever on a
/// reply that will not come. Disarmed on normal shutdown.
struct GoneGuard<'v, T: Scalar> {
    unit: usize,
    tx: std::sync::mpsc::Sender<DfMsg<'v, T>>,
    armed: bool,
}

impl<T: Scalar> Drop for GoneGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(DfMsg::Gone(self.unit));
        }
    }
}

/// Stage op `idx`'s written-buffer reads whose snapshot slots are still
/// empty — the dataflow driver's incremental replacement for the wave
/// driver's per-wave staging pass. Sound at first-reader dispatch time:
/// the reader's hazard predecessors (every generation-`gen` writer
/// among them) have committed, and any later writer is hazard-gated
/// behind this reader's own commit, so the region holds exactly the
/// bytes the read's key names.
fn stage_pending_reads<T: Scalar>(
    arena: &[OnceLock<Matrix<T>>],
    written: &[bool],
    outputs: &[Option<MatrixViewMut<'_, T>>],
    plan: &ExecutablePlan,
    idx: usize,
) -> Result<u32, TcuError> {
    let cop = &plan.ops[idx];
    let mut staged = 0;
    for r in [&cop.a, &cop.b] {
        if !written[r.buf] || arena[r.slot as usize].get().is_some() {
            continue;
        }
        let snap = outputs[r.buf]
            .as_ref()
            .ok_or(TcuError::Unbound {
                buffer: r.buf,
                written: false,
            })?
            .as_view()
            .subview(r.r0, r.c0, r.rows, r.cols)
            .to_matrix();
        let _ = arena[r.slot as usize].set(snap);
        staged += 1;
    }
    Ok(staged)
}

/// Re-partition displaced op *indices* (a quarantined unit's in-flight
/// and queued work) onto the survivors via LPT, charging the batch's
/// makespan as recovery time, and insert each into its survivor's
/// queue beyond the dispatch cursor, keeping every queue sorted by
/// `(placement start, emission index)`. That invariant is the dataflow
/// executor's deadlock-freedom proof: hazard edges only ever point to
/// strictly larger `(start, index)` keys, so the uncommitted op with
/// the globally smallest key always sits at some live queue's front
/// with every predecessor committed — dispatch can always progress.
/// (Items are rebuilt from the untouched environment at their next
/// dispatch, which also covers a dirty in-flight scratch.)
#[allow(clippy::too_many_arguments)]
fn requeue_displaced<U: TensorUnit>(
    acct: &mut WaveAccountant<'_, U>,
    plan: &ExecutablePlan,
    start: &[u64],
    queues: &mut [Vec<u32>],
    cursor: &[usize],
    displaced: Vec<usize>,
    quarantined: &[bool],
    level: usize,
) -> Result<(), TcuError> {
    if displaced.is_empty() {
        return Ok(());
    }
    let survivors: Vec<usize> = (0..queues.len()).filter(|&v| !quarantined[v]).collect();
    if survivors.is_empty() {
        return Err(TcuError::AllUnitsQuarantined {
            wave: level,
            pending: displaced.len(),
        });
    }
    let costs: Vec<u64> = displaced
        .iter()
        .map(|&j| invocation_cost_of(acct, &plan.ops[j].op))
        .collect();
    let part = partition_lpt(&costs, survivors.len());
    acct.charge_recovery(part.makespan());
    for (&j, &slot) in displaced.iter().zip(&part.assignment) {
        let v = survivors[slot];
        let key = (start[j], j as u32);
        let pos = queues[v][cursor[v]..].partition_point(|&x| (start[x as usize], x) < key);
        queues[v].insert(cursor[v] + pos, j as u32);
    }
    Ok(())
}

/// Quarantine `unit` on the inline dataflow path: re-assign every not-
/// yet-executed op of the unit (`rest` is the unexecuted suffix of the
/// placement's global order, current op first) onto the survivors via
/// LPT, charging the batch's makespan as recovery time. The global
/// execution order itself is unchanged — it respects every hazard edge
/// regardless of unit assignment — so only `unit_of` moves.
fn quarantine_inline<U: TensorUnit>(
    acct: &mut WaveAccountant<'_, U>,
    plan: &ExecutablePlan,
    rest: &[u32],
    unit_of: &mut [u32],
    quarantined: &mut [bool],
    unit: usize,
    level: usize,
) -> Result<(), TcuError> {
    quarantined[unit] = true;
    let displaced: Vec<usize> = rest
        .iter()
        .map(|&x| x as usize)
        .filter(|&j| unit_of[j] as usize == unit)
        .collect();
    acct.record_quarantine(unit, displaced.len());
    let survivors: Vec<usize> = (0..quarantined.len())
        .filter(|&v| !quarantined[v])
        .collect();
    if survivors.is_empty() {
        return Err(TcuError::AllUnitsQuarantined {
            wave: level,
            pending: displaced.len(),
        });
    }
    let costs: Vec<u64> = displaced
        .iter()
        .map(|&j| invocation_cost_of(acct, &plan.ops[j].op))
        .collect();
    let part = partition_lpt(&costs, survivors.len());
    acct.charge_recovery(part.makespan());
    for (&j, &slot) in displaced.iter().zip(&part.assignment) {
        unit_of[j] = survivors[slot] as u32;
    }
    Ok(())
}

/// The inline dataflow executor: replay the placement's global
/// `(start, unit, index)` order serial-style — no workers, no
/// channels, no scratch — executing each op on its assigned unit's
/// executor directly into the bound destination. Per-unit op sequences
/// are the global order filtered by unit, i.e. exactly the threaded
/// executor's queues, so pack-cache counters and fault-plan outcomes
/// match the threaded driver op for op. The hot loop is the serial
/// runtime's (on-demand staging, zero-copy reads, in-place writes),
/// which is what makes single-core dataflow dispatch overhead ~zero.
#[allow(clippy::too_many_arguments)]
fn run_dataflow_inline<'v, T: Scalar, U: TensorUnit, E: Executor>(
    sched: &Schedule,
    plan: &ExecutablePlan,
    placement: &DataflowPlacement,
    acct: &mut WaveAccountant<'_, U>,
    execs: &mut [E],
    arena: &'v [OnceLock<Matrix<T>>],
    written: &[bool],
    inputs: &'v [Option<MatrixView<'_, T>>],
    outputs: &mut [Option<MatrixViewMut<'_, T>>],
    stamps: &[u64],
    policy: RecoveryPolicy,
    recorder: Option<&dyn tcu_obs::Recorder>,
) -> Result<(), TcuError> {
    let max_attempts = policy.max_attempts.max(1);
    let s = acct.sqrt_m();
    let mut unit_of = placement.unit_of.clone();
    let mut quarantined = vec![false; execs.len()];
    for (k, &idx) in placement.order.iter().enumerate() {
        let i = idx as usize;
        let cop = &plan.ops[i];
        let level = sched.nodes()[i].level;
        let stage_t0 = recorder.map(tcu_obs::Recorder::now_ns);
        let staged = stage_pending_reads(arena, written, outputs, plan, i)?;
        if staged > 0 {
            emit_span(
                recorder,
                tcu_obs::Lane::Scheduler,
                stage_t0,
                tcu_obs::EventKind::Stage { copies: staged },
            );
        }
        let rows = cop.op.charge_rows(s) as u64;
        let sim_cost = acct.op_cost(&cop.op);
        let u0 = unit_of[i] as usize;
        acct.record_ready(u0, 1);
        if placement.home[i] as usize != u0 {
            acct.record_steal(placement.home[i] as usize, u0);
        }
        let mut attempt = 1u32;
        loop {
            let u = unit_of[i] as usize;
            let a = wave_read(arena, inputs, &cop.a)?;
            let b = wave_read(arena, inputs, &cop.b)?;
            let tag = read_tag(&cop.a, stamps[cop.a.buf]);
            let host = outputs[cop.out_buf]
                .as_mut()
                .unwrap_or_else(|| unreachable!("output bound (validated up front)"));
            let mut out_view = host.subview_mut(cop.out_r0, cop.out_c0, cop.out_rows, cop.out_cols);
            let t0 = recorder.map(tcu_obs::Recorder::now_ns);
            let exec = &mut execs[u];
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = exec.execute_tagged(&cop.op, a, Some(tag), b, &mut out_view);
            }));
            match result {
                Ok(()) => {
                    emit_span(
                        recorder,
                        tcu_obs::Lane::Unit(u as u32),
                        t0,
                        tcu_obs::EventKind::OpExec {
                            unit: u as u32,
                            rows,
                            sim_cost,
                        },
                    );
                    break;
                }
                Err(payload) => match payload.downcast::<InjectedFault>() {
                    Ok(fault) if fault.kind == FaultKind::Transient => {
                        acct.record_fault(u, true);
                        if attempt >= max_attempts {
                            return Err(TcuError::RetriesExhausted {
                                unit: u,
                                wave: level,
                                attempts: attempt,
                            });
                        }
                        attempt += 1;
                        let _ = acct.record_retry(u, attempt, cop.op.charge_rows(s));
                    }
                    Ok(_) => {
                        // Injected permanent faults fire before the
                        // executor writes, so the destination is intact
                        // and the op re-executes cleanly on a survivor
                        // (with a fresh retry budget, as after a wave
                        // requeue).
                        acct.record_fault(u, false);
                        if !policy.quarantine {
                            return Err(TcuError::UnitFault {
                                unit: u,
                                wave: level,
                            });
                        }
                        quarantine_inline(
                            acct,
                            plan,
                            &placement.order[k..],
                            &mut unit_of,
                            &mut quarantined,
                            u,
                            level,
                        )?;
                        attempt = 1;
                    }
                    Err(_foreign) => {
                        // A real executor bug may have half-written its
                        // in-place destination — inline execution has
                        // no scratch to rebuild from, so the run fails
                        // (the scratch-based drivers recover instead).
                        acct.record_fault(u, false);
                        return Err(TcuError::UnitFault {
                            unit: u,
                            wave: level,
                        });
                    }
                },
            }
        }
    }
    acct.complete_wave(placement.makespan);
    Ok(())
}

/// The threaded dataflow executor: per-unit worker threads drain the
/// placement's fixed per-unit queues, the main thread dispatches each
/// idle unit's maximal ready prefix as one batched message, and
/// commits arriving scratches — releasing hazard successors — as
/// frontiers clear. No barrier ever synchronizes units; determinism
/// comes from the fixed queues (per-unit op sequences cannot depend on
/// timing) and hazard-gated commits (overlapping writes retire in
/// emission order).
#[allow(clippy::too_many_arguments)]
fn run_dataflow_threaded<'v, T: Scalar, U: TensorUnit, E: Executor>(
    sched: &Schedule,
    plan: &ExecutablePlan,
    placement: &DataflowPlacement,
    acct: &mut WaveAccountant<'_, U>,
    execs: &mut [E],
    arena: &'v [OnceLock<Matrix<T>>],
    written: &[bool],
    inputs: &'v [Option<MatrixView<'_, T>>],
    outputs: &mut [Option<MatrixViewMut<'_, T>>],
    stamps: &[u64],
    policy: RecoveryPolicy,
    recorder: &Option<std::sync::Arc<dyn tcu_obs::Recorder>>,
) -> Result<(), TcuError> {
    let units = execs.len();
    let max_attempts = policy.max_attempts.max(1);
    let s = acct.sqrt_m();
    let mut queues = placement.unit_order.clone();
    let mut cursor = vec![0usize; units];
    let mut indeg = plan.preds.clone();
    let mut in_flight = vec![false; units];
    let mut dispatched: Vec<Vec<usize>> = vec![Vec::new(); units];
    let mut quarantined = vec![false; units];
    let mut pool: Vec<Matrix<T>> = Vec::new();
    let mut remaining = plan.ops();

    let run_result = std::thread::scope(|scope| {
        let (result_tx, result_rx) = std::sync::mpsc::channel::<DfMsg<'v, T>>();
        let mut task_tx = Vec::with_capacity(units);
        let mut handles = Vec::with_capacity(units);
        for (u, exec) in execs.iter_mut().enumerate() {
            let (ttx, trx) = std::sync::mpsc::channel::<(Vec<WaveItem<'v, T>>, u32)>();
            let rtx = result_tx.clone();
            let rec = recorder.clone();
            handles.push(scope.spawn(move || {
                let mut guard = GoneGuard {
                    unit: u,
                    tx: rtx,
                    armed: true,
                };
                while let Ok((items, max)) = trx.recv() {
                    let outcome = run_items_contained(exec, items, max, rec.as_deref(), u as u32);
                    if guard.tx.send(DfMsg::Done(u, Box::new(outcome))).is_err() {
                        break;
                    }
                }
                guard.armed = false;
            }));
            task_tx.push(ttx);
        }

        let run_result = (|| -> Result<(), TcuError> {
            loop {
                // Dispatch: every idle, live unit takes its maximal
                // ready prefix — staged, built, and sent as ONE
                // message (the batched replacement for per-wave
                // per-round sends).
                for u in 0..units {
                    if quarantined[u] || in_flight[u] || cursor[u] >= queues[u].len() {
                        continue;
                    }
                    let rec = recorder.as_deref();
                    let stage_t0 = rec.map(tcu_obs::Recorder::now_ns);
                    let mut staged = 0u32;
                    let mut batch: Vec<WaveItem<'v, T>> = Vec::new();
                    let mut idxs: Vec<usize> = Vec::new();
                    while cursor[u] < queues[u].len() {
                        let i = queues[u][cursor[u]] as usize;
                        if indeg[i] != 0 {
                            break;
                        }
                        staged += stage_pending_reads(arena, written, outputs, plan, i)?;
                        let mut item =
                            build_item(arena, inputs, outputs, stamps, &mut pool, plan, i)?;
                        let cop = &plan.ops[i];
                        item.rows = cop.op.charge_rows(s) as u64;
                        item.sim_cost = acct.op_cost(&cop.op);
                        if let Some(r) = rec {
                            let t = r.now_ns();
                            emit_span(
                                rec,
                                tcu_obs::Lane::Scheduler,
                                Some(t),
                                tcu_obs::EventKind::ScratchAcquire {
                                    unit: u as u32,
                                    reused: item.reused,
                                    bytes: (cop.op.rows * cop.op.width * std::mem::size_of::<T>())
                                        as u64,
                                },
                            );
                        }
                        batch.push(item);
                        idxs.push(i);
                        cursor[u] += 1;
                    }
                    if batch.is_empty() {
                        continue;
                    }
                    if staged > 0 {
                        emit_span(
                            rec,
                            tcu_obs::Lane::Scheduler,
                            stage_t0,
                            tcu_obs::EventKind::Stage { copies: staged },
                        );
                    }
                    acct.record_ready(u, batch.len());
                    for &i in &idxs {
                        let h = placement.home[i] as usize;
                        if h != u {
                            acct.record_steal(h, u);
                        }
                    }
                    dispatched[u] = idxs;
                    in_flight[u] = true;
                    // A failed send means the worker is already dead;
                    // its drop guard queued a `Gone`, which the receive
                    // path below recovers from (outputs are untouched,
                    // so the batch rebuilds byte-identically).
                    let _ = task_tx[u].send((batch, max_attempts));
                }
                if remaining == 0 {
                    return Ok(());
                }
                if !in_flight.iter().any(|&b| b) {
                    return Err(TcuError::PlanMismatch {
                        what: "dataflow dispatch stalled with work remaining (driver bug)",
                    });
                }
                let Ok(msg) = result_rx.recv() else {
                    return Err(TcuError::PlanMismatch {
                        what: "dataflow result channel closed (driver bug)",
                    });
                };
                match msg {
                    DfMsg::Done(u, outcome) => {
                        let UnitOutcome {
                            done,
                            notes,
                            terminal,
                            leftover,
                            lost: _,
                        } = *outcome;
                        in_flight[u] = false;
                        dispatched[u].clear();
                        for note in &notes {
                            match *note {
                                WorkerNote::Fault { transient } => {
                                    acct.record_fault(u, transient);
                                }
                                WorkerNote::Retry { attempt, op } => {
                                    let _ = acct.record_retry(u, attempt, op.charge_rows(s));
                                }
                            }
                        }
                        // Commit: merge the batch's scratches in
                        // emission order, then release each op's
                        // hazard successors. Commit-on-arrival is safe
                        // because overlapping writers are themselves
                        // hazard-ordered — a later writer cannot even
                        // dispatch before the earlier one commits.
                        if !done.is_empty() {
                            let rec = recorder.as_deref();
                            let merge_t0 = rec.map(tcu_obs::Recorder::now_ns);
                            let merged = done.len() as u32;
                            let mut done = done;
                            done.sort_unstable_by_key(|(idx, _)| *idx);
                            for (idx, scratch) in done {
                                let cop = &plan.ops[idx];
                                outputs[cop.out_buf]
                                    .as_mut()
                                    .unwrap_or_else(|| {
                                        unreachable!("output bound (validated up front)")
                                    })
                                    .subview_mut(cop.out_r0, cop.out_c0, cop.out_rows, cop.out_cols)
                                    .copy_from(scratch.view());
                                pool.push(scratch);
                                for &succ in plan.successors_of(idx) {
                                    indeg[succ as usize] -= 1;
                                }
                                remaining -= 1;
                            }
                            emit_span(
                                rec,
                                tcu_obs::Lane::Scheduler,
                                merge_t0,
                                tcu_obs::EventKind::Merge { items: merged },
                            );
                        }
                        match terminal {
                            None => {}
                            Some(Terminal::Exhausted { attempts }) => {
                                let lvl =
                                    leftover.first().map_or(0, |it| sched.nodes()[it.idx].level);
                                return Err(TcuError::RetriesExhausted {
                                    unit: u,
                                    wave: lvl,
                                    attempts,
                                });
                            }
                            Some(Terminal::Dead { dirty: _ }) => {
                                let lvl =
                                    leftover.first().map_or(0, |it| sched.nodes()[it.idx].level);
                                if !policy.quarantine {
                                    return Err(TcuError::UnitFault { unit: u, wave: lvl });
                                }
                                quarantined[u] = true;
                                let mut displaced: Vec<usize> = leftover
                                    .into_iter()
                                    .map(|it| {
                                        pool.push(it.scratch);
                                        it.idx
                                    })
                                    .collect();
                                displaced
                                    .extend(queues[u][cursor[u]..].iter().map(|&x| x as usize));
                                cursor[u] = queues[u].len();
                                acct.record_quarantine(u, displaced.len());
                                requeue_displaced(
                                    acct,
                                    plan,
                                    &placement.start,
                                    &mut queues,
                                    &cursor,
                                    displaced,
                                    &quarantined,
                                    lvl,
                                )?;
                            }
                        }
                    }
                    DfMsg::Gone(u) => {
                        // The worker died outside per-op containment:
                        // its whole in-flight batch is lost, but
                        // nothing of it was committed, so outputs are
                        // pristine and the batch requeues by index.
                        in_flight[u] = false;
                        acct.record_fault(u, false);
                        let lvl = dispatched[u].first().map_or(0, |&i| sched.nodes()[i].level);
                        if !policy.quarantine {
                            return Err(TcuError::UnitFault { unit: u, wave: lvl });
                        }
                        quarantined[u] = true;
                        let mut displaced = std::mem::take(&mut dispatched[u]);
                        displaced.extend(queues[u][cursor[u]..].iter().map(|&x| x as usize));
                        cursor[u] = queues[u].len();
                        acct.record_quarantine(u, displaced.len());
                        requeue_displaced(
                            acct,
                            plan,
                            &placement.start,
                            &mut queues,
                            &cursor,
                            displaced,
                            &quarantined,
                            lvl,
                        )?;
                    }
                }
            }
        })();

        drop(task_tx);
        drop(result_tx);
        for h in handles {
            let _ = h.join();
        }
        run_result
    });
    if run_result.is_ok() {
        acct.complete_wave(placement.makespan);
    }
    run_result
}

/// The soundness precondition of concurrent wave execution: no two ops
/// of one wave write overlapping output elements. The scheduler
/// guarantees this by construction — `Node::conflicts` flags every
/// write overlap and the leveler separates conflicting nodes — so the
/// wave driver re-checks it in debug builds only (the check is
/// quadratic in wave width).
///
/// # Panics
/// Panics if two ops of the wave write overlapping regions.
fn assert_wave_outputs_disjoint(wave: &[crate::ScheduledNode]) {
    for (i, x) in wave.iter().enumerate() {
        for y in &wave[i + 1..] {
            assert!(
                !x.node.out.overlaps(&y.node.out),
                "wave holds overlapping output regions {:?} and {:?} — \
                 concurrent execution would race; this is a scheduler bug",
                x.node.out,
                y.node.out
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpGraph, Scheduler};
    use tcu_core::{ReplayExecutor, TensorOp};
    use tcu_linalg::ops::matmul_naive;
    use tcu_linalg::Matrix;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
        })
    }

    /// Record, plan, run: the smallest end-to-end flow — one strip
    /// streamed against two adjacent weight blocks on a unit twice as
    /// wide, which the scheduler collapses into a single invocation.
    #[test]
    fn two_block_columns_collapse_and_match_the_oracle() {
        let d = 16usize;
        let a = pseudo(d, 4, 1);
        let b = pseudo(4, 8, 2);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, 4);
        let bb = g.buffer("B", 4, 8);
        let cb = g.buffer("C", d, 8);
        for j in 0..2 {
            g.record(
                TensorOp::padded(d, 4, 4),
                crate::OperandRef::new(ab, 0, 0, d, 4),
                crate::OperandRef::new(bb, 0, j * 4, 4, 4),
                crate::OperandRef::new(cb, 0, j * 4, d, 4),
            );
        }
        let mut mach = TcuMachine::model(64, 1000);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), 1);
        assert_eq!(plan.nodes()[0].fused, 2);

        let mut c = Matrix::<i64>::zeros(d, 8);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c, matmul_naive(&a, &b));
        // One invocation charged instead of two: d·√m + ℓ once.
        assert_eq!(mach.time(), (d * 8) as u64 + 1000);
        assert_eq!(mach.stats().tensor_calls, 1);
    }

    #[test]
    fn run_charges_exactly_what_the_plan_predicts() {
        let d = 32usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let s = 8usize;
        for j in 0..d / s {
            for k in 0..d / s {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::with_executor(
            tcu_core::ModelTensorUnit::new(64, 9),
            ReplayExecutor::default(),
        );
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (a, b) = (pseudo(d, d, 3), pseudo(d, d, 4));
        let mut c = Matrix::<i64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(mach.stats().tensor_calls, plan.invocations());
        assert_eq!(mach.stats().tensor_rows, plan.charged_rows());
        assert_eq!(mach.stats().tensor_time, plan.tensor_time());
        // Replay executor ran no numerics.
        assert_eq!(c, Matrix::<i64>::zeros(d, d));
    }

    #[test]
    fn pack_cache_hits_across_the_run_and_fresh_envs_miss() {
        let d = 32usize;
        let s = 8usize;
        let b = pseudo(d, d, 6);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::model(s * s, 7);
        mach.executor_mut().enable_pack_cache(2 * q);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), q * q, "√m-wide blocks cannot merge");

        let run_once = |mach: &mut TcuMachine<_, _>, seed: i64| {
            let aa = pseudo(d, d, seed);
            let mut c = Matrix::<i64>::zeros(d, d);
            let mut env = ExecEnv::new(&g);
            env.bind_input(ab, aa.view());
            env.bind_input(bb, b.view());
            env.bind_output(cb, c.view_mut());
            plan.run(mach, &mut env);
            (c, aa)
        };
        let (c1, a1) = run_once(&mut mach, 5);
        assert_eq!(c1, matmul_naive(&a1, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        // q distinct strips, q² lookups: q misses, q(q−1) hits.
        assert_eq!(stats.misses, q as u64);
        assert_eq!(stats.hits, (q * (q - 1)) as u64);

        // A second environment re-packs (new epoch): no stale reuse
        // even though buffer ids coincide.
        let (c2, a2) = run_once(&mut mach, 50);
        assert_eq!(c2, matmul_naive(&a2, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 2 * q as u64);
    }

    /// A two-stage RAW pipeline in one graph: M = A·B, then C = M·B —
    /// the shape the pre-versioned runtime forced into two graphs.
    fn pipeline_graph(d: usize, s: usize) -> (OpGraph, [crate::BufferId; 4]) {
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let mb = g.buffer("M", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for (src, dst) in [(ab, mb), (mb, cb)] {
            for j in 0..q {
                for k in 0..q {
                    g.record(
                        TensorOp {
                            accumulate: true,
                            ..TensorOp::padded(d, s, s)
                        },
                        crate::OperandRef::new(src, 0, k * s, d, s),
                        crate::OperandRef::new(bb, k * s, j * s, s, s),
                        crate::OperandRef::new(dst, 0, j * s, d, s),
                    );
                }
            }
        }
        (g, [ab, bb, mb, cb])
    }

    #[test]
    fn two_stage_pipeline_plans_and_matches_the_chained_oracle() {
        let (d, s) = (16usize, 4usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 7);
        let b = pseudo(d, d, 8);
        let mut mach = TcuMachine::model(s * s, 11);
        mach.executor_mut().enable_pack_cache(2 * d / s);
        let plan = Scheduler::new().plan(&g, mach.unit());
        // Stage 2's reads of M force it into later waves than stage 1's
        // accumulate chain into the same columns.
        assert!(plan.waves() > d / s, "RAW must add depth");
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let want_m = matmul_naive(&a, &b);
        assert_eq!(m, want_m);
        assert_eq!(c, matmul_naive(&want_m, &b));
        // Charges are the recorded stream's: 2 stages × q² ops, d rows.
        let q = (d / s) as u64;
        assert_eq!(mach.stats().tensor_calls, 2 * q * q);
    }

    #[test]
    fn pipeline_writes_retire_stale_strips_in_the_pack_cache() {
        // One graph: write M, read M (gen 1), overwrite M, read again
        // (gen 2). The second read must repack — tags differ — and the
        // result must reflect the overwrite.
        let s = 4usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", s, s);
        let bb = g.buffer("B", s, s);
        let mb = g.buffer("M", s, s);
        let c1b = g.buffer("C1", s, s);
        let c2b = g.buffer("C2", s, s);
        let xb = g.buffer("X", s, s);
        let whole = |buf| crate::OperandRef::new(buf, 0, 0, s, s);
        let op = TensorOp::padded(s, s, s);
        g.record(op, whole(ab), whole(bb), whole(mb)); // M = A·B
        g.record(op, whole(mb), whole(bb), whole(c1b)); // C1 = M·B
        g.record(op, whole(xb), whole(bb), whole(mb)); // M = X·B
        g.record(op, whole(mb), whole(bb), whole(c2b)); // C2 = M'·B
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(8);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.waves(), 4, "WAR + RAW serialize all four ops");

        let (a, b, x) = (pseudo(s, s, 21), pseudo(s, s, 22), pseudo(s, s, 23));
        let (mut m, mut c1, mut c2) = (
            Matrix::<i64>::zeros(s, s),
            Matrix::<i64>::zeros(s, s),
            Matrix::<i64>::zeros(s, s),
        );
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_input(xb, x.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(c1b, c1.view_mut());
        env.bind_output(c2b, c2.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c1, matmul_naive(&matmul_naive(&a, &b), &b));
        assert_eq!(c2, matmul_naive(&matmul_naive(&x, &b), &b));
        assert_eq!(m, matmul_naive(&x, &b));
        // Both M reads packed fresh strips (generations 1 and 2).
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn rerunning_one_env_repacks_written_reads_but_reuses_frozen_inputs() {
        // Accumulating pipeline: M += A·B, then C += M·B. Running the
        // schedule twice against ONE environment doubles M before the
        // second stage reads it, so run 2's C contribution is 2·(A·B)·B
        // and the total must be 3·(A·B)·B. A cache serving run 1's
        // packed M strips to run 2 (the per-env tag scheme) would
        // compute 2× instead — so written-buffer reads must repack per
        // run, while the frozen input A keeps hitting across runs.
        let (d, s) = (16usize, 4usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 61);
        let b = pseudo(d, d, 62);
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(4 * d / s);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let after_first = mach.executor().pack_cache_stats().expect("cache on");
        plan.run(&mut mach, &mut env);

        let ab_prod = matmul_naive(&a, &b);
        assert_eq!(m, ab_prod.scale(2));
        assert_eq!(c, matmul_naive(&ab_prod, &b).scale(3));
        // Frozen input strips (A) hit across runs; written-buffer strips
        // (M) repacked in run 2: q fresh misses, no more.
        let after_second = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(
            after_second.misses - after_first.misses,
            (d / s) as u64,
            "exactly the written-buffer strips repack on the second run"
        );
    }

    #[test]
    fn run_parallel_matches_serial_run_and_the_planned_makespan() {
        let (d, s, p) = (32usize, 8usize, 3usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 31);
        let b = pseudo(d, d, 32);
        let unit = tcu_core::ModelTensorUnit::new(s * s, 17);
        let plan = Scheduler::new().with_units(p).plan(&g, &unit);

        let mut serial = TcuMachine::new(unit);
        let (mut m1, mut c1) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m1.view_mut());
        env.bind_output(cb, c1.view_mut());
        plan.run(&mut serial, &mut env);

        let mut par = ParallelTcuMachine::new(unit, p);
        par.enable_pack_caches(2 * d / s);
        let (mut m2, mut c2) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m2.view_mut());
        env.bind_output(cb, c2.view_mut());
        plan.run_parallel(&mut par, &mut env);

        // Bit-identical results, identical per-op charges, and the
        // multi-unit wall-clock the planner predicted.
        assert_eq!((m2, c2), (m1, c1));
        assert_eq!(par.stats(), serial.stats());
        assert_eq!(par.time(), plan.planned_parallel_time());
        assert!(plan.makespan() < plan.tensor_time(), "3 units must help");
        // The units' caches collectively served every lookup.
        let (mut lookups, mut misses) = (0u64, 0u64);
        for u in 0..p {
            if let Some(c) = par.unit_executor(u).pack_cache_stats() {
                lookups += c.lookups;
                misses += c.misses;
            }
        }
        assert_eq!(lookups, plan.invocations());
        assert!(misses < lookups, "schedule placement must enable reuse");
    }

    #[test]
    #[should_panic(expected = "different unit count")]
    fn run_parallel_rejects_mismatched_unit_count() {
        let (g, [_, _, _, _]) = pipeline_graph(8, 4);
        let unit = tcu_core::ModelTensorUnit::new(16, 0);
        let plan = Scheduler::new().with_units(2).plan(&g, &unit);
        let mut par = ParallelTcuMachine::<_, tcu_core::HostExecutor>::new(unit, 3);
        let mut env = ExecEnv::<i64>::new(&g);
        plan.run_parallel(&mut par, &mut env);
    }

    #[test]
    fn schur_update_reads_and_writes_one_buffer() {
        // The gauss kernel-D shape: X's trailing columns accumulate the
        // product of X's own pivot panel with external weights.
        let (d, s) = (8usize, 4usize);
        let mut g = OpGraph::new();
        let xb = g.buffer("X", d, d);
        let wb = g.buffer("W", s, s);
        g.record(
            TensorOp {
                accumulate: true,
                ..TensorOp::padded(s, s, s)
            },
            crate::OperandRef::new(xb, s, 0, s, s),
            crate::OperandRef::new(wb, 0, 0, s, s),
            crate::OperandRef::new(xb, s, s, s, s),
        );
        let mut mach = TcuMachine::model(s * s, 0);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let mut x = pseudo(d, d, 41);
        let want = {
            let mut w = x.clone();
            let prod = matmul_naive(&x.block(s, 0, s, s), &pseudo(s, s, 42));
            w.subview_mut(s, s, s, s).add_assign(prod.view());
            w
        };
        let wmat = pseudo(s, s, 42);
        let mut env = ExecEnv::new(&g);
        env.bind_input(wb, wmat.view());
        env.bind_output(xb, x.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(x, want);
    }

    #[test]
    #[should_panic(expected = "bind it mutably")]
    fn written_buffer_rejects_input_binding() {
        let (g, [_, _, mb, _]) = pipeline_graph(8, 4);
        let m = pseudo(8, 8, 1);
        let mut env = ExecEnv::new(&g);
        env.bind_input(mb, m.view());
    }

    /// Build one wave's worth of scheduled nodes writing the given
    /// output rectangles of a shared buffer (for the disjointness
    /// check's own tests — a real `Scheduler` can never emit such a
    /// wave, which is exactly why the assertion exists).
    fn wave_writing(outs: &[(usize, usize, usize, usize)]) -> Vec<crate::ScheduledNode> {
        let s = 4usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", s, s);
        let bb = g.buffer("B", s, s);
        let cb = g.buffer("C", 4 * s, 4 * s);
        outs.iter()
            .map(|&(r0, c0, rows, cols)| crate::ScheduledNode {
                node: crate::Node {
                    op: TensorOp::padded(rows, s, cols),
                    a: crate::OperandRef::new(ab, 0, 0, rows, s),
                    b: crate::OperandRef::new(bb, 0, 0, s, cols),
                    out: crate::OperandRef::new(cb, r0, c0, rows, cols),
                    a_gen: 0,
                    b_gen: 0,
                    out_gen: 0,
                },
                level: 0,
                fused: 1,
                a_gen: 0,
                b_gen: 0,
            })
            .collect()
    }

    #[test]
    fn disjoint_wave_outputs_pass_the_assertion() {
        // Adjacent but non-overlapping rectangles, including a shared
        // edge — exactly the tightest layout a wave legally holds.
        let wave = wave_writing(&[(0, 0, 4, 4), (0, 4, 4, 4), (4, 0, 4, 4), (4, 4, 8, 8)]);
        assert_wave_outputs_disjoint(&wave);
    }

    #[test]
    #[should_panic(expected = "overlapping output regions")]
    fn disjointness_assertion_catches_an_overlapping_wave() {
        // The second rectangle shares element (4, 4) with the third —
        // a deliberate scheduling-invariant violation.
        let wave = wave_writing(&[(0, 0, 4, 4), (0, 4, 8, 4), (4, 4, 4, 4)]);
        assert_wave_outputs_disjoint(&wave);
    }
}
