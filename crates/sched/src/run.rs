//! Schedule execution: bind data to the graph's logical buffers and
//! drive the planned op stream through a [`TcuMachine`] — or across the
//! units of a [`ParallelTcuMachine`].
//!
//! [`ExecEnv`] maps every [`BufferId`] to real storage — immutable
//! [`MatrixView`]s for buffers the graph only reads, mutable views for
//! buffers it writes — and [`Schedule::run`] issues the emitted nodes
//! in serial order through [`TcuMachine::issue_into_tagged`]. Each left
//! operand is tagged with an [`OperandId`] whose generation combines a
//! process-unique stamp (the environment's *epoch* for frozen
//! input-bound reads, a fresh per-run stamp for reads of written
//! buffers — see `TagStamps`) with the operand's emission-order content
//! version from the schedule — so a pack-caching executor reuses packed
//! strips across every invocation that streams the same region *at the
//! same version*, a write in a pipeline retires the stale strip (its
//! readers carry the bumped generation), and re-running a schedule
//! against mutated outputs can never be served last run's bytes.
//!
//! # Reading written buffers (pipelines)
//!
//! A versioned graph may read regions of buffers it also writes — the
//! Schur-complement update streaming the pivot panel of the matrix it
//! updates, or a second pipeline stage consuming the first stage's
//! product. Such reads are *staged*: the runtime snapshots the region
//! once per `(region, generation)` into a run-local buffer and streams
//! the snapshot. The snapshot is taken when execution first reaches a
//! read of that version, which the hazard order guarantees is after
//! exactly the writes the version names — and it is taken once, not per
//! op, so a pivot panel re-streamed against every block column costs
//! one gather per stage, the same marshalling the eager blocked
//! algorithms perform. (Simulated cost is untouched either way: in the
//! model, operand marshalling is covered by the invocation charge.)
//!
//! Accounting flows through the machine exactly as eager execution
//! does: per-op model charges into `Stats` and the trace. What changes
//! with scheduling is *which* (coalesced) ops are issued and in what
//! (canonical) order — never how an issued op is charged.
//!
//! # Multi-unit execution
//!
//! [`Schedule::run_parallel`] consumes [`Schedule::wave_partitions`]
//! directly: every wave's invocations are issued on the units the
//! planner's LPT partition assigned them to (each unit owning its own
//! executor, hence its own pack cache), and the machine's wall-clock
//! advances by one makespan per wave. Numerics still execute in the
//! schedule's canonical serial order — waves hold only independent ops,
//! so this equals any true interleaving — which keeps multi-unit runs
//! bit-identical to serial runs and to each other for every unit count.
//!
//! # Fault tolerance
//!
//! Every entry point has a fallible `try_*` form returning
//! [`TcuError`] — binding mistakes, plan/machine mismatches, and op
//! contract violations come back as values; the legacy `bind_*`/`run*`
//! names are thin wrappers that panic with the error's `Display`
//! (preserving every historical panic message). On top of that,
//! [`Schedule::try_run_parallel`] *recovers* from unit faults: each
//! worker contains per-op panics with `catch_unwind`, transient faults
//! (an [`InjectedFault`] payload, as injected by
//! [`tcu_core::FaultyExecutor`]) are retried in place with simulated
//! backoff charged into wall-clock, and permanently failing units are
//! quarantined — for the rest of the *run*, not just the wave — with
//! their unexecuted items re-partitioned onto the survivors via
//! [`partition_lpt`]. Recovery is unobservable in results by
//! construction: per-op `Stats`/trace charges happen on the main thread
//! before numerics, faulted ops re-execute against intact (or
//! re-seeded) scratch, and fault/retry/quarantine trace annotations are
//! excluded from the digest — so a recoverable faulty run's elements,
//! `Stats`, and digest are byte-identical to the fault-free run's, with
//! only `time()` (backoff + requeue makespans) and
//! [`tcu_core::FaultStats`] recording that recovery happened. A
//! non-[`InjectedFault`] worker panic (a real executor bug) is treated
//! as a permanent unit fault whose in-flight scratch is conservatively
//! rebuilt from the environment before requeueing.

use crate::graph::{BufferId, OperandRef};
use crate::scheduler::Schedule;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tcu_core::{
    partition_lpt, BindRole, Executor, FaultKind, InjectedFault, OperandId, ParallelTcuMachine,
    RecoveryPolicy, TcuError, TcuMachine, TensorUnit,
};
use tcu_linalg::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// Process-wide epoch allocator: every environment gets a distinct
/// stamp, so operand tags from different environments (different data)
/// can never collide in an executor cache.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Data bindings for one run of a schedule: per-buffer views, split
/// into read-only inputs and mutable (written, possibly also read)
/// outputs.
#[derive(Debug)]
pub struct ExecEnv<'a, T: Scalar> {
    epoch: u64,
    shapes: Vec<(usize, usize)>,
    written: Vec<bool>,
    inputs: Vec<Option<MatrixView<'a, T>>>,
    outputs: Vec<Option<MatrixViewMut<'a, T>>>,
}

/// Key of one staged read snapshot: buffer, rectangle, content version.
type StageKey = (usize, usize, usize, usize, usize, u32);

impl<'a, T: Scalar> ExecEnv<'a, T> {
    /// Fresh bindings for `graph`'s buffers (all unbound, new epoch).
    #[must_use]
    pub fn new(graph: &crate::OpGraph) -> Self {
        let shapes = (0..graph.buffer_count())
            .map(|i| graph.buffer_shape(BufferId(i)))
            .collect::<Vec<_>>();
        let written = (0..graph.buffer_count())
            .map(|i| graph.buffer_written(BufferId(i)))
            .collect::<Vec<_>>();
        Self {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            inputs: vec![None; shapes.len()],
            outputs: shapes.iter().map(|_| None).collect(),
            written,
            shapes,
        }
    }

    /// The environment's cache-key epoch (diagnostic).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bind a read-only buffer to a view of its exact registered shape,
    /// returning the binding error instead of panicking. Fails on a
    /// shape mismatch, an id from another graph, or a buffer the graph
    /// writes (written buffers need [`Self::try_bind_output`], and
    /// reads of them resolve against per-op generations).
    pub fn try_bind_input(
        &mut self,
        id: BufferId,
        view: MatrixView<'a, T>,
    ) -> Result<(), TcuError> {
        let expected = *self.shapes.get(id.0).ok_or(TcuError::PlanMismatch {
            what: "binding names a buffer from another graph",
        })?;
        if (view.rows(), view.cols()) != expected {
            return Err(TcuError::BindShape {
                buffer: id.0,
                role: BindRole::Input,
                expected,
                got: (view.rows(), view.cols()),
            });
        }
        if self.written[id.0] {
            return Err(TcuError::BindWrittenAsInput { buffer: id.0 });
        }
        self.inputs[id.0] = Some(view);
        Ok(())
    }

    /// Bind a read-only buffer to a view of its exact registered shape.
    ///
    /// # Panics
    /// Panics on shape mismatch, an id from another graph, or a buffer
    /// the graph writes (written buffers need [`Self::bind_output`], and
    /// reads of them resolve against per-op generations).
    pub fn bind_input(&mut self, id: BufferId, view: MatrixView<'a, T>) {
        self.try_bind_input(id, view)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Bind a written buffer to a mutable view of its registered shape,
    /// returning the binding error instead of panicking. Reads the
    /// graph performs on the same buffer (pipelines) are served from
    /// generation-keyed snapshots of this binding.
    pub fn try_bind_output(
        &mut self,
        id: BufferId,
        view: MatrixViewMut<'a, T>,
    ) -> Result<(), TcuError> {
        let expected = *self.shapes.get(id.0).ok_or(TcuError::PlanMismatch {
            what: "binding names a buffer from another graph",
        })?;
        if (view.rows(), view.cols()) != expected {
            return Err(TcuError::BindShape {
                buffer: id.0,
                role: BindRole::Output,
                expected,
                got: (view.rows(), view.cols()),
            });
        }
        self.outputs[id.0] = Some(view);
        Ok(())
    }

    /// Bind a written buffer to a mutable view of its registered shape.
    /// Reads the graph performs on the same buffer (pipelines) are
    /// served from generation-keyed snapshots of this binding.
    ///
    /// # Panics
    /// Panics on shape mismatch or an id from another graph.
    pub fn bind_output(&mut self, id: BufferId, view: MatrixViewMut<'a, T>) {
        self.try_bind_output(id, view)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Snapshot `region` at content version `gen` into `staged` if a
    /// read of it must be served from a written buffer and no snapshot
    /// of that version exists yet. `host` is the current op's output
    /// binding, temporarily moved out of `self.outputs` (the
    /// same-buffer read-while-write case reads through it).
    fn ensure_staged(
        &self,
        staged: &mut HashMap<StageKey, Matrix<T>>,
        region: &OperandRef,
        gen: u32,
        out_buf: usize,
        host: &MatrixViewMut<'_, T>,
    ) -> Result<(), TcuError> {
        let buf = region.buf.0;
        if self.inputs[buf].is_some() {
            return Ok(());
        }
        let key = stage_key(region, gen);
        if staged.contains_key(&key) {
            return Ok(());
        }
        let src = if buf == out_buf {
            host.as_view()
        } else {
            self.outputs[buf]
                .as_ref()
                .ok_or(TcuError::Unbound {
                    buffer: buf,
                    written: false,
                })?
                .as_view()
        };
        let snap = src
            .subview(region.r0, region.c0, region.rows, region.cols)
            .to_matrix();
        staged.insert(key, snap);
        Ok(())
    }

    /// Snapshot `region` at content version `gen` if it reads a written
    /// buffer and no snapshot of that version exists yet — the wave
    /// driver's staging pass. Unlike [`Self::ensure_staged`], no output
    /// binding has been moved out when this runs, so same-buffer reads
    /// go straight through the bound view. Waves never read a region a
    /// same-wave op writes (hazards split them into different waves), so
    /// staging a whole wave up front sees exactly the bytes per-op lazy
    /// staging would.
    fn stage_region(
        &self,
        staged: &mut HashMap<StageKey, Matrix<T>>,
        region: &OperandRef,
        gen: u32,
    ) -> Result<(), TcuError> {
        let buf = region.buf.0;
        if self.inputs[buf].is_some() {
            return Ok(());
        }
        let key = stage_key(region, gen);
        if staged.contains_key(&key) {
            return Ok(());
        }
        let snap = self.outputs[buf]
            .as_ref()
            .ok_or(TcuError::Unbound {
                buffer: buf,
                written: false,
            })?
            .as_view()
            .subview(region.r0, region.c0, region.rows, region.cols)
            .to_matrix();
        staged.insert(key, snap);
        Ok(())
    }

    /// The view a read operand streams from: the bound input region
    /// (zero-copy), or the staged snapshot of the named version.
    fn read_region<'s>(
        &'s self,
        staged: &'s HashMap<StageKey, Matrix<T>>,
        region: &OperandRef,
        gen: u32,
    ) -> MatrixView<'s, T> {
        match self.inputs[region.buf.0].as_ref() {
            Some(v) => v.subview(region.r0, region.c0, region.rows, region.cols),
            None => staged
                .get(&stage_key(region, gen))
                .unwrap_or_else(|| unreachable!("snapshot staged before use"))
                .view(),
        }
    }

    /// Resolve one emitted node's operands for issue: move its output
    /// binding out of the environment (the caller hands it back after
    /// issuing), snapshot any written-buffer reads at their versions,
    /// and build the left operand's cache tag. The staging/tagging
    /// protocol lives here, once, for both [`Schedule::run`] and
    /// [`Schedule::run_parallel`].
    #[allow(clippy::type_complexity)]
    fn prepare_node<'s>(
        &'s mut self,
        staged: &'s mut HashMap<StageKey, Matrix<T>>,
        stamps: &TagStamps,
        sn: &crate::ScheduledNode,
    ) -> Result<
        (
            MatrixView<'s, T>,
            MatrixView<'s, T>,
            OperandId,
            MatrixViewMut<'a, T>,
        ),
        TcuError,
    > {
        let node = &sn.node;
        let out_buf = node.out.buf.0;
        let host = self.outputs[out_buf].take().ok_or(TcuError::Unbound {
            buffer: out_buf,
            written: true,
        })?;
        // Stage before taking the read views: a staging failure must
        // not leave the output binding moved out.
        if let Err(e) = self
            .ensure_staged(staged, &node.a, sn.a_gen, out_buf, &host)
            .and_then(|()| self.ensure_staged(staged, &node.b, sn.b_gen, out_buf, &host))
        {
            self.outputs[out_buf] = Some(host);
            return Err(e);
        }
        let a = self.read_region(staged, &node.a, sn.a_gen);
        let b = self.read_region(staged, &node.b, sn.b_gen);
        let input_bound = self.inputs[node.a.buf.0].is_some();
        let tag = operand_tag(stamps, input_bound, &node.a, sn.a_gen);
        Ok((a, b, tag, host))
    }
}

fn stage_key(r: &OperandRef, gen: u32) -> StageKey {
    (r.buf.0, r.r0, r.c0, r.rows, r.cols, gen)
}

/// Cache-tag stamps for one execution of a schedule.
///
/// A tag is sound only while equal tags guarantee equal bytes, so two
/// stamps with different lifetimes back the two read sources:
///
/// * **input-bound** buffers are borrowed, hence frozen, for the
///   environment's whole lifetime — their reads carry the environment
///   *epoch*, so packed strips survive across repeated runs of one
///   environment (the plan-once / run-many contract);
/// * **output-bound** buffers mutate as the schedule executes, and a
///   *second* run of the same environment starts from different bytes
///   (e.g. accumulates applied twice) at the same emission generations —
///   so their reads carry a fresh per-run stamp, retiring every strip
///   packed from written data when the run ends.
///
/// Both stamps are drawn from one process-wide counter, so they can
/// never collide with each other. The stamp occupies the upper 32 bits
/// of `OperandId::generation` (emission generation below): aliasing
/// would need 2³² environments+runs while a strip from the first still
/// sits in a bounded FIFO cache — noted here rather than guarded,
/// since the guard would be a panic after four billion runs.
struct TagStamps {
    epoch: u64,
    run: u64,
}

fn operand_tag(stamps: &TagStamps, input_bound: bool, region: &OperandRef, gen: u32) -> OperandId {
    let stamp = if input_bound {
        stamps.epoch
    } else {
        stamps.run
    };
    OperandId {
        buffer: region.buf.0 as u64,
        generation: stamp.wrapping_shl(32) | u64::from(gen),
        origin: (region.r0, region.c0),
        extent: (region.rows, region.cols),
    }
}

impl Schedule {
    /// Execute the planned stream on `mach` with `env`'s bindings: each
    /// emitted node issues one tagged tensor instruction (charged and
    /// traced by the machine exactly like an eager call), outputs land
    /// in the bound views. The serial order is the schedule's canonical
    /// order; on a pack-caching host executor, repeated left-operand
    /// regions are packed once per content version per environment.
    ///
    /// # Panics
    /// Panics if the machine's `√m` differs from the one the schedule
    /// was planned for, if the environment's buffer shapes disagree
    /// with the planned graph's, or if a referenced buffer is unbound.
    pub fn run<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut TcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        self.try_run(mach, env).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Schedule::run`], returning errors instead of panicking:
    /// plan/machine mismatches, op contract violations, and unbound
    /// buffers come back as [`TcuError`]s. On `Err`, the bound outputs
    /// hold whatever the already-issued prefix of the stream wrote (an
    /// error aborts mid-stream, it does not roll back). Fault
    /// *recovery* (retry, quarantine) is a property of the parallel
    /// wave driver — see [`Schedule::try_run_parallel`]; the serial
    /// path has no worker threads to contain, so an executor panic here
    /// propagates.
    pub fn try_run<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut TcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) -> Result<(), TcuError> {
        if mach.sqrt_m() != self.sqrt_m {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different tensor-unit size",
            });
        }
        if env.shapes != self.buffer_shapes {
            return Err(TcuError::PlanMismatch {
                what: "environment built for a different graph (buffer shapes disagree)",
            });
        }
        let stamps = TagStamps {
            epoch: env.epoch,
            run: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        };
        let mut staged: HashMap<StageKey, Matrix<T>> = HashMap::new();
        for sn in self.nodes() {
            let node = &sn.node;
            node.op.check(self.sqrt_m)?;
            let (a, b, tag, mut host) = env.prepare_node(&mut staged, &stamps, sn)?;
            let mut out_view =
                host.subview_mut(node.out.r0, node.out.c0, node.out.rows, node.out.cols);
            mach.issue_into_tagged(node.op, a, Some(tag), b, &mut out_view);
            env.outputs[node.out.buf.0] = Some(host);
        }
        Ok(())
    }

    /// Execute the planned stream *across the units* of a parallel
    /// machine, consuming [`Schedule::wave_partitions`] directly — and,
    /// unlike the serial [`Schedule::run`], on real threads: each wave
    /// spawns one scoped worker per unit with work, running that unit's
    /// assigned ops on that unit's own executor (hence its own pack
    /// cache). Concurrency is safe by construction — ops sharing a wave
    /// never overlap in any written region, which a debug assertion
    /// re-verifies per wave — and deterministic by design:
    ///
    /// * **accounting** (per-op `Stats` charges and trace events) is
    ///   recorded on the main thread in the schedule's canonical order
    ///   *before* the wave's numerics run, exactly as a serial scheduled
    ///   run charges them; wall-clock advances by one makespan per wave,
    ///   so `mach.time()` lands on [`Schedule::makespan`] (plus scalar
    ///   work);
    /// * **numerics** land in per-op scratch buffers — pre-seeded with
    ///   the destination bytes for accumulating ops, so the kernel
    ///   performs the identical arithmetic on identical values — and the
    ///   main thread merges the disjoint results back in canonical
    ///   order, making elements bit-identical to [`Schedule::run`] for
    ///   every unit count;
    /// * **pack-cache counters** are per unit, and each worker consumes
    ///   its ops in canonical order, so every unit's executor sees the
    ///   exact op subsequence a serial placement-following run would —
    ///   cache stats cannot depend on thread interleaving.
    ///
    /// A wave whose work all lands on one unit runs inline on the
    /// calling thread (same executor, same order — only spawn overhead
    /// is saved).
    ///
    /// # Panics
    /// Panics if the machine's `√m` or unit count differs from what the
    /// schedule was planned for, if the machine's unit splits ops
    /// differently than the planning unit did (tall support must
    /// agree), if the environment's buffer shapes disagree with the
    /// planned graph's, if a referenced buffer is unbound, or if a
    /// fault was unrecoverable under the default [`RecoveryPolicy`].
    pub fn run_parallel<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        self.try_run_parallel(mach, env)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Schedule::run_parallel`] with fault recovery under the default
    /// [`RecoveryPolicy`] (3 attempts per op, quarantine on). See
    /// [`Schedule::try_run_parallel_with`].
    pub fn try_run_parallel<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) -> Result<(), TcuError> {
        self.try_run_parallel_with(mach, env, RecoveryPolicy::default())
    }

    /// The fault-tolerant parallel driver: [`Schedule::run_parallel`]
    /// semantics, plus containment and recovery of worker faults under
    /// `policy`.
    ///
    /// Every per-op panic on a worker is caught. An [`InjectedFault`]
    /// payload marked transient is retried on the same unit (bounded by
    /// `policy.max_attempts`, each retry charging simulated backoff
    /// into wall-clock); one marked permanent — or any *other* panic
    /// payload, i.e. a real executor bug — kills the unit: with
    /// `policy.quarantine` the unit is retired for the rest of the run
    /// and its unexecuted items are re-partitioned onto the survivors
    /// (charging the requeued batch's LPT makespan), without it the run
    /// fails with [`TcuError::UnitFault`]. A run out of retries fails
    /// with [`TcuError::RetriesExhausted`]; losing every unit with work
    /// still pending fails with [`TcuError::AllUnitsQuarantined`].
    ///
    /// For every *recoverable* fault schedule the recovery contract
    /// holds: output elements, `Stats`, and the trace digest are
    /// byte-identical to the fault-free run, with the recovery story
    /// visible only in `time()`, [`tcu_core::FaultStats`], and the
    /// digest-exempt fault/retry/quarantine trace annotations. On
    /// `Err`, outputs hold the completed waves' results only — the
    /// failing wave's scratches are discarded, never half-merged.
    pub fn try_run_parallel_with<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
        policy: RecoveryPolicy,
    ) -> Result<(), TcuError> {
        if mach.sqrt_m() != self.sqrt_m {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different tensor-unit size",
            });
        }
        if mach.units() != self.units() {
            return Err(TcuError::PlanMismatch {
                what: "schedule was planned for a different unit count",
            });
        }
        if env.shapes != self.buffer_shapes {
            return Err(TcuError::PlanMismatch {
                what: "environment built for a different graph (buffer shapes disagree)",
            });
        }
        let stamps = TagStamps {
            epoch: env.epoch,
            run: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        };
        let mut staged: HashMap<StageKey, Matrix<T>> = HashMap::new();
        // Quarantine outlives the wave: a unit that failed permanently
        // stays retired for the remainder of this run.
        let mut quarantined = vec![false; mach.units()];
        let nodes = self.nodes();
        let (mut start, mut wave) = (0usize, 0usize);
        while start < nodes.len() {
            let mut end = start + 1;
            while end < nodes.len() && nodes[end].level == nodes[start].level {
                end += 1;
            }
            self.run_wave(
                mach,
                env,
                &mut staged,
                &stamps,
                &nodes[start..end],
                wave,
                policy,
                &mut quarantined,
            )?;
            wave += 1;
            start = end;
        }
        Ok(())
    }

    /// Execute one wave of independent ops across the machine's units,
    /// containing and recovering worker faults under `policy`.
    #[allow(clippy::too_many_arguments)]
    fn run_wave<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut ParallelTcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
        staged: &mut HashMap<StageKey, Matrix<T>>,
        stamps: &TagStamps,
        wave_nodes: &[crate::ScheduledNode],
        wave: usize,
        policy: RecoveryPolicy,
        quarantined: &mut [bool],
    ) -> Result<(), TcuError> {
        if cfg!(debug_assertions) {
            assert_wave_outputs_disjoint(wave_nodes);
        }
        // Staging pass: snapshot every written-buffer read of the wave
        // before anything executes (see `stage_region` for why this
        // matches lazy per-op staging byte-for-byte).
        for sn in wave_nodes {
            env.stage_region(staged, &sn.node.a, sn.a_gen)?;
            env.stage_region(staged, &sn.node.b, sn.b_gen)?;
        }
        let staged = &*staged;
        // Immutable reborrow for the assembly/execution phases: items
        // hold views into the environment; the merge pass below resumes
        // mutable access once every item is dropped.
        let envr = &*env;

        // Charging + assembly pass, in canonical order: meter each op,
        // resolve its operand views and cache tag, and build its work
        // item on the unit the planner assigned its first invocation
        // to. Items bound for already-quarantined units are displaced
        // and re-partitioned onto the survivors below. Charges always
        // happen here, on the main thread, in canonical order — faults
        // can delay numerics, never reorder accounting.
        let s = mach.sqrt_m();
        let tall = mach.unit().supports_tall();
        let units = mach.units();
        let partition = &self.wave_partitions()[wave];
        let split_mismatch = TcuError::PlanMismatch {
            what: "machine splits ops differently than the schedule planned \
                   (tall-operand support must match the planning unit)",
        };
        let mut pending: Vec<Vec<WaveItem<'_, T>>> = (0..units).map(|_| Vec::new()).collect();
        let mut displaced: Vec<WaveItem<'_, T>> = Vec::new();
        let mut inv_at = 0usize;
        for (idx, sn) in wave_nodes.iter().enumerate() {
            let node = &sn.node;
            node.op.check(s)?;
            let invocations = if tall {
                1
            } else {
                node.op.charge_rows(s).div_ceil(s)
            };
            let Some(&unit) = partition.assignment.get(inv_at) else {
                return Err(split_mismatch);
            };
            inv_at += invocations;
            mach.charge_wave_op(&node.op);
            let item = build_item(envr, staged, stamps, idx, sn)?;
            if quarantined[unit] {
                displaced.push(item);
            } else {
                pending[unit].push(item);
            }
        }
        if inv_at != partition.assignment.len() {
            return Err(split_mismatch);
        }
        requeue_onto_survivors(mach, &mut pending, displaced, quarantined, wave)?;

        // Execution rounds: one scoped thread per unit with work, each
        // running its items in canonical order on its own executor with
        // per-op fault containment. A round ends when every worker
        // returns; units that died during the round are quarantined and
        // their unexecuted items re-partitioned, then the next round
        // runs the requeued work. Single-worker rounds run inline — the
        // identical code path minus the spawn.
        let max_attempts = policy.max_attempts.max(1);
        let mut finished: Vec<(usize, Matrix<T>)> = Vec::with_capacity(wave_nodes.len());
        loop {
            let busy = pending.iter().filter(|v| !v.is_empty()).count();
            if busy == 0 {
                break;
            }
            // Wave indices assigned this round, per unit — enough to
            // rebuild a unit's entire round from the environment if its
            // worker dies so hard its outcome is lost (outputs are
            // pristine until the merge pass, so rebuilt items are
            // byte-identical to the originals).
            let assigned: Vec<Vec<usize>> = pending
                .iter()
                .map(|v| v.iter().map(|it| it.idx).collect())
                .collect();
            let mut outcomes: Vec<(usize, UnitOutcome<'_, T>)> = Vec::with_capacity(busy);
            if busy == 1 {
                if let Some(u) = pending.iter().position(|v| !v.is_empty()) {
                    let items = std::mem::take(&mut pending[u]);
                    outcomes.push((
                        u,
                        run_items_contained(&mut mach.unit_executors_mut()[u], items, max_attempts),
                    ));
                }
            } else {
                let round: Vec<Vec<WaveItem<'_, T>>> =
                    pending.iter_mut().map(std::mem::take).collect();
                let execs = mach.unit_executors_mut();
                outcomes = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(busy);
                    for (u, (exec, items)) in execs.iter_mut().zip(round).enumerate() {
                        if !items.is_empty() {
                            handles.push((
                                u,
                                scope.spawn(move || run_items_contained(exec, items, max_attempts)),
                            ));
                        }
                    }
                    // Every handle is joined — a dead worker can never
                    // deadlock the scope or abort the process; its
                    // escape hatch is the `lost` outcome below.
                    handles
                        .into_iter()
                        .map(|(u, h)| match h.join() {
                            Ok(outcome) => (u, outcome),
                            Err(_) => (u, UnitOutcome::lost()),
                        })
                        .collect()
                });
            }

            // Process outcomes in unit order (deterministic for a given
            // fault plan): record fault/retry annotations, collect
            // completed scratches, quarantine dead units and gather
            // their unexecuted items for re-partitioning.
            let mut requeue: Vec<WaveItem<'_, T>> = Vec::new();
            for (u, outcome) in outcomes {
                for note in &outcome.notes {
                    match *note {
                        WorkerNote::Fault { transient } => mach.record_fault(u, transient),
                        WorkerNote::Retry { attempt, op } => {
                            let _ = mach.record_retry(u, attempt, op.charge_rows(s));
                        }
                    }
                }
                finished.extend(outcome.done);
                match outcome.terminal {
                    None => {}
                    Some(Terminal::Exhausted { attempts }) => {
                        return Err(TcuError::RetriesExhausted {
                            unit: u,
                            wave,
                            attempts,
                        });
                    }
                    Some(Terminal::Dead { dirty }) => {
                        if !policy.quarantine {
                            return Err(TcuError::UnitFault { unit: u, wave });
                        }
                        quarantined[u] = true;
                        let mut leftover = outcome.leftover;
                        if outcome.lost {
                            // The whole round is rebuilt: nothing the
                            // worker did reached the outputs, and the
                            // charges were recorded at assembly.
                            leftover = assigned[u]
                                .iter()
                                .map(|&idx| build_item(envr, staged, stamps, idx, &wave_nodes[idx]))
                                .collect::<Result<_, _>>()?;
                        } else if dirty {
                            // A non-injected panic may have fired mid-
                            // write: rebuild the in-flight item's
                            // scratch from the (untouched) environment.
                            if let Some(first) = leftover.first_mut() {
                                *first = build_item(
                                    envr,
                                    staged,
                                    stamps,
                                    first.idx,
                                    &wave_nodes[first.idx],
                                )?;
                            }
                        }
                        mach.record_quarantine(u, leftover.len());
                        requeue.extend(leftover);
                    }
                }
            }
            requeue_onto_survivors(mach, &mut pending, requeue, quarantined, wave)?;
        }
        drop(pending);

        // Merge pass, canonical order: copy each scratch into its
        // (disjoint) destination region of the bound outputs. Reached
        // only when every item of the wave completed — an error above
        // discards the wave's scratches instead of half-merging them.
        finished.sort_unstable_by_key(|(idx, _)| *idx);
        for (idx, scratch) in finished {
            let out = &wave_nodes[idx].node.out;
            env.outputs[out.buf.0]
                .as_mut()
                .unwrap_or_else(|| unreachable!("output bound (checked at assembly)"))
                .subview_mut(out.r0, out.c0, out.rows, out.cols)
                .copy_from(scratch.view());
        }
        mach.complete_wave(partition.makespan());
        Ok(())
    }
}

/// One op's share of a wave, bound for a specific unit's worker.
struct WaveItem<'v, T: Scalar> {
    /// Position within the wave (canonical order), for the merge pass.
    idx: usize,
    op: tcu_core::TensorOp,
    a: MatrixView<'v, T>,
    tag: OperandId,
    b: MatrixView<'v, T>,
    scratch: Matrix<T>,
}

/// Resolve one wave node into its executable work item: operand views
/// (bound inputs or staged snapshots), left-operand cache tag, and a
/// scratch destination — zeros for overwrite ops (the kernel writes
/// every element), the exact destination bytes for accumulating ops
/// (so the kernel performs the identical arithmetic an in-place
/// accumulate would). Also the rebuild path for faulted items: outputs
/// stay untouched until the wave's merge pass, so building the same
/// item twice yields byte-identical operands and seed.
fn build_item<'s, T: Scalar>(
    env: &'s ExecEnv<'_, T>,
    staged: &'s HashMap<StageKey, Matrix<T>>,
    stamps: &TagStamps,
    idx: usize,
    sn: &crate::ScheduledNode,
) -> Result<WaveItem<'s, T>, TcuError> {
    let node = &sn.node;
    let a = env.read_region(staged, &node.a, sn.a_gen);
    let b = env.read_region(staged, &node.b, sn.b_gen);
    assert!(
        node.op.matches((a.rows(), a.cols()), (b.rows(), b.cols())),
        "operands do not match the op descriptor"
    );
    let out = &node.out;
    assert_eq!(
        (out.rows, out.cols),
        (node.op.rows, node.op.width),
        "output region does not match the op descriptor"
    );
    let input_bound = env.inputs[node.a.buf.0].is_some();
    let tag = operand_tag(stamps, input_bound, &node.a, sn.a_gen);
    let mut scratch = Matrix::<T>::zeros(node.op.rows, node.op.width);
    if node.op.accumulate {
        let host = env.outputs[out.buf.0].as_ref().ok_or(TcuError::Unbound {
            buffer: out.buf.0,
            written: true,
        })?;
        scratch
            .view_mut()
            .copy_from(host.as_view().subview(out.r0, out.c0, out.rows, out.cols));
    }
    Ok(WaveItem {
        idx,
        op: node.op,
        a,
        tag,
        b,
        scratch,
    })
}

/// A recovery annotation produced on a worker thread, recorded into the
/// machine by the main thread (in unit order, so trace annotations are
/// deterministic for a given fault plan).
#[derive(Clone, Copy)]
enum WorkerNote {
    /// A contained fault (transient = retried, permanent = unit died).
    Fault { transient: bool },
    /// A retry attempt; the op identifies the backoff's cost basis.
    Retry {
        attempt: u32,
        op: tcu_core::TensorOp,
    },
}

/// Why a unit's worker stopped executing mid-round.
enum Terminal {
    /// One op stayed transiently faulting through `max_attempts`.
    Exhausted { attempts: u32 },
    /// The unit failed permanently. `dirty` means the panic was not an
    /// [`InjectedFault`] (which fires before any write), so the
    /// in-flight item's scratch must be rebuilt before requeueing.
    Dead { dirty: bool },
}

/// Everything one unit's worker produced in one execution round.
struct UnitOutcome<'v, T: Scalar> {
    /// Completed `(wave index, filled scratch)` pairs for the merge.
    done: Vec<(usize, Matrix<T>)>,
    /// Fault/retry annotations, in occurrence order.
    notes: Vec<WorkerNote>,
    /// Why the worker stopped early, if it did.
    terminal: Option<Terminal>,
    /// Items not executed (the in-flight item first).
    leftover: Vec<WaveItem<'v, T>>,
    /// The worker died outside per-op containment and its state is
    /// gone; the caller rebuilds the whole round from the environment.
    lost: bool,
}

impl<T: Scalar> UnitOutcome<'_, T> {
    /// The synthetic outcome for a worker whose join failed.
    fn lost() -> Self {
        Self {
            done: Vec::new(),
            notes: vec![WorkerNote::Fault { transient: false }],
            terminal: Some(Terminal::Dead { dirty: true }),
            leftover: Vec::new(),
            lost: true,
        }
    }
}

/// Run one unit's wave items in canonical order on its executor, with
/// per-op fault containment: every execution is wrapped in
/// `catch_unwind`, transient [`InjectedFault`]s retry in place (bounded
/// by `max_attempts` — each retry consumes the executor's next
/// execution index, so a fault plan spacing its transients out by one
/// index always recovers), and permanent faults or foreign panics stop
/// the unit, returning the unexecuted items for requeueing. Injected
/// faults fire before the executor touches the scratch, so a retried
/// or requeued item's seed is exactly as built.
fn run_items_contained<'v, T: Scalar, E: Executor>(
    exec: &mut E,
    items: Vec<WaveItem<'v, T>>,
    max_attempts: u32,
) -> UnitOutcome<'v, T> {
    let mut out = UnitOutcome {
        done: Vec::new(),
        notes: Vec::new(),
        terminal: None,
        leftover: Vec::new(),
        lost: false,
    };
    let mut iter = items.into_iter();
    while let Some(mut item) = iter.next() {
        let mut attempt = 1u32;
        loop {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = exec.execute_tagged(
                    &item.op,
                    item.a,
                    Some(item.tag),
                    item.b,
                    &mut item.scratch.view_mut(),
                );
            }));
            match result {
                Ok(()) => {
                    out.done.push((item.idx, item.scratch));
                    break;
                }
                Err(payload) => {
                    let terminal = match payload.downcast::<InjectedFault>() {
                        Ok(fault) if fault.kind == FaultKind::Transient => {
                            out.notes.push(WorkerNote::Fault { transient: true });
                            if attempt >= max_attempts {
                                Some(Terminal::Exhausted { attempts: attempt })
                            } else {
                                attempt += 1;
                                out.notes.push(WorkerNote::Retry {
                                    attempt,
                                    op: item.op,
                                });
                                None
                            }
                        }
                        Ok(_) => {
                            out.notes.push(WorkerNote::Fault { transient: false });
                            Some(Terminal::Dead { dirty: false })
                        }
                        Err(_foreign) => {
                            out.notes.push(WorkerNote::Fault { transient: false });
                            Some(Terminal::Dead { dirty: true })
                        }
                    };
                    if let Some(terminal) = terminal {
                        out.terminal = Some(terminal);
                        out.leftover.push(item);
                        out.leftover.extend(iter);
                        return out;
                    }
                    // else: retry the same item on the next loop pass.
                }
            }
        }
    }
    out
}

/// Re-partition `batch` (items displaced off quarantined units) onto
/// the surviving units via LPT over the items' invocation costs,
/// charging the batch's makespan as recovery time. Fails with
/// [`TcuError::AllUnitsQuarantined`] when work remains and no unit
/// survives.
fn requeue_onto_survivors<'v, T: Scalar, U: TensorUnit, E: Executor>(
    mach: &mut ParallelTcuMachine<U, E>,
    pending: &mut [Vec<WaveItem<'v, T>>],
    batch: Vec<WaveItem<'v, T>>,
    quarantined: &[bool],
    wave: usize,
) -> Result<(), TcuError> {
    if batch.is_empty() {
        return Ok(());
    }
    let survivors: Vec<usize> = (0..pending.len()).filter(|&u| !quarantined[u]).collect();
    if survivors.is_empty() {
        return Err(TcuError::AllUnitsQuarantined {
            wave,
            pending: batch.len(),
        });
    }
    let s = mach.sqrt_m();
    let tall = mach.unit().supports_tall();
    let costs: Vec<u64> = batch
        .iter()
        .map(|it| {
            let n = it.op.charge_rows(s);
            if tall {
                mach.unit().invocation_cost(n)
            } else {
                (n.div_ceil(s) as u64) * mach.unit().invocation_cost(s)
            }
        })
        .collect();
    let part = partition_lpt(&costs, survivors.len());
    mach.charge_recovery(part.makespan());
    for (item, &slot) in batch.into_iter().zip(&part.assignment) {
        pending[survivors[slot]].push(item);
    }
    Ok(())
}

/// The soundness precondition of concurrent wave execution: no two ops
/// of one wave write overlapping output elements. The scheduler
/// guarantees this by construction — `Node::conflicts` flags every
/// write overlap and the leveler separates conflicting nodes — so the
/// wave driver re-checks it in debug builds only (the check is
/// quadratic in wave width).
///
/// # Panics
/// Panics if two ops of the wave write overlapping regions.
fn assert_wave_outputs_disjoint(wave: &[crate::ScheduledNode]) {
    for (i, x) in wave.iter().enumerate() {
        for y in &wave[i + 1..] {
            assert!(
                !x.node.out.overlaps(&y.node.out),
                "wave holds overlapping output regions {:?} and {:?} — \
                 concurrent execution would race; this is a scheduler bug",
                x.node.out,
                y.node.out
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpGraph, Scheduler};
    use tcu_core::{ReplayExecutor, TensorOp};
    use tcu_linalg::ops::matmul_naive;
    use tcu_linalg::Matrix;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
        })
    }

    /// Record, plan, run: the smallest end-to-end flow — one strip
    /// streamed against two adjacent weight blocks on a unit twice as
    /// wide, which the scheduler collapses into a single invocation.
    #[test]
    fn two_block_columns_collapse_and_match_the_oracle() {
        let d = 16usize;
        let a = pseudo(d, 4, 1);
        let b = pseudo(4, 8, 2);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, 4);
        let bb = g.buffer("B", 4, 8);
        let cb = g.buffer("C", d, 8);
        for j in 0..2 {
            g.record(
                TensorOp::padded(d, 4, 4),
                crate::OperandRef::new(ab, 0, 0, d, 4),
                crate::OperandRef::new(bb, 0, j * 4, 4, 4),
                crate::OperandRef::new(cb, 0, j * 4, d, 4),
            );
        }
        let mut mach = TcuMachine::model(64, 1000);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), 1);
        assert_eq!(plan.nodes()[0].fused, 2);

        let mut c = Matrix::<i64>::zeros(d, 8);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c, matmul_naive(&a, &b));
        // One invocation charged instead of two: d·√m + ℓ once.
        assert_eq!(mach.time(), (d * 8) as u64 + 1000);
        assert_eq!(mach.stats().tensor_calls, 1);
    }

    #[test]
    fn run_charges_exactly_what_the_plan_predicts() {
        let d = 32usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let s = 8usize;
        for j in 0..d / s {
            for k in 0..d / s {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::with_executor(
            tcu_core::ModelTensorUnit::new(64, 9),
            ReplayExecutor::default(),
        );
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (a, b) = (pseudo(d, d, 3), pseudo(d, d, 4));
        let mut c = Matrix::<i64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(mach.stats().tensor_calls, plan.invocations());
        assert_eq!(mach.stats().tensor_rows, plan.charged_rows());
        assert_eq!(mach.stats().tensor_time, plan.tensor_time());
        // Replay executor ran no numerics.
        assert_eq!(c, Matrix::<i64>::zeros(d, d));
    }

    #[test]
    fn pack_cache_hits_across_the_run_and_fresh_envs_miss() {
        let d = 32usize;
        let s = 8usize;
        let b = pseudo(d, d, 6);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::model(s * s, 7);
        mach.executor_mut().enable_pack_cache(2 * q);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), q * q, "√m-wide blocks cannot merge");

        let run_once = |mach: &mut TcuMachine<_, _>, seed: i64| {
            let aa = pseudo(d, d, seed);
            let mut c = Matrix::<i64>::zeros(d, d);
            let mut env = ExecEnv::new(&g);
            env.bind_input(ab, aa.view());
            env.bind_input(bb, b.view());
            env.bind_output(cb, c.view_mut());
            plan.run(mach, &mut env);
            (c, aa)
        };
        let (c1, a1) = run_once(&mut mach, 5);
        assert_eq!(c1, matmul_naive(&a1, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        // q distinct strips, q² lookups: q misses, q(q−1) hits.
        assert_eq!(stats.misses, q as u64);
        assert_eq!(stats.hits, (q * (q - 1)) as u64);

        // A second environment re-packs (new epoch): no stale reuse
        // even though buffer ids coincide.
        let (c2, a2) = run_once(&mut mach, 50);
        assert_eq!(c2, matmul_naive(&a2, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 2 * q as u64);
    }

    /// A two-stage RAW pipeline in one graph: M = A·B, then C = M·B —
    /// the shape the pre-versioned runtime forced into two graphs.
    fn pipeline_graph(d: usize, s: usize) -> (OpGraph, [crate::BufferId; 4]) {
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let mb = g.buffer("M", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for (src, dst) in [(ab, mb), (mb, cb)] {
            for j in 0..q {
                for k in 0..q {
                    g.record(
                        TensorOp {
                            accumulate: true,
                            ..TensorOp::padded(d, s, s)
                        },
                        crate::OperandRef::new(src, 0, k * s, d, s),
                        crate::OperandRef::new(bb, k * s, j * s, s, s),
                        crate::OperandRef::new(dst, 0, j * s, d, s),
                    );
                }
            }
        }
        (g, [ab, bb, mb, cb])
    }

    #[test]
    fn two_stage_pipeline_plans_and_matches_the_chained_oracle() {
        let (d, s) = (16usize, 4usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 7);
        let b = pseudo(d, d, 8);
        let mut mach = TcuMachine::model(s * s, 11);
        mach.executor_mut().enable_pack_cache(2 * d / s);
        let plan = Scheduler::new().plan(&g, mach.unit());
        // Stage 2's reads of M force it into later waves than stage 1's
        // accumulate chain into the same columns.
        assert!(plan.waves() > d / s, "RAW must add depth");
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let want_m = matmul_naive(&a, &b);
        assert_eq!(m, want_m);
        assert_eq!(c, matmul_naive(&want_m, &b));
        // Charges are the recorded stream's: 2 stages × q² ops, d rows.
        let q = (d / s) as u64;
        assert_eq!(mach.stats().tensor_calls, 2 * q * q);
    }

    #[test]
    fn pipeline_writes_retire_stale_strips_in_the_pack_cache() {
        // One graph: write M, read M (gen 1), overwrite M, read again
        // (gen 2). The second read must repack — tags differ — and the
        // result must reflect the overwrite.
        let s = 4usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", s, s);
        let bb = g.buffer("B", s, s);
        let mb = g.buffer("M", s, s);
        let c1b = g.buffer("C1", s, s);
        let c2b = g.buffer("C2", s, s);
        let xb = g.buffer("X", s, s);
        let whole = |buf| crate::OperandRef::new(buf, 0, 0, s, s);
        let op = TensorOp::padded(s, s, s);
        g.record(op, whole(ab), whole(bb), whole(mb)); // M = A·B
        g.record(op, whole(mb), whole(bb), whole(c1b)); // C1 = M·B
        g.record(op, whole(xb), whole(bb), whole(mb)); // M = X·B
        g.record(op, whole(mb), whole(bb), whole(c2b)); // C2 = M'·B
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(8);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.waves(), 4, "WAR + RAW serialize all four ops");

        let (a, b, x) = (pseudo(s, s, 21), pseudo(s, s, 22), pseudo(s, s, 23));
        let (mut m, mut c1, mut c2) = (
            Matrix::<i64>::zeros(s, s),
            Matrix::<i64>::zeros(s, s),
            Matrix::<i64>::zeros(s, s),
        );
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_input(xb, x.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(c1b, c1.view_mut());
        env.bind_output(c2b, c2.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c1, matmul_naive(&matmul_naive(&a, &b), &b));
        assert_eq!(c2, matmul_naive(&matmul_naive(&x, &b), &b));
        assert_eq!(m, matmul_naive(&x, &b));
        // Both M reads packed fresh strips (generations 1 and 2).
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn rerunning_one_env_repacks_written_reads_but_reuses_frozen_inputs() {
        // Accumulating pipeline: M += A·B, then C += M·B. Running the
        // schedule twice against ONE environment doubles M before the
        // second stage reads it, so run 2's C contribution is 2·(A·B)·B
        // and the total must be 3·(A·B)·B. A cache serving run 1's
        // packed M strips to run 2 (the per-env tag scheme) would
        // compute 2× instead — so written-buffer reads must repack per
        // run, while the frozen input A keeps hitting across runs.
        let (d, s) = (16usize, 4usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 61);
        let b = pseudo(d, d, 62);
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(4 * d / s);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m.view_mut());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        let after_first = mach.executor().pack_cache_stats().expect("cache on");
        plan.run(&mut mach, &mut env);

        let ab_prod = matmul_naive(&a, &b);
        assert_eq!(m, ab_prod.scale(2));
        assert_eq!(c, matmul_naive(&ab_prod, &b).scale(3));
        // Frozen input strips (A) hit across runs; written-buffer strips
        // (M) repacked in run 2: q fresh misses, no more.
        let after_second = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(
            after_second.misses - after_first.misses,
            (d / s) as u64,
            "exactly the written-buffer strips repack on the second run"
        );
    }

    #[test]
    fn run_parallel_matches_serial_run_and_the_planned_makespan() {
        let (d, s, p) = (32usize, 8usize, 3usize);
        let (g, [ab, bb, mb, cb]) = pipeline_graph(d, s);
        let a = pseudo(d, d, 31);
        let b = pseudo(d, d, 32);
        let unit = tcu_core::ModelTensorUnit::new(s * s, 17);
        let plan = Scheduler::new().with_units(p).plan(&g, &unit);

        let mut serial = TcuMachine::new(unit);
        let (mut m1, mut c1) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m1.view_mut());
        env.bind_output(cb, c1.view_mut());
        plan.run(&mut serial, &mut env);

        let mut par = ParallelTcuMachine::new(unit, p);
        par.enable_pack_caches(2 * d / s);
        let (mut m2, mut c2) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(mb, m2.view_mut());
        env.bind_output(cb, c2.view_mut());
        plan.run_parallel(&mut par, &mut env);

        // Bit-identical results, identical per-op charges, and the
        // multi-unit wall-clock the planner predicted.
        assert_eq!((m2, c2), (m1, c1));
        assert_eq!(par.stats(), serial.stats());
        assert_eq!(par.time(), plan.makespan());
        assert!(plan.makespan() < plan.tensor_time(), "3 units must help");
        // The units' caches collectively served every lookup.
        let (mut lookups, mut misses) = (0u64, 0u64);
        for u in 0..p {
            if let Some(c) = par.unit_executor(u).pack_cache_stats() {
                lookups += c.lookups;
                misses += c.misses;
            }
        }
        assert_eq!(lookups, plan.invocations());
        assert!(misses < lookups, "schedule placement must enable reuse");
    }

    #[test]
    #[should_panic(expected = "different unit count")]
    fn run_parallel_rejects_mismatched_unit_count() {
        let (g, [_, _, _, _]) = pipeline_graph(8, 4);
        let unit = tcu_core::ModelTensorUnit::new(16, 0);
        let plan = Scheduler::new().with_units(2).plan(&g, &unit);
        let mut par = ParallelTcuMachine::<_, tcu_core::HostExecutor>::new(unit, 3);
        let mut env = ExecEnv::<i64>::new(&g);
        plan.run_parallel(&mut par, &mut env);
    }

    #[test]
    fn schur_update_reads_and_writes_one_buffer() {
        // The gauss kernel-D shape: X's trailing columns accumulate the
        // product of X's own pivot panel with external weights.
        let (d, s) = (8usize, 4usize);
        let mut g = OpGraph::new();
        let xb = g.buffer("X", d, d);
        let wb = g.buffer("W", s, s);
        g.record(
            TensorOp {
                accumulate: true,
                ..TensorOp::padded(s, s, s)
            },
            crate::OperandRef::new(xb, s, 0, s, s),
            crate::OperandRef::new(wb, 0, 0, s, s),
            crate::OperandRef::new(xb, s, s, s, s),
        );
        let mut mach = TcuMachine::model(s * s, 0);
        let plan = Scheduler::new().plan(&g, mach.unit());
        let mut x = pseudo(d, d, 41);
        let want = {
            let mut w = x.clone();
            let prod = matmul_naive(&x.block(s, 0, s, s), &pseudo(s, s, 42));
            w.subview_mut(s, s, s, s).add_assign(prod.view());
            w
        };
        let wmat = pseudo(s, s, 42);
        let mut env = ExecEnv::new(&g);
        env.bind_input(wb, wmat.view());
        env.bind_output(xb, x.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(x, want);
    }

    #[test]
    #[should_panic(expected = "bind it mutably")]
    fn written_buffer_rejects_input_binding() {
        let (g, [_, _, mb, _]) = pipeline_graph(8, 4);
        let m = pseudo(8, 8, 1);
        let mut env = ExecEnv::new(&g);
        env.bind_input(mb, m.view());
    }

    /// Build one wave's worth of scheduled nodes writing the given
    /// output rectangles of a shared buffer (for the disjointness
    /// check's own tests — a real `Scheduler` can never emit such a
    /// wave, which is exactly why the assertion exists).
    fn wave_writing(outs: &[(usize, usize, usize, usize)]) -> Vec<crate::ScheduledNode> {
        let s = 4usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", s, s);
        let bb = g.buffer("B", s, s);
        let cb = g.buffer("C", 4 * s, 4 * s);
        outs.iter()
            .map(|&(r0, c0, rows, cols)| crate::ScheduledNode {
                node: crate::Node {
                    op: TensorOp::padded(rows, s, cols),
                    a: crate::OperandRef::new(ab, 0, 0, rows, s),
                    b: crate::OperandRef::new(bb, 0, 0, s, cols),
                    out: crate::OperandRef::new(cb, r0, c0, rows, cols),
                    a_gen: 0,
                    b_gen: 0,
                    out_gen: 0,
                },
                level: 0,
                fused: 1,
                a_gen: 0,
                b_gen: 0,
            })
            .collect()
    }

    #[test]
    fn disjoint_wave_outputs_pass_the_assertion() {
        // Adjacent but non-overlapping rectangles, including a shared
        // edge — exactly the tightest layout a wave legally holds.
        let wave = wave_writing(&[(0, 0, 4, 4), (0, 4, 4, 4), (4, 0, 4, 4), (4, 4, 8, 8)]);
        assert_wave_outputs_disjoint(&wave);
    }

    #[test]
    #[should_panic(expected = "overlapping output regions")]
    fn disjointness_assertion_catches_an_overlapping_wave() {
        // The second rectangle shares element (4, 4) with the third —
        // a deliberate scheduling-invariant violation.
        let wave = wave_writing(&[(0, 0, 4, 4), (0, 4, 8, 4), (4, 4, 4, 4)]);
        assert_wave_outputs_disjoint(&wave);
    }
}
