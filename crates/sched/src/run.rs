//! Schedule execution: bind data to the graph's logical buffers and
//! drive the planned op stream through a [`TcuMachine`].
//!
//! [`ExecEnv`] maps every [`BufferId`] to real storage — immutable
//! [`MatrixView`]s for buffers the graph reads, mutable views for
//! buffers it writes — and [`Schedule::run`] issues the emitted nodes
//! in serial order through [`TcuMachine::issue_into_tagged`]. Each left
//! operand is tagged with an [`OperandId`] carrying the buffer id, the
//! environment's *epoch* (a process-unique stamp allocated per
//! environment, standing in for the buffer's write-generation: bound
//! data is borrowed, hence frozen, for the environment's lifetime), and
//! the region rectangle — so a pack-caching executor reuses packed
//! strips across every invocation of the run that streams the same
//! region, and can never confuse them with a different run's data.
//!
//! Accounting flows through the machine exactly as eager execution
//! does: per-op model charges into `Stats` and the trace. What changes
//! with scheduling is *which* (coalesced) ops are issued and in what
//! (canonical) order — never how an issued op is charged.

use crate::graph::{BufferId, OperandRef};
use crate::scheduler::Schedule;
use std::sync::atomic::{AtomicU64, Ordering};
use tcu_core::{Executor, OperandId, TcuMachine, TensorUnit};
use tcu_linalg::{MatrixView, MatrixViewMut, Scalar};

/// Process-wide epoch allocator: every environment gets a distinct
/// stamp, so operand tags from different environments (different data)
/// can never collide in an executor cache.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Data bindings for one run of a schedule: per-buffer views, split
/// into read-only inputs and mutable outputs.
#[derive(Debug)]
pub struct ExecEnv<'a, T: Scalar> {
    epoch: u64,
    shapes: Vec<(usize, usize)>,
    inputs: Vec<Option<MatrixView<'a, T>>>,
    outputs: Vec<Option<MatrixViewMut<'a, T>>>,
}

impl<'a, T: Scalar> ExecEnv<'a, T> {
    /// Fresh bindings for `graph`'s buffers (all unbound, new epoch).
    #[must_use]
    pub fn new(graph: &crate::OpGraph) -> Self {
        let shapes = (0..graph.buffer_count())
            .map(|i| graph.buffer_shape(BufferId(i)))
            .collect::<Vec<_>>();
        Self {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            inputs: vec![None; shapes.len()],
            outputs: shapes.iter().map(|_| None).collect(),
            shapes,
        }
    }

    /// The environment's cache-key epoch (diagnostic).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bind a read-only buffer to a view of its exact registered shape.
    ///
    /// # Panics
    /// Panics on shape mismatch or an id from another graph.
    pub fn bind_input(&mut self, id: BufferId, view: MatrixView<'a, T>) {
        assert_eq!(
            (view.rows(), view.cols()),
            self.shapes[id.0],
            "input binding shape mismatch"
        );
        self.inputs[id.0] = Some(view);
    }

    /// Bind a written buffer to a mutable view of its registered shape.
    ///
    /// # Panics
    /// Panics on shape mismatch or an id from another graph.
    pub fn bind_output(&mut self, id: BufferId, view: MatrixViewMut<'a, T>) {
        assert_eq!(
            (view.rows(), view.cols()),
            self.shapes[id.0],
            "output binding shape mismatch"
        );
        self.outputs[id.0] = Some(view);
    }

    fn input_region(&self, r: &OperandRef) -> MatrixView<'a, T> {
        self.inputs[r.buf.0]
            .as_ref()
            .unwrap_or_else(|| panic!("buffer {} read but not bound as input", r.buf.0))
            .subview(r.r0, r.c0, r.rows, r.cols)
    }
}

impl Schedule {
    /// Execute the planned stream on `mach` with `env`'s bindings: each
    /// emitted node issues one tagged tensor instruction (charged and
    /// traced by the machine exactly like an eager call), outputs land
    /// in the bound views. The serial order is the schedule's canonical
    /// order; on a pack-caching host executor, repeated left-operand
    /// regions are packed once per environment.
    ///
    /// # Panics
    /// Panics if the machine's `√m` differs from the one the schedule
    /// was planned for, if the environment's buffer shapes disagree
    /// with the planned graph's, or if a referenced buffer is unbound.
    pub fn run<T: Scalar, U: TensorUnit, E: Executor>(
        &self,
        mach: &mut TcuMachine<U, E>,
        env: &mut ExecEnv<'_, T>,
    ) {
        assert_eq!(
            mach.sqrt_m(),
            self.sqrt_m,
            "schedule was planned for a different tensor-unit size"
        );
        assert_eq!(
            env.shapes, self.buffer_shapes,
            "environment built for a different graph (buffer shapes disagree)"
        );
        let epoch = env.epoch;
        for sn in self.nodes() {
            let node = &sn.node;
            let a = env.input_region(&node.a);
            let b = env.input_region(&node.b);
            let tag = OperandId {
                buffer: node.a.buf.0 as u64,
                generation: epoch,
                origin: (node.a.r0, node.a.c0),
                extent: (node.a.rows, node.a.cols),
            };
            let out = env.outputs[node.out.buf.0].as_mut().unwrap_or_else(|| {
                panic!("buffer {} written but not bound as output", node.out.buf.0)
            });
            let mut out_view =
                out.subview_mut(node.out.r0, node.out.c0, node.out.rows, node.out.cols);
            mach.issue_into_tagged(node.op, a, Some(tag), b, &mut out_view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpGraph, Scheduler};
    use tcu_core::{ReplayExecutor, TensorOp};
    use tcu_linalg::ops::matmul_naive;
    use tcu_linalg::Matrix;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
        })
    }

    /// Record, plan, run: the smallest end-to-end flow — one strip
    /// streamed against two adjacent weight blocks on a unit twice as
    /// wide, which the scheduler collapses into a single invocation.
    #[test]
    fn two_block_columns_collapse_and_match_the_oracle() {
        let d = 16usize;
        let a = pseudo(d, 4, 1);
        let b = pseudo(4, 8, 2);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, 4);
        let bb = g.buffer("B", 4, 8);
        let cb = g.buffer("C", d, 8);
        for j in 0..2 {
            g.record(
                TensorOp::padded(d, 4, 4),
                crate::OperandRef::new(ab, 0, 0, d, 4),
                crate::OperandRef::new(bb, 0, j * 4, 4, 4),
                crate::OperandRef::new(cb, 0, j * 4, d, 4),
            );
        }
        let mut mach = TcuMachine::model(64, 1000);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), 1);
        assert_eq!(plan.nodes()[0].fused, 2);

        let mut c = Matrix::<i64>::zeros(d, 8);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(c, matmul_naive(&a, &b));
        // One invocation charged instead of two: d·√m + ℓ once.
        assert_eq!(mach.time(), (d * 8) as u64 + 1000);
        assert_eq!(mach.stats().tensor_calls, 1);
    }

    #[test]
    fn run_charges_exactly_what_the_plan_predicts() {
        let d = 32usize;
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let s = 8usize;
        for j in 0..d / s {
            for k in 0..d / s {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::with_executor(
            tcu_core::ModelTensorUnit::new(64, 9),
            ReplayExecutor::default(),
        );
        let plan = Scheduler::new().plan(&g, mach.unit());
        let (a, b) = (pseudo(d, d, 3), pseudo(d, d, 4));
        let mut c = Matrix::<i64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        assert_eq!(mach.stats().tensor_calls, plan.invocations());
        assert_eq!(mach.stats().tensor_rows, plan.charged_rows());
        assert_eq!(mach.stats().tensor_time, plan.tensor_time());
        // Replay executor ran no numerics.
        assert_eq!(c, Matrix::<i64>::zeros(d, d));
    }

    #[test]
    fn pack_cache_hits_across_the_run_and_fresh_envs_miss() {
        let d = 32usize;
        let s = 8usize;
        let b = pseudo(d, d, 6);
        let mut g = OpGraph::new();
        let ab = g.buffer("A", d, d);
        let bb = g.buffer("B", d, d);
        let cb = g.buffer("C", d, d);
        let q = d / s;
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp {
                        accumulate: true,
                        ..TensorOp::padded(d, s, s)
                    },
                    crate::OperandRef::new(ab, 0, k * s, d, s),
                    crate::OperandRef::new(bb, k * s, j * s, s, s),
                    crate::OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
        let mut mach = TcuMachine::model(s * s, 7);
        mach.executor_mut().enable_pack_cache(2 * q);
        let plan = Scheduler::new().plan(&g, mach.unit());
        assert_eq!(plan.ops(), q * q, "√m-wide blocks cannot merge");

        let run_once = |mach: &mut TcuMachine<_, _>, seed: i64| {
            let aa = pseudo(d, d, seed);
            let mut c = Matrix::<i64>::zeros(d, d);
            let mut env = ExecEnv::new(&g);
            env.bind_input(ab, aa.view());
            env.bind_input(bb, b.view());
            env.bind_output(cb, c.view_mut());
            plan.run(mach, &mut env);
            (c, aa)
        };
        let (c1, a1) = run_once(&mut mach, 5);
        assert_eq!(c1, matmul_naive(&a1, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        // q distinct strips, q² lookups: q misses, q(q−1) hits.
        assert_eq!(stats.misses, q as u64);
        assert_eq!(stats.hits, (q * (q - 1)) as u64);

        // A second environment re-packs (new epoch): no stale reuse
        // even though buffer ids coincide.
        let (c2, a2) = run_once(&mut mach, 50);
        assert_eq!(c2, matmul_naive(&a2, &b));
        let stats = mach.executor().pack_cache_stats().expect("cache on");
        assert_eq!(stats.misses, 2 * q as u64);
    }
}
