//! End-to-end telemetry demo: run the `parwave` workload (each wave
//! holds `d/√m` independent column-block products) on a 4-unit
//! parallel machine with an [`tcu_obs::ObsSink`] attached, print the
//! plain-text run report, and write a Chrome-trace / Perfetto JSON
//! timeline with one lane per unit plus a scheduler lane.
//!
//! ```sh
//! cargo run --release -p tcu-obs --example timeline
//! TCU_TRACE_OUT=trace.json cargo run --release -p tcu-obs --example timeline
//! ```
//!
//! Open the written file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) to see the per-unit timelines.

use std::sync::Arc;
use tcu_core::{HostExecutor, ModelTensorUnit, ParallelTcuMachine, TensorOp};
use tcu_linalg::Matrix;
use tcu_obs::{ObsSink, RunMeta};
use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

const D: usize = 512;
const SQRT_M: usize = 16;
const UNITS: usize = 4;

fn workload(r: usize, c: usize, seed: u64) -> Matrix<f64> {
    Matrix::from_fn(r, c, |i, j| {
        let x = (i as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add((j as u64).wrapping_mul(1_442_695_040_888_963_407))
            .wrapping_add(seed);
        (x % 1_000) as f64 / 997.0 - 0.5
    })
}

fn main() -> std::io::Result<()> {
    let (d, s, units) = (D, SQRT_M, UNITS);
    let q = d / s;
    let a = workload(d, d, 5);
    let b = workload(d, d, 6);

    // The parwave accumulation graph: wave k holds q independent
    // column-block products, all accumulating into C.
    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp::mul_acc(d, s),
                OperandRef::new(ab, 0, k * s, d, s),
                OperandRef::new(bb, k * s, j * s, s, s),
                OperandRef::new(cb, 0, j * s, d, s),
            );
        }
    }

    let unit = ModelTensorUnit::new(s * s, 0);
    let plan = Scheduler::new().with_units(units).plan(&g, &unit);

    // Attach the sink through the execution environment; the driver
    // forwards it to the machine, so driver spans (wave/stage/merge)
    // and per-unit op spans land in the same sink. When `TCU_TRACE_OUT`
    // is set, machines auto-attach the process-wide sink at
    // construction — reuse that one so there is a single timeline.
    let sink = tcu_obs::env_recorder().unwrap_or_else(|| Arc::new(ObsSink::new()));
    let mut mach = ParallelTcuMachine::new(unit, units);
    let mut c = Matrix::<f64>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.enable_recorder(sink.clone());
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(cb, c.view_mut());
    plan.run_parallel(&mut mach, &mut env);
    drop(env);

    let meta = RunMeta {
        units: Some(units as u64),
        host_threads: Some(HostExecutor::new().threads() as u64),
        ci_cores: std::env::var("CI_CORES").ok().and_then(|v| v.parse().ok()),
        pack_cache_capacity: None,
        memo_hits: None,
        extra: vec![
            ("example".to_string(), "timeline".to_string()),
            ("d".to_string(), d.to_string()),
        ],
    };

    print!("{}", sink.report(&meta));
    println!(
        "plan: {} ops in {} waves, makespan {}, critical path {}, efficiency {:.3}",
        plan.ops(),
        plan.waves(),
        plan.makespan(),
        plan.critical_path(),
        plan.sched_efficiency(),
    );
    println!(
        "dataflow: makespan {}, efficiency {:.3}, steals {}",
        plan.dataflow_makespan(),
        plan.dataflow_efficiency(),
        plan.dataflow_steals(),
    );

    // The report invariant the docs promise: every unit's busy + idle
    // spans exactly the execution window.
    let (window, rows) = sink.unit_utilization();
    assert_eq!(rows.len(), units, "one utilization row per unit");
    for (u, busy, idle, ops) in rows {
        assert_eq!(busy + idle, window, "unit {u} busy+idle == window");
        assert!(ops > 0, "unit {u} executed ops");
    }

    // A second run pinned to the barrier-free dataflow driver, with its
    // own sink: its report must surface the dispatch telemetry (ready
    // deque depth, steal counters) the driver records.
    let df_sink = Arc::new(ObsSink::new());
    let mut df_mach = ParallelTcuMachine::new(unit, units);
    let mut c2 = Matrix::<f64>::zeros(d, d);
    let mut env = ExecEnv::new(&g);
    env.enable_recorder(df_sink.clone());
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(cb, c2.view_mut());
    plan.run_dataflow(&mut df_mach, &mut env);
    drop(env);
    assert_eq!(c, c2, "dataflow bytes match the mode-routed run");

    let df_report = df_sink.report(&meta);
    print!("{df_report}");
    assert!(
        df_report.contains("ready_depth_peak"),
        "dataflow report surfaces the ready-deque depth"
    );
    assert!(
        df_report.contains("steals"),
        "dataflow report surfaces the steal counter"
    );

    let path = tcu_obs::env_trace_path().unwrap_or("tcu_timeline_trace.json");
    sink.write_chrome_trace(path, &meta)?;
    println!("wrote {path} — open it at https://ui.perfetto.dev");
    Ok(())
}
