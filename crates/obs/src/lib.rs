#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # tcu-obs — span-based execution telemetry for the TCU simulator
//!
//! Observability seam for the whole workspace: the execution layers
//! (`tcu-core`'s machines, `tcu-sched`'s planner and wave driver,
//! `tcu-algos`' plan memo) emit typed, *closed* spans and instant
//! events into a [`Recorder`], and this crate turns the buffered
//! stream into
//!
//! * a Chrome Trace Event / Perfetto JSON timeline with one lane per
//!   tensor unit plus a scheduler lane
//!   ([`ObsSink::export_chrome_trace`]),
//! * a plain-text run report — per-unit busy/idle utilization, wave
//!   occupancy histogram, wall-time split across
//!   plan/compile/stage/execute/merge plus retry counts
//!   ([`ObsSink::report`]), and
//! * a unified metrics registry of named counters ([`Metrics`]),
//!   incremented as events arrive.
//!
//! The crate sits at the *bottom* of the workspace stack (std-only, no
//! tcu dependencies) so every layer can hook into it. The hard
//! invariant the hooks uphold: recording is **byte-unobservable** —
//! elements, `Stats`, trace digests, and simulated makespans are
//! identical with a recorder attached or not, because recorders only
//! ever observe wall-clock and already-charged quantities, never feed
//! anything back.
//!
//! ## Contention model
//!
//! [`ObsSink`] keeps one bounded ring buffer per lane, each behind its
//! own mutex. Exactly one thread writes a given lane in steady state —
//! the wave driver's unit workers own their unit's lane, the main
//! thread owns the scheduler lane — so locks are uncontended and
//! recording stays off every other thread's path. When a ring is full
//! the *oldest* events drop (counted, surfaced in the report), so a
//! long run degrades to a recent-window trace instead of unbounded
//! memory.
//!
//! ## Activation
//!
//! Recorders are strictly opt-in: hooks hold an `Option<Arc<dyn
//! Recorder>>` that defaults to `None` (one branch when disabled).
//! Setting `TCU_TRACE_OUT=<path>` creates a process-global sink
//! ([`env_recorder`]) that machines pick up at construction;
//! [`flush_env_trace`] writes it out.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Which timeline a recorded event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Main-thread orchestration: planning, compilation, wave dispatch,
    /// staging, merging, fault handling.
    Scheduler,
    /// Per-op execution (and executor-local cache traffic) on one
    /// tensor unit. The serial machine records as unit 0.
    Unit(u32),
}

/// What happened. Spans carry their payload here; wall-clock placement
/// lives in the enclosing [`SpanEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// One `Scheduler::plan` call: recorded ops in, scheduled
    /// (post-coalescing) ops and waves out.
    PlanBuild {
        /// Ops recorded into the graph.
        recorded: u64,
        /// Scheduled ops after coalescing.
        scheduled: u64,
        /// Dependency waves emitted.
        waves: u64,
    },
    /// A plan-memo lookup served from cache.
    MemoHit,
    /// A plan-memo lookup that had to plan.
    MemoMiss,
    /// One `Schedule::compile` lowering.
    Compile {
        /// Compiled ops in the executable plan.
        ops: u64,
    },
    /// One wave dispatched by the parallel driver (span covers staging
    /// through merge).
    Wave {
        /// Wave index within the schedule.
        wave: u32,
        /// Scheduled ops in the wave.
        items: u32,
        /// Units with nonzero assigned load.
        units_busy: u32,
    },
    /// Operand staging (pre-copying regions a wave both reads and
    /// writes) for one wave or one serial op.
    Stage {
        /// Staging directives executed.
        copies: u32,
    },
    /// The merge pass copying per-op scratch into outputs.
    Merge {
        /// Scratch buffers merged.
        items: u32,
    },
    /// One op executed on a unit: wall time in the span, simulated
    /// charge and streamed rows here.
    OpExec {
        /// Executing unit.
        unit: u32,
        /// Rows charged (the `n` of `n·√m + ℓ`).
        rows: u64,
        /// Simulated cost charged for the op's invocations.
        sim_cost: u64,
    },
    /// One scratch-buffer acquisition by the wave driver.
    ScratchAcquire {
        /// Unit whose op the scratch is for.
        unit: u32,
        /// Whether a pooled buffer was reused (vs freshly allocated).
        reused: bool,
        /// Buffer size in bytes.
        bytes: u64,
    },
    /// One pack-cache lookup in an executor.
    PackLookup {
        /// Owning unit.
        unit: u32,
        /// Served from cache (`false` = packed on miss).
        hit: bool,
    },
    /// A pack-cache eviction (FIFO capacity).
    PackEvict {
        /// Owning unit.
        unit: u32,
    },
    /// A contained unit fault.
    Fault {
        /// Faulting unit.
        unit: u32,
        /// Transient (retryable) vs permanent.
        transient: bool,
    },
    /// A retry of a faulted op, with its simulated backoff charge.
    Retry {
        /// Retrying unit.
        unit: u32,
        /// Attempt number (2 = first retry).
        attempt: u32,
        /// Simulated backoff charged into wall-clock.
        backoff: u64,
    },
    /// A unit quarantined, its remaining work requeued onto survivors.
    Quarantine {
        /// Quarantined unit.
        unit: u32,
        /// Ops moved onto surviving units.
        requeued: u64,
    },
    /// A batch of ops became runnable on a unit's ready deque (dataflow
    /// driver): the dependency frontier cleared and the ops were
    /// dispatched in one message.
    Ready {
        /// Unit whose deque the ops were queued on.
        unit: u32,
        /// Ready-deque depth drained by this dispatch.
        depth: u32,
    },
    /// One op placed on a unit other than its wave-LPT home by the
    /// dataflow placement (a deterministic plan-time steal).
    Steal {
        /// The op's wave-LPT home unit.
        from: u32,
        /// The unit that ran it instead.
        to: u32,
    },
}

impl EventKind {
    /// Short stable name (trace-event `name`, metrics key prefix).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PlanBuild { .. } => "plan",
            EventKind::MemoHit => "memo_hit",
            EventKind::MemoMiss => "memo_miss",
            EventKind::Compile { .. } => "compile",
            EventKind::Wave { .. } => "wave",
            EventKind::Stage { .. } => "stage",
            EventKind::Merge { .. } => "merge",
            EventKind::OpExec { .. } => "op",
            EventKind::ScratchAcquire { .. } => "scratch",
            EventKind::PackLookup { .. } => "pack",
            EventKind::PackEvict { .. } => "pack_evict",
            EventKind::Fault { .. } => "fault",
            EventKind::Retry { .. } => "retry",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::Ready { .. } => "ready",
            EventKind::Steal { .. } => "steal",
        }
    }
}

/// One closed span (or instant event, `dur_ns == 0`) on a lane.
///
/// Spans are recorded *after* they finish — the hook stamps the start,
/// does the work, then records with the measured duration — so a sink
/// never holds a half-open span and every export is well-formed by
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// What happened.
    pub kind: EventKind,
    /// Start, in ns since the sink's origin.
    pub t_ns: u64,
    /// Duration in ns (0 for instant events).
    pub dur_ns: u64,
}

impl SpanEvent {
    /// End of the span, ns since origin.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.t_ns + self.dur_ns
    }
}

/// Sink for execution telemetry. Implementations must be cheap and
/// must never panic: recording happens on execution hot paths,
/// including inside worker threads whose panics the wave driver
/// interprets as unit faults.
///
/// `Debug` is required so hosting structs (machines, schedulers) keep
/// their derived `Debug` impls.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Monotonic ns since the recorder's origin — hooks use this to
    /// stamp span starts so starts and durations share one clock.
    fn now_ns(&self) -> u64;

    /// Deliver one closed span / instant event.
    fn record(&self, lane: Lane, ev: SpanEvent);
}

/// Counter identities of the [`Metrics`] registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)]
pub enum Metric {
    PlanBuilds,
    MemoHits,
    MemoMisses,
    Compiles,
    Waves,
    OpsExecuted,
    StageSpans,
    MergeSpans,
    ScratchReused,
    ScratchFresh,
    PackHits,
    PackMisses,
    PackEvictions,
    Faults,
    Retries,
    Quarantines,
    EventsDropped,
    Steals,
    ReadyDepthPeak,
}

/// Number of registered metrics.
const METRIC_COUNT: usize = 19;

/// Registry names, indexed by `Metric as usize`.
pub const METRIC_NAMES: [&str; METRIC_COUNT] = [
    "plan_builds",
    "memo_hits",
    "memo_misses",
    "compiles",
    "waves",
    "ops_executed",
    "stage_spans",
    "merge_spans",
    "scratch_reused",
    "scratch_fresh",
    "pack_hits",
    "pack_misses",
    "pack_evictions",
    "faults",
    "retries",
    "quarantines",
    "events_dropped",
    "steals",
    "ready_depth_peak",
];

/// The unified metrics registry: named monotonic counters, updated
/// lock-free as events arrive at an [`ObsSink`] and readable at any
/// time. One registry per sink; the text report prints a snapshot.
#[derive(Debug)]
pub struct Metrics {
    counters: [AtomicU64; METRIC_COUNT],
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Metrics {
    /// Add `by` to a counter.
    pub fn bump(&self, m: Metric, by: u64) {
        self.counters[m as usize].fetch_add(by, Ordering::Relaxed);
    }

    /// Raise a high-water-mark counter to `v` if `v` exceeds it (e.g.
    /// [`Metric::ReadyDepthPeak`], the deepest ready deque observed).
    pub fn bump_max(&self, m: Metric, v: u64) {
        self.counters[m as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }

    /// Look a counter up by registry name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<u64> {
        METRIC_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// All `(name, value)` pairs, registry order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        METRIC_NAMES
            .iter()
            .zip(&self.counters)
            .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Run-identifying metadata stamped into exports so artifacts are
/// self-describing: the Perfetto JSON carries it in `otherData`, the
/// text report in its header.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// Tensor units the run executed on.
    pub units: Option<u64>,
    /// Host worker threads per executor (`TCU_HOST_THREADS`).
    pub host_threads: Option<u64>,
    /// CPU cores of the recording machine.
    pub ci_cores: Option<u64>,
    /// Pack-cache capacity per unit executor.
    pub pack_cache_capacity: Option<u64>,
    /// Plan-memo hits during the run.
    pub memo_hits: Option<u64>,
    /// Free-form extras (`(key, value)`).
    pub extra: Vec<(String, String)>,
}

impl RunMeta {
    fn pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut push = |k: &str, v: &Option<u64>| {
            if let Some(v) = v {
                out.push((k.to_string(), v.to_string()));
            }
        };
        push("units", &self.units);
        push("host_threads", &self.host_threads);
        push("ci_cores", &self.ci_cores);
        push("pack_cache_capacity", &self.pack_cache_capacity);
        push("memo_hits", &self.memo_hits);
        out.extend(self.extra.iter().cloned());
        out
    }
}

/// One lane's bounded buffer.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

/// Unit lanes pre-allocated per sink (beyond this, unit ids clamp to
/// the last lane — far above any realistic unit count here).
const MAX_UNIT_LANES: usize = 64;

/// Default per-lane ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// The standard [`Recorder`]: per-lane bounded ring buffers (scheduler
/// lane + one per unit) plus the [`Metrics`] registry, with Chrome
/// Trace Event export and a plain-text report.
#[derive(Debug)]
pub struct ObsSink {
    origin: Instant,
    capacity: usize,
    /// `lanes[0]` is the scheduler lane; `lanes[1 + u]` is unit `u`.
    lanes: Vec<Mutex<Ring>>,
    metrics: Metrics,
}

impl Default for ObsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsSink {
    /// A sink with the default per-lane capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A sink whose rings hold at most `capacity` events each (oldest
    /// events drop first once full; drops are counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            origin: Instant::now(),
            capacity: capacity.max(1),
            lanes: (0..=MAX_UNIT_LANES)
                .map(|_| Mutex::new(Ring::default()))
                .collect(),
            metrics: Metrics::default(),
        }
    }

    /// The sink's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn lane_index(lane: Lane) -> usize {
        match lane {
            Lane::Scheduler => 0,
            Lane::Unit(u) => 1 + (u as usize).min(MAX_UNIT_LANES - 1),
        }
    }

    /// Snapshot of one lane's buffered events, oldest first.
    #[must_use]
    pub fn lane_events(&self, lane: Lane) -> Vec<SpanEvent> {
        match self.lanes[Self::lane_index(lane)].lock() {
            Ok(ring) => ring.events.iter().copied().collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Total events dropped to ring capacity, across lanes.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.metrics.get(Metric::EventsDropped)
    }

    /// Unit lanes that have recorded at least one event.
    #[must_use]
    pub fn active_units(&self) -> Vec<u32> {
        (0..MAX_UNIT_LANES as u32)
            .filter(|&u| {
                self.lanes[1 + u as usize]
                    .lock()
                    .map(|r| !r.events.is_empty())
                    .unwrap_or(false)
            })
            .collect()
    }

    fn count(&self, ev: &SpanEvent) {
        let m = &self.metrics;
        match ev.kind {
            EventKind::PlanBuild { .. } => m.bump(Metric::PlanBuilds, 1),
            EventKind::MemoHit => m.bump(Metric::MemoHits, 1),
            EventKind::MemoMiss => m.bump(Metric::MemoMisses, 1),
            EventKind::Compile { .. } => m.bump(Metric::Compiles, 1),
            EventKind::Wave { .. } => m.bump(Metric::Waves, 1),
            EventKind::Stage { .. } => m.bump(Metric::StageSpans, 1),
            EventKind::Merge { .. } => m.bump(Metric::MergeSpans, 1),
            EventKind::OpExec { .. } => m.bump(Metric::OpsExecuted, 1),
            EventKind::ScratchAcquire { reused, .. } => m.bump(
                if reused {
                    Metric::ScratchReused
                } else {
                    Metric::ScratchFresh
                },
                1,
            ),
            EventKind::PackLookup { hit, .. } => m.bump(
                if hit {
                    Metric::PackHits
                } else {
                    Metric::PackMisses
                },
                1,
            ),
            EventKind::PackEvict { .. } => m.bump(Metric::PackEvictions, 1),
            EventKind::Fault { .. } => m.bump(Metric::Faults, 1),
            EventKind::Retry { .. } => m.bump(Metric::Retries, 1),
            EventKind::Quarantine { .. } => m.bump(Metric::Quarantines, 1),
            EventKind::Ready { depth, .. } => m.bump_max(Metric::ReadyDepthPeak, u64::from(depth)),
            EventKind::Steal { .. } => m.bump(Metric::Steals, 1),
        }
    }

    /// Serialize the whole sink as Chrome Trace Event JSON (loadable in
    /// Perfetto / `chrome://tracing`): lane-naming metadata events plus
    /// one complete (`"ph": "X"`) event per recorded span, timestamps
    /// in microseconds. `meta` lands in `otherData`.
    #[must_use]
    pub fn export_chrome_trace(&self, meta: &RunMeta) -> String {
        let mut out = String::with_capacity(1 << 16);
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {");
        let pairs = meta.pairs();
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": \"{}\"",
                json_escape(k),
                json_escape(v)
            ));
        }
        out.push_str("\n  },\n  \"traceEvents\": [\n");
        let mut first = true;
        let mut push_event = |s: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("    ");
            out.push_str(&s);
        };
        // Lane-naming metadata: the scheduler lane, every declared unit
        // lane, and any further lane that actually recorded something.
        let declared = meta.units.unwrap_or(0) as usize;
        let mut named = vec![false; MAX_UNIT_LANES + 1];
        let mut name_lane = |tid: usize, label: String, first: &mut bool, named: &mut Vec<bool>| {
            if !named[tid] {
                named[tid] = true;
                push_event(
                    format!(
                        "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                         \"args\": {{\"name\": \"{label}\"}}}}"
                    ),
                    first,
                );
            }
        };
        name_lane(0, "scheduler".to_string(), &mut first, &mut named);
        for u in 0..declared.min(MAX_UNIT_LANES) {
            name_lane(1 + u, format!("unit {u}"), &mut first, &mut named);
        }
        for u in self.active_units() {
            name_lane(1 + u as usize, format!("unit {u}"), &mut first, &mut named);
        }
        // The spans, globally sorted by start time (ties: longer span
        // first, so an enclosing span precedes the spans it contains).
        // Ring order alone is not start order — a span is recorded when
        // it *closes*, so a nested span (a pack lookup inside an op
        // execute) lands in the ring before its parent.
        let mut spans: Vec<(usize, SpanEvent)> = Vec::new();
        for tid in 0..self.lanes.len() {
            if let Ok(r) = self.lanes[tid].lock() {
                spans.extend(r.events.iter().map(|&ev| (tid, ev)));
            }
        }
        spans.sort_by(|a, b| {
            a.1.t_ns
                .cmp(&b.1.t_ns)
                .then(b.1.dur_ns.cmp(&a.1.dur_ns))
                .then(a.0.cmp(&b.0))
        });
        for (tid, ev) in spans {
            let ts = ev.t_ns as f64 / 1000.0;
            let dur = ev.dur_ns as f64 / 1000.0;
            push_event(
                format!(
                    "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {ts:.3}, \"dur\": {dur:.3}, \
                     \"pid\": 1, \"tid\": {tid}, \"args\": {{{}}}}}",
                    ev.kind.name(),
                    args_json(&ev.kind),
                ),
                &mut first,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write [`Self::export_chrome_trace`] to `path`.
    ///
    /// # Errors
    /// Propagates the underlying file write error.
    pub fn write_chrome_trace(&self, path: &str, meta: &RunMeta) -> std::io::Result<()> {
        std::fs::write(path, self.export_chrome_trace(meta))
    }

    /// Per-unit utilization over the execution window: `(unit, busy_ns,
    /// idle_ns, ops)` per active unit, plus the window itself. The
    /// window spans the first span start to the last span end across
    /// unit lanes, so `busy + idle == window` for every unit.
    #[must_use]
    pub fn unit_utilization(&self) -> (u64, Vec<(u32, u64, u64, u64)>) {
        let mut t0 = u64::MAX;
        let mut t1 = 0u64;
        let mut per_unit: Vec<(u32, u64, u64)> = Vec::new(); // (unit, busy, ops)
        for u in self.active_units() {
            let mut busy = 0u64;
            let mut ops = 0u64;
            for ev in self.lane_events(Lane::Unit(u)) {
                t0 = t0.min(ev.t_ns);
                t1 = t1.max(ev.end_ns());
                if let EventKind::OpExec { .. } = ev.kind {
                    busy += ev.dur_ns;
                    ops += 1;
                }
            }
            per_unit.push((u, busy, ops));
        }
        let window = t1.saturating_sub(if t0 == u64::MAX { 0 } else { t0 });
        let rows = per_unit
            .into_iter()
            .map(|(u, busy, ops)| {
                let busy = busy.min(window);
                (u, busy, window - busy, ops)
            })
            .collect();
        (window, rows)
    }

    /// The plain-text run report: metadata header, per-unit busy/idle
    /// utilization, wave occupancy histogram, the wall-time split
    /// across plan/compile/stage/execute/merge, fault/retry lines, and
    /// the metrics-registry snapshot.
    #[must_use]
    pub fn report(&self, meta: &RunMeta) -> String {
        let mut out = String::new();
        out.push_str("== tcu-obs run report ==\n");
        let pairs = meta.pairs();
        if !pairs.is_empty() {
            let line: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("meta: {}\n", line.join(" ")));
        }

        let (window, rows) = self.unit_utilization();
        out.push_str(&format!("execution window: {window} ns\n"));
        for (u, busy, idle, ops) in &rows {
            let pct = if window == 0 {
                0.0
            } else {
                100.0 * *busy as f64 / window as f64
            };
            out.push_str(&format!(
                "  unit {u}: busy {busy} ns ({pct:.1}%), idle {idle} ns, ops {ops}\n"
            ));
        }

        // Wave occupancy histogram: how many waves kept how many units busy.
        let mut occupancy: Vec<(u32, u64)> = Vec::new();
        let mut phase = [0u64; 5]; // plan, compile, stage, execute, merge
        let mut retries = (0u64, 0u64); // count, simulated backoff
        for ev in self.lane_events(Lane::Scheduler) {
            match ev.kind {
                EventKind::Wave { units_busy, .. } => {
                    match occupancy.iter_mut().find(|(k, _)| *k == units_busy) {
                        Some((_, n)) => *n += 1,
                        None => occupancy.push((units_busy, 1)),
                    }
                }
                EventKind::PlanBuild { .. } => phase[0] += ev.dur_ns,
                EventKind::Compile { .. } => phase[1] += ev.dur_ns,
                EventKind::Stage { .. } => phase[2] += ev.dur_ns,
                EventKind::Merge { .. } => phase[4] += ev.dur_ns,
                EventKind::Retry { backoff, .. } => {
                    retries.0 += 1;
                    retries.1 += backoff;
                }
                _ => {}
            }
        }
        for (_, busy, _, _) in &rows {
            phase[3] += busy;
        }
        if !occupancy.is_empty() {
            occupancy.sort_unstable();
            out.push_str("wave occupancy (units busy: waves):\n");
            for (k, n) in occupancy {
                out.push_str(&format!("  {k}: {n}\n"));
            }
        }
        out.push_str("phase wall time (ns):\n");
        for (name, ns) in ["plan", "compile", "stage", "execute", "merge"]
            .iter()
            .zip(phase)
        {
            out.push_str(&format!("  {name:<8} {ns}\n"));
        }
        if retries.0 > 0 {
            out.push_str(&format!(
                "retries: {} (simulated backoff {})\n",
                retries.0, retries.1
            ));
        }
        // Dataflow line: present whenever a dataflow run recorded ready
        // dispatches (the peak is >= 1 then), with the steal count even
        // when zero — "no steals" is a result, not an absence of data.
        let steals = self.metrics.get(Metric::Steals);
        let ready_peak = self.metrics.get(Metric::ReadyDepthPeak);
        if ready_peak > 0 || steals > 0 {
            out.push_str(&format!(
                "dataflow: steals {steals}, ready_depth_peak {ready_peak}\n"
            ));
        }

        out.push_str("metrics:");
        for (name, v) in self.metrics.snapshot() {
            if v > 0 {
                out.push_str(&format!(" {name}={v}"));
            }
        }
        out.push('\n');
        out
    }
}

impl Recorder for ObsSink {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn record(&self, lane: Lane, ev: SpanEvent) {
        self.count(&ev);
        if let Ok(mut ring) = self.lanes[Self::lane_index(lane)].lock() {
            if ring.events.len() >= self.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
                self.metrics.bump(Metric::EventsDropped, 1);
            }
            ring.events.push_back(ev);
        }
    }
}

/// Longest cost-weighted path through a forward-edge DAG: node `i`'s
/// successors must all have indices `> i` (the shape
/// `tcu-sched`'s hazard index produces). Node weights are inclusive —
/// a single node's path is its own cost — so the result is the
/// schedule-independent lower bound on makespan a critical-path
/// analysis compares against.
#[must_use]
pub fn critical_path(costs: &[u64], succs: &[Vec<usize>]) -> u64 {
    let n = costs.len();
    debug_assert_eq!(succs.len(), n);
    let mut finish = vec![0u64; n];
    let mut best = 0u64;
    for i in 0..n {
        finish[i] += costs[i];
        best = best.max(finish[i]);
        for &j in &succs[i] {
            debug_assert!(j > i, "critical_path requires forward edges");
            if j > i && j < n {
                finish[j] = finish[j].max(finish[i]);
            }
        }
    }
    best
}

/// Minimal JSON string escaping for metadata values.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `args` object body for one event kind.
fn args_json(kind: &EventKind) -> String {
    match *kind {
        EventKind::PlanBuild {
            recorded,
            scheduled,
            waves,
        } => format!("\"recorded\": {recorded}, \"scheduled\": {scheduled}, \"waves\": {waves}"),
        EventKind::MemoHit | EventKind::MemoMiss => String::new(),
        EventKind::Compile { ops } => format!("\"ops\": {ops}"),
        EventKind::Wave {
            wave,
            items,
            units_busy,
        } => format!("\"wave\": {wave}, \"items\": {items}, \"units_busy\": {units_busy}"),
        EventKind::Stage { copies } => format!("\"copies\": {copies}"),
        EventKind::Merge { items } => format!("\"items\": {items}"),
        EventKind::OpExec {
            unit,
            rows,
            sim_cost,
        } => format!("\"unit\": {unit}, \"rows\": {rows}, \"sim_cost\": {sim_cost}"),
        EventKind::ScratchAcquire {
            unit,
            reused,
            bytes,
        } => format!("\"unit\": {unit}, \"reused\": {reused}, \"bytes\": {bytes}"),
        EventKind::PackLookup { unit, hit } => format!("\"unit\": {unit}, \"hit\": {hit}"),
        EventKind::PackEvict { unit } => format!("\"unit\": {unit}"),
        EventKind::Fault { unit, transient } => {
            format!("\"unit\": {unit}, \"transient\": {transient}")
        }
        EventKind::Retry {
            unit,
            attempt,
            backoff,
        } => format!("\"unit\": {unit}, \"attempt\": {attempt}, \"backoff\": {backoff}"),
        EventKind::Quarantine { unit, requeued } => {
            format!("\"unit\": {unit}, \"requeued\": {requeued}")
        }
        EventKind::Ready { unit, depth } => format!("\"unit\": {unit}, \"depth\": {depth}"),
        EventKind::Steal { from, to } => format!("\"from\": {from}, \"to\": {to}"),
    }
}

/// Process-global sink created from `TCU_TRACE_OUT`, if set.
static ENV_SINK: OnceLock<Option<(Arc<ObsSink>, String)>> = OnceLock::new();

fn env_entry() -> &'static Option<(Arc<ObsSink>, String)> {
    ENV_SINK.get_or_init(|| {
        std::env::var("TCU_TRACE_OUT")
            .ok()
            .filter(|p| !p.is_empty())
            .map(|p| (Arc::new(ObsSink::new()), p))
    })
}

/// The process-global recorder, present iff `TCU_TRACE_OUT=<path>` was
/// set when first consulted. Machines pick this up at construction, so
/// setting the variable is all it takes to trace an existing binary.
#[must_use]
pub fn env_recorder() -> Option<Arc<ObsSink>> {
    env_entry().as_ref().map(|(s, _)| Arc::clone(s))
}

/// The output path `TCU_TRACE_OUT` named, if set.
#[must_use]
pub fn env_trace_path() -> Option<&'static str> {
    env_entry().as_ref().map(|(_, p)| p.as_str())
}

/// Write the process-global sink's Chrome trace to the `TCU_TRACE_OUT`
/// path. Returns the path written, or `None` when tracing is off.
/// Binaries call this once at exit (std has no portable atexit seam).
///
/// # Errors
/// Propagates the underlying file write error.
pub fn flush_env_trace(meta: &RunMeta) -> std::io::Result<Option<&'static str>> {
    match env_entry() {
        Some((sink, path)) => {
            sink.write_chrome_trace(path, meta)?;
            Ok(Some(path.as_str()))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: EventKind, t: u64, d: u64) -> SpanEvent {
        SpanEvent {
            kind,
            t_ns: t,
            dur_ns: d,
        }
    }

    #[test]
    fn metrics_count_event_kinds() {
        let sink = ObsSink::new();
        sink.record(Lane::Scheduler, span(EventKind::MemoHit, 0, 0));
        sink.record(Lane::Scheduler, span(EventKind::MemoMiss, 1, 0));
        sink.record(Lane::Scheduler, span(EventKind::MemoHit, 2, 0));
        sink.record(
            Lane::Unit(0),
            span(EventKind::PackLookup { unit: 0, hit: true }, 3, 0),
        );
        let m = sink.metrics();
        assert_eq!(m.get(Metric::MemoHits), 2);
        assert_eq!(m.get(Metric::MemoMisses), 1);
        assert_eq!(m.get(Metric::PackHits), 1);
        assert_eq!(m.lookup("memo_hits"), Some(2));
        assert_eq!(m.lookup("no_such_metric"), None);
        assert_eq!(m.snapshot().len(), METRIC_NAMES.len());
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let sink = ObsSink::with_capacity(2);
        for t in 0..5u64 {
            sink.record(Lane::Unit(3), span(EventKind::MemoHit, t, 0));
        }
        let evs = sink.lane_events(Lane::Unit(3));
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].t_ns, evs[1].t_ns), (3, 4));
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn lanes_are_separate_and_units_clamp() {
        let sink = ObsSink::new();
        sink.record(Lane::Scheduler, span(EventKind::MemoHit, 0, 0));
        sink.record(Lane::Unit(1), span(EventKind::MemoMiss, 1, 0));
        sink.record(Lane::Unit(9999), span(EventKind::MemoMiss, 2, 0));
        assert_eq!(sink.lane_events(Lane::Scheduler).len(), 1);
        assert_eq!(sink.lane_events(Lane::Unit(1)).len(), 1);
        assert_eq!(sink.lane_events(Lane::Unit(0)).len(), 0);
        // Oversized unit ids land on the last lane instead of panicking.
        assert_eq!(
            sink.lane_events(Lane::Unit(MAX_UNIT_LANES as u32 - 1))
                .len(),
            1
        );
        assert_eq!(sink.active_units(), vec![1, MAX_UNIT_LANES as u32 - 1]);
    }

    #[test]
    fn utilization_busy_plus_idle_matches_window() {
        let sink = ObsSink::new();
        let op = |u, t, d| {
            span(
                EventKind::OpExec {
                    unit: u,
                    rows: 8,
                    sim_cost: 39,
                },
                t,
                d,
            )
        };
        sink.record(Lane::Unit(0), op(0, 100, 50));
        sink.record(Lane::Unit(0), op(0, 200, 30));
        sink.record(Lane::Unit(1), op(1, 120, 180));
        let (window, rows) = sink.unit_utilization();
        // First start 100 (unit 0), last end 120 + 180 = 300 (unit 1).
        assert_eq!(window, 200);
        for (u, busy, idle, ops) in rows {
            assert_eq!(busy + idle, window, "unit {u}");
            assert!(ops > 0);
        }
    }

    #[test]
    fn chrome_trace_names_lanes_and_closes_spans() {
        let sink = ObsSink::new();
        sink.record(
            Lane::Scheduler,
            span(
                EventKind::PlanBuild {
                    recorded: 10,
                    scheduled: 8,
                    waves: 2,
                },
                5,
                100,
            ),
        );
        sink.record(
            Lane::Unit(0),
            span(
                EventKind::OpExec {
                    unit: 0,
                    rows: 16,
                    sim_cost: 77,
                },
                10,
                40,
            ),
        );
        let meta = RunMeta {
            units: Some(2),
            host_threads: Some(1),
            ..RunMeta::default()
        };
        let json = sink.export_chrome_trace(&meta);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"scheduler\""));
        assert!(json.contains("\"name\": \"unit 0\""));
        // Declared-but-idle unit 1 still gets a named lane.
        assert!(json.contains("\"name\": \"unit 1\""));
        assert!(json.contains("\"units\": \"2\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"sim_cost\": 77"));
        // Every complete event carries a duration (spans are closed).
        for line in json.lines().filter(|l| l.contains("\"ph\": \"X\"")) {
            assert!(line.contains("\"dur\":"), "unclosed span: {line}");
        }
    }

    #[test]
    fn report_contains_utilization_and_metrics() {
        let sink = ObsSink::new();
        sink.record(
            Lane::Unit(2),
            span(
                EventKind::OpExec {
                    unit: 2,
                    rows: 4,
                    sim_cost: 16,
                },
                0,
                500,
            ),
        );
        sink.record(
            Lane::Scheduler,
            span(
                EventKind::Wave {
                    wave: 0,
                    items: 3,
                    units_busy: 2,
                },
                0,
                600,
            ),
        );
        let rep = sink.report(&RunMeta::default());
        assert!(rep.contains("unit 2: busy 500 ns (100.0%), idle 0 ns"));
        assert!(rep.contains("wave occupancy"));
        assert!(rep.contains("ops_executed=1"));
        assert!(rep.contains("waves=1"));
    }

    #[test]
    fn critical_path_on_chains_and_diamonds() {
        // Chain 0 -> 1 -> 2.
        assert_eq!(critical_path(&[3, 4, 5], &[vec![1], vec![2], vec![]]), 12);
        // Diamond: 0 -> {1, 2} -> 3; the heavy arm wins.
        assert_eq!(
            critical_path(&[1, 10, 2, 1], &[vec![1, 2], vec![3], vec![3], vec![]]),
            12
        );
        // No edges: the max node.
        assert_eq!(critical_path(&[7, 9, 3], &[vec![], vec![], vec![]]), 9);
        assert_eq!(critical_path(&[], &[]), 0);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn env_recorder_absent_without_env() {
        // The test harness never sets TCU_TRACE_OUT.
        assert!(env_recorder().is_none());
        assert!(env_trace_path().is_none());
        assert!(flush_env_trace(&RunMeta::default())
            .map(|p| p.is_none())
            .unwrap_or(false));
    }
}
