//! The `TensorOp` IR: one descriptor per tensor-unit invocation.
//!
//! In the (m, ℓ)-TCU model an algorithm *is* its instruction stream —
//! the sequence of tensor invocations (each `n·√m + ℓ`) plus scalar
//! work fully determines simulated time, independent of how the host
//! happens to compute the products. [`TensorOp`] makes that stream a
//! first-class artifact: every `tensor_mul*` front-end call on
//! [`crate::TcuMachine`] lowers to one `TensorOp` issued through a
//! single entry point, executors (host kernels, the systolic array, a
//! replay pass) consume the same descriptor, traces record it verbatim,
//! and schedulers (the parallel machine's deterministic partitions)
//! operate on descriptors without touching operand data.
//!
//! A `TensorOp` describes the *logical* multiplication the caller asked
//! for: `C[rows × width] (+)= A[rows × inner] · B[inner × width]`. The
//! machine validates it against its `√m`, derives the charged footprint
//! (padding undersized operands up to the unit's size, splitting tall
//! operands on units without native tall support) and records one trace
//! event per hardware invocation.

/// How a [`TensorOp`] treats operands smaller than the unit's footprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PadPolicy {
    /// The model's native shape contract: `A : n × √m` with `n ≥ √m`,
    /// `B : √m × √m`. Violations panic at issue time.
    #[default]
    Strict,
    /// Logical zero-padding for undersized operands (`inner ≤ √m`,
    /// `width ≤ √m`, any `rows ≥ 1`): the instruction is charged as if
    /// the operands were padded to the full hardware footprint —
    /// undersized work still pays for `√m` rows — while the host only
    /// computes (and returns) the trimmed `rows × width` product.
    ZeroPad,
}

/// Descriptor of one logical tensor-unit multiplication:
/// `C[rows × width] (+)= A[rows × inner] · B[inner × width]`.
///
/// `Copy` and tiny by design — schedulers and traces pass these around
/// by value. The operand *data* travels separately as borrowed views;
/// [`TensorOp::matches`] checks that a descriptor and a pair of views
/// agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorOp {
    /// Rows of the left operand (the streamed dimension `n`).
    pub rows: usize,
    /// Inner dimension (`A.cols = B.rows`); `≤ √m`, `= √m` when strict.
    pub inner: usize,
    /// Columns of the right operand; `≤ √m`, `= √m` when strict.
    pub width: usize,
    /// `true` for the fused `C += A·B` dataflow: the executor accumulates
    /// into the destination instead of overwriting it. Accounting is
    /// identical either way — the model charge covers the product; any
    /// CPU-billed final summation stays the caller's responsibility.
    pub accumulate: bool,
    /// Undersized-operand handling (see [`PadPolicy`]).
    pub pad: PadPolicy,
}

impl TensorOp {
    /// The model's native instruction: `A (rows × √m) · B (√m × √m)`.
    #[must_use]
    pub fn mul(rows: usize, sqrt_m: usize) -> Self {
        Self {
            rows,
            inner: sqrt_m,
            width: sqrt_m,
            accumulate: false,
            pad: PadPolicy::Strict,
        }
    }

    /// Native instruction with fused accumulation into the destination.
    #[must_use]
    pub fn mul_acc(rows: usize, sqrt_m: usize) -> Self {
        Self {
            accumulate: true,
            ..Self::mul(rows, sqrt_m)
        }
    }

    /// Zero-padded instruction for undersized operands.
    #[must_use]
    pub fn padded(rows: usize, inner: usize, width: usize) -> Self {
        Self {
            rows,
            inner,
            width,
            accumulate: false,
            pad: PadPolicy::ZeroPad,
        }
    }

    /// Rows the unit charges for: the raw row count for strict ops,
    /// padded up to `√m` for [`PadPolicy::ZeroPad`] ops.
    #[must_use]
    pub fn charge_rows(&self, sqrt_m: usize) -> usize {
        match self.pad {
            PadPolicy::Strict => self.rows,
            PadPolicy::ZeroPad => self.rows.max(sqrt_m),
        }
    }

    /// Check the descriptor against a unit of the given `√m`, returning
    /// [`crate::TcuError::OpInvalid`] with the model's shape-contract
    /// message on violation. [`Self::validate`] is the panicking form.
    pub fn check(&self, sqrt_m: usize) -> Result<(), crate::TcuError> {
        let s = sqrt_m;
        let reason = match self.pad {
            PadPolicy::Strict => {
                if self.inner != s {
                    Some(format!("left operand must have √m = {s} columns"))
                } else if self.width != s {
                    Some("right operand must be √m × √m".to_string())
                } else if self.rows < s {
                    Some(format!(
                        "model requires n ≥ √m rows (got {}); pad first",
                        self.rows
                    ))
                } else {
                    None
                }
            }
            PadPolicy::ZeroPad => {
                if self.inner > s {
                    Some("inner dimension exceeds √m".to_string())
                } else if self.width > s {
                    Some("right operand width exceeds √m".to_string())
                } else {
                    None
                }
            }
        };
        match reason {
            Some(reason) => Err(crate::TcuError::OpInvalid { reason }),
            None => Ok(()),
        }
    }

    /// Validate the descriptor against a unit of the given `√m`.
    ///
    /// # Panics
    /// Panics with the model's shape contract messages on violation
    /// (the `Display` of the [`crate::TcuError::OpInvalid`] that
    /// [`Self::check`] returns).
    pub fn validate(&self, sqrt_m: usize) {
        if let Err(e) = self.check(sqrt_m) {
            panic!("{e}");
        }
    }

    /// `true` iff views with the given shapes carry this op's operands
    /// (`A : rows × inner`, `B : inner × width`).
    #[must_use]
    pub fn matches(&self, a_shape: (usize, usize), b_shape: (usize, usize)) -> bool {
        a_shape == (self.rows, self.inner) && b_shape == (self.inner, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_policy_and_flags() {
        let op = TensorOp::mul(32, 4);
        assert_eq!((op.rows, op.inner, op.width), (32, 4, 4));
        assert!(!op.accumulate);
        assert_eq!(op.pad, PadPolicy::Strict);

        let acc = TensorOp::mul_acc(8, 4);
        assert!(acc.accumulate);

        let pad = TensorOp::padded(2, 3, 2);
        assert_eq!(pad.pad, PadPolicy::ZeroPad);
    }

    #[test]
    fn charge_rows_pads_up_to_sqrt_m() {
        assert_eq!(TensorOp::mul(32, 4).charge_rows(4), 32);
        assert_eq!(TensorOp::padded(2, 3, 2).charge_rows(4), 4);
        assert_eq!(TensorOp::padded(9, 3, 2).charge_rows(4), 9);
    }

    #[test]
    fn validate_accepts_model_shapes() {
        TensorOp::mul(4, 4).validate(4);
        TensorOp::mul(100, 4).validate(4);
        TensorOp::padded(1, 1, 1).validate(4);
        TensorOp::padded(100, 4, 3).validate(4);
    }

    #[test]
    #[should_panic(expected = "n ≥ √m")]
    fn validate_rejects_short_strict_operand() {
        TensorOp::mul(2, 4).validate(4);
    }

    #[test]
    #[should_panic(expected = "√m = 4 columns")]
    fn validate_rejects_wrong_inner() {
        TensorOp {
            rows: 8,
            inner: 5,
            width: 4,
            accumulate: false,
            pad: PadPolicy::Strict,
        }
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "inner dimension exceeds √m")]
    fn validate_rejects_oversized_padded_inner() {
        TensorOp::padded(4, 5, 4).validate(4);
    }

    #[test]
    fn check_returns_typed_errors_with_the_panic_wording() {
        assert!(TensorOp::mul(4, 4).check(4).is_ok());
        let short = TensorOp::mul(2, 4).check(4).unwrap_err();
        assert!(short.to_string().contains("n ≥ √m"), "{short}");
        let wide = TensorOp::padded(4, 4, 5).check(4).unwrap_err();
        assert!(wide.to_string().contains("width exceeds √m"), "{wide}");
    }

    #[test]
    fn matches_checks_both_operands() {
        let op = TensorOp::mul(8, 4);
        assert!(op.matches((8, 4), (4, 4)));
        assert!(!op.matches((8, 4), (4, 3)));
        assert!(!op.matches((7, 4), (4, 4)));
    }
}
