#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # tcu-core — the (m, ℓ)-TCU computational model
//!
//! This crate implements the machine model of Chowdhury, Silvestri &
//! Vella, *A Computational Model for Tensor Core Units* (SPAA 2020), §3:
//! a standard RAM whose CPU contains a *tensor unit* that multiplies an
//! `n × √m` matrix by a `√m × √m` matrix in time `O(n√m + ℓ)`, where
//!
//! * `m ≥ 1` is the hardware capacity (the unit natively multiplies
//!   `√m × √m` matrices),
//! * `ℓ ≥ 0` is the latency charged per invocation (systolic pipeline
//!   fill, activation, operand encoding), and
//! * `n ≥ √m` is chosen per call by the algorithm — the model's
//!   *asymmetric* feature: a tall left operand is streamed through the
//!   unit while the right operand (the "weights") stays resident.
//!
//! The simulator executes tensor instructions numerically (so algorithms
//! can be checked for correctness) while metering *simulated time*, the
//! quantity all the paper's theorems bound:
//!
//! * each scalar CPU operation costs 1 time unit ([`TcuMachine::charge`]),
//! * each tensor invocation with an `n`-row left operand costs exactly
//!   `n·√m + ℓ` under the default [`ModelTensorUnit`] policy.
//!
//! Two alternative policies reproduce the paper's variations: the *weak*
//! model of §5 ([`WeakTensorUnit`], square `√m × √m` calls only — tall
//! multiplications must be split, paying latency per tile), and the
//! cycle-counting policy implemented in the `tcu-systolic` crate, which
//! charges the exact step count of the §2.2 systolic array instead of the
//! closed-form model cost.
//!
//! ## Execution stack
//!
//! Every tensor invocation lowers to a [`TensorOp`] descriptor issued
//! through [`TcuMachine::issue_into`] — the single seam between the
//! *accounting* half (the [`TensorUnit`] costing policy, [`Stats`], the
//! [`TraceLog`]) and the *numeric* half (a pluggable [`Executor`]:
//! tiled host kernels by default, the cycle-level systolic array via
//! `tcu_systolic::SystolicExecutor`, or no numerics at all via
//! [`ReplayExecutor`]). Traces record the full per-invocation op plus
//! its charged cost, so a trace is a replayable program:
//! [`TcuMachine::replay`] re-derives `Stats` from one without touching
//! a matrix element.
//!
//! ## Accounting conventions
//!
//! The model says the tensor instruction's `O(n√m + ℓ)` charge covers
//! loading/storing its operands, so the simulator does **not** separately
//! charge the buffer copies that marshal blocks into tensor calls.
//! Conversely, all genuine CPU arithmetic an algorithm performs (block
//! sums, twiddle multiplications, pivot divisions, …) must be charged via
//! [`TcuMachine::charge`]; the algorithms in `tcu-algos` do so at the
//! granularity of the paper's pseudocode, and their unit tests pin the
//! resulting closed-form totals exactly.

pub mod cost;
pub mod error;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod op;
pub mod parallel;
pub mod tensor_unit;
pub mod trace;

pub use cost::{Stats, StatsSummary};
pub use error::{BindRole, TcuError};
pub use exec::{
    pack_cache_capacity, Executor, HostExecutor, OperandId, PackCacheStats, ReplayExecutor,
};
pub use fault::{
    assign_unit_ids, silence_injected_fault_panics, FaultKind, FaultPlan, FaultStats,
    FaultyExecutor, InjectedFault, RecoveryPolicy,
};
pub use machine::TcuMachine;
pub use op::{PadPolicy, TensorOp};
pub use parallel::{partition_lpt, ParallelTcuMachine, Partition, WaveAccountant};
pub use tensor_unit::{exact_sqrt, ModelTensorUnit, TensorUnit, WeakTensorUnit};
pub use trace::{TraceEvent, TraceLog};

/// Convenience alias: the default machine (model-cost tensor unit).
pub type ModelMachine = TcuMachine<ModelTensorUnit>;

/// Convenience alias: the weak-model machine of §5 (square calls only).
pub type WeakMachine = TcuMachine<WeakTensorUnit>;
