//! The simulated (m, ℓ)-TCU machine.
//!
//! [`TcuMachine`] couples a [`TensorUnit`] costing policy, an
//! [`Executor`] numeric backend, and the metering state ([`Stats`],
//! optional [`TraceLog`]). It exposes the model's two primitive actions:
//!
//! * [`TcuMachine::charge`] — scalar CPU work, one time unit per operation;
//! * [`TcuMachine::issue`] — the tensor instruction, described by a
//!   [`TensorOp`]: `C = A·B` with `A` of shape `n × √m` (`n ≥ √m`) and
//!   `B` of shape `√m × √m`.
//!
//! Every public `tensor_mul*` variant is a thin wrapper that lowers to
//! one `TensorOp` and routes it through the single
//! [`TcuMachine::issue_into`] entry point; accounting (the `TensorUnit`
//! charge, `Stats`, the trace) and numerics (the `Executor`) never mix,
//! so swapping backends cannot perturb simulated time.
//!
//! The machine is generic over the element type *per call*, not per
//! machine: the model's words are κ-bit and opaque (§3), so the same
//! machine instance may multiply `f64` matrices in one call and `i64`
//! matrices in the next — exactly as the paper's algorithms do (reals for
//! GE, integers for transitive closure, complex numbers for the DFT).

use crate::cost::{Stats, StatsSummary};
use crate::exec::{Executor, HostExecutor, OperandId};
use crate::op::{PadPolicy, TensorOp};
use crate::tensor_unit::{ModelTensorUnit, TensorUnit, WeakTensorUnit};
use crate::trace::TraceLog;
use std::sync::Arc;
use tcu_linalg::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// A simulated RAM with an attached tensor unit, metering simulated time.
///
/// `U` decides what invocations *cost*; `E` decides how their numerics
/// are *computed* (default: the tiled host kernels).
#[derive(Clone, Debug)]
pub struct TcuMachine<U: TensorUnit, E: Executor = HostExecutor> {
    unit: U,
    exec: E,
    stats: Stats,
    trace: Option<TraceLog>,
    /// Logical ops issued, by (accumulate, pad) kind — the
    /// [`StatsSummary`] breakdown. Not part of [`Stats`] (the pinned
    /// accounting surface) and not reconstructed by [`Self::replay`],
    /// which only sees per-invocation events.
    issued_kinds: [u64; 4],
    /// Execution-telemetry sink (`tcu-obs`), `None` unless opted in via
    /// [`Self::enable_recorder`] or `TCU_TRACE_OUT`. Strictly an
    /// observer: it sees wall-clock and already-charged quantities, so
    /// `Stats`/trace/results are identical with or without it.
    recorder: Option<Arc<dyn tcu_obs::Recorder>>,
}

impl TcuMachine<ModelTensorUnit> {
    /// The standard (m, ℓ)-TCU: tall left operands stream natively.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn model(m: usize, latency: u64) -> Self {
        Self::new(ModelTensorUnit::new(m, latency))
    }
}

impl TcuMachine<WeakTensorUnit> {
    /// The §5 weak TCU: only square `√m × √m` invocations.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn weak(m: usize, latency: u64) -> Self {
        Self::new(WeakTensorUnit::new(m, latency))
    }
}

impl<U: TensorUnit> TcuMachine<U> {
    /// Wrap an arbitrary costing policy over the default host-kernel
    /// backend. Host execution starts single-threaded unless
    /// `TCU_HOST_THREADS` requests more workers.
    #[must_use]
    pub fn new(unit: U) -> Self {
        Self::with_executor(unit, HostExecutor::new())
    }

    /// Opt in to (or back out of) parallel host execution of tensor
    /// instructions. Affects wall-clock only: simulated time, `Stats`,
    /// traces, and numeric results are identical for every value — the
    /// kernel's row-band split is deterministic.
    pub fn set_host_threads(&mut self, threads: usize) {
        self.exec.set_threads(threads);
    }

    /// Current host worker count for tensor-instruction execution.
    #[inline]
    #[must_use]
    pub fn host_threads(&self) -> usize {
        self.exec.threads()
    }
}

impl<U: TensorUnit, E: Executor> TcuMachine<U, E> {
    /// Couple a costing policy with an explicit numeric backend — e.g.
    /// `tcu_systolic::SystolicExecutor` for cycle-level array numerics,
    /// or [`crate::ReplayExecutor`] for accounting-only runs.
    #[must_use]
    pub fn with_executor(unit: U, exec: E) -> Self {
        let mut mach = Self {
            unit,
            exec,
            stats: Stats::default(),
            trace: None,
            issued_kinds: [0; 4],
            recorder: None,
        };
        // `TCU_TRACE_OUT=<path>` turns tracing on process-wide with no
        // caller changes: every machine built after the first check
        // feeds the global sink.
        if let Some(sink) = tcu_obs::env_recorder() {
            mach.enable_recorder(sink);
        }
        mach
    }

    /// Attach an execution-telemetry recorder: per-op execute spans
    /// land on the recorder's unit-0 lane (a serial machine is one
    /// unit), and the executor gets the chance to emit its own events
    /// (pack-cache traffic). Purely observational — simulated time,
    /// `Stats`, traces, and results are unchanged.
    pub fn enable_recorder(&mut self, recorder: Arc<dyn tcu_obs::Recorder>) {
        self.exec.attach_recorder(Arc::clone(&recorder), 0);
        self.recorder = Some(recorder);
    }

    /// The attached telemetry recorder, if any.
    #[must_use]
    pub fn recorder_handle(&self) -> Option<Arc<dyn tcu_obs::Recorder>> {
        self.recorder.clone()
    }

    /// The numeric backend.
    #[inline]
    #[must_use]
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Mutable access to the numeric backend (e.g. to re-tune it).
    #[inline]
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.exec
    }

    /// `√m` of the attached unit.
    #[inline]
    #[must_use]
    pub fn sqrt_m(&self) -> usize {
        self.unit.sqrt_m()
    }

    /// Hardware capacity `m`.
    #[inline]
    #[must_use]
    pub fn m(&self) -> usize {
        self.unit.m()
    }

    /// Per-invocation latency ℓ.
    #[inline]
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.unit.latency()
    }

    /// The costing policy.
    #[inline]
    #[must_use]
    pub fn unit(&self) -> &U {
        &self.unit
    }

    /// Charge `ops` scalar CPU operations (1 time unit each).
    #[inline]
    pub fn charge(&mut self, ops: u64) {
        self.stats.record_scalar(ops);
        if let Some(t) = &mut self.trace {
            t.push_scalar(ops);
        }
    }

    /// Total simulated time so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.stats.time()
    }

    /// Detailed counters.
    #[inline]
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Zero all counters (and any in-progress trace).
    pub fn reset(&mut self) {
        self.stats = Stats::default();
        self.issued_kinds = [0; 4];
        if let Some(t) = &mut self.trace {
            *t = TraceLog::new();
        }
    }

    /// One-look digest of everything issued so far: the [`Stats`]
    /// counters plus the per-kind breakdown of logical ops, plus the
    /// executor's pack-cache counters when it keeps a cache. The kind
    /// counts come from the issue path, so a replayed trace contributes
    /// invocations and rows but no logical-op kinds.
    #[must_use]
    pub fn stats_summary(&self) -> StatsSummary {
        let [muls, mul_accs, padded, padded_accs] = self.issued_kinds;
        StatsSummary {
            ops_issued: self.issued_kinds.iter().sum(),
            muls,
            mul_accs,
            padded,
            padded_accs,
            invocations: self.stats.tensor_calls,
            rows_charged: self.stats.tensor_rows,
            tensor_time: self.stats.tensor_time,
            scalar_ops: self.stats.scalar_ops,
            time: self.stats.time(),
            pack_cache: self.exec.cache_stats(),
        }
    }

    /// Start recording an execution trace (for the §5 external-memory
    /// replay); any previous trace is discarded.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceLog::new());
    }

    /// Stop recording and return the trace collected since
    /// [`Self::enable_trace`].
    pub fn take_trace(&mut self) -> TraceLog {
        self.trace.take().unwrap_or_default()
    }

    /// The trace recorded so far, without stopping or consuming it
    /// (`None` unless [`Self::enable_trace`] was called).
    #[must_use]
    pub fn trace_log(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// The single tensor-instruction entry point: validate `op` against
    /// the unit and the operand views, charge it under the costing
    /// policy (recording one trace event per hardware invocation), and
    /// hand the numerics to the executor, which computes
    /// `out (+)= A·B` per `op.accumulate`.
    ///
    /// # Panics
    /// Panics if `op` violates the model's shape contract for this
    /// unit, or if the views do not carry `op`'s operand shapes, or if
    /// `out` is not `op.rows × op.width`.
    pub fn issue_into<T: Scalar>(
        &mut self,
        op: TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) {
        self.issue_into_tagged(op, a, None, b, out);
    }

    /// [`Self::issue_into`] with the left operand's provenance attached:
    /// `a_id` names the logical buffer region (and write-generation) the
    /// view was carved from, letting the executor cache derived forms of
    /// it across invocations (see [`crate::OperandId`] and
    /// `HostExecutor::enable_pack_cache`). Accounting is identical to
    /// the untagged path — the tag only reaches the numeric backend.
    ///
    /// # Panics
    /// Same shape rules as [`Self::issue_into`].
    pub fn issue_into_tagged<T: Scalar>(
        &mut self,
        op: TensorOp,
        a: MatrixView<'_, T>,
        a_id: Option<OperandId>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) {
        assert_eq!(
            (a.rows(), a.cols()),
            (op.rows, op.inner),
            "left operand does not match the op descriptor"
        );
        match op.pad {
            PadPolicy::Strict => assert_eq!(
                (b.rows(), b.cols()),
                (op.inner, op.width),
                "right operand must be √m × √m"
            ),
            PadPolicy::ZeroPad => {
                assert_eq!(b.rows(), op.inner, "inner dimensions must agree");
                assert_eq!(
                    b.cols(),
                    op.width,
                    "right operand does not match the op descriptor"
                );
            }
        }
        op.validate(self.sqrt_m());
        assert_eq!(
            (out.rows(), out.cols()),
            (op.rows, op.width),
            "matmul_acc: output shape mismatch"
        );
        let sim_cost = self.charge_op(&op);
        let start = self.recorder.as_ref().map(|r| r.now_ns());
        let _ = self.exec.execute_tagged(&op, a, a_id, b, out);
        if let (Some(rec), Some(t0)) = (self.recorder.as_ref(), start) {
            rec.record(
                tcu_obs::Lane::Unit(0),
                tcu_obs::SpanEvent {
                    kind: tcu_obs::EventKind::OpExec {
                        unit: 0,
                        rows: op.charge_rows(self.unit.sqrt_m()) as u64,
                        sim_cost,
                    },
                    t_ns: t0,
                    dur_ns: rec.now_ns().saturating_sub(t0),
                },
            );
        }
    }

    /// [`Self::issue_into`] allocating the `rows × width` product
    /// (for non-accumulating ops).
    ///
    /// # Panics
    /// Shape rules of [`Self::issue_into`], plus `op.accumulate` must
    /// be `false` (an accumulating op needs a destination to add into).
    #[must_use]
    pub fn issue<T: Scalar>(
        &mut self,
        op: TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
    ) -> Matrix<T> {
        assert!(
            !op.accumulate,
            "accumulating ops need a destination: use issue_into"
        );
        let mut out = Matrix::<T>::zeros(op.rows, op.width);
        self.issue_into(op, a, b, &mut out.view_mut());
        out
    }

    /// Re-run a recorded trace as a program through this machine's
    /// costing policy: every tensor event is re-charged per recorded
    /// invocation (tall splits were applied when the trace was
    /// recorded) and every scalar segment re-billed — no numerics run.
    /// Replaying a trace on a machine with the unit that recorded it
    /// reproduces `Stats` and the trace stream exactly.
    pub fn replay(&mut self, trace: &TraceLog) {
        crate::exec::replay_events(trace, &self.unit, &mut self.stats, self.trace.as_mut());
    }

    /// The tensor instruction: `C = A·B` where `A` is `n × √m` with
    /// `n ≥ √m` and `B` is `√m × √m` (§3). On a unit without native tall
    /// support (the weak model), the left operand is split into `⌈n/√m⌉`
    /// square tiles, one invocation each.
    ///
    /// The numeric result is the exact ring product; the time charged is
    /// whatever the unit's policy dictates. Operand marshalling is covered
    /// by the invocation charge and not billed separately.
    ///
    /// # Panics
    /// Panics if shapes violate the model (`A.cols ≠ √m`, `B ≠ √m × √m`,
    /// or `A.rows < √m`); use [`Self::tensor_mul_padded`] for undersized
    /// operands.
    #[must_use]
    pub fn tensor_mul<T: Scalar>(&mut self, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.tensor_mul_view(a.view(), b.view())
    }

    /// [`Self::tensor_mul`] on borrowed operand views: the zero-copy hot
    /// path. Blocked algorithms pass subviews of their larger matrices
    /// directly, so no block is materialized just to be multiplied.
    ///
    /// # Panics
    /// Same shape rules as [`Self::tensor_mul`].
    #[must_use]
    pub fn tensor_mul_view<T: Scalar>(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
    ) -> Matrix<T> {
        self.issue(strict_op(&a, &b, false), a, b)
    }

    /// [`Self::tensor_mul_view`] with the product accumulated straight
    /// into `out` (`out += A·B`) — the `D = A·B + C` dataflow of real
    /// tensor cores, exposed as a *host-level* fusion: the simulated
    /// charge is exactly that of `tensor_mul`, and callers that bill the
    /// accumulation as CPU work (Theorem 2's "final summation") must
    /// still [`Self::charge`] it explicitly, so `Stats`/trace output is
    /// identical to the product-then-add flow. What the fusion removes
    /// is the host's intermediate product matrix and second pass.
    ///
    /// # Panics
    /// Shape rules of [`Self::tensor_mul_view`], plus `out` must be
    /// `a.rows × √m`.
    pub fn tensor_mul_acc_view<T: Scalar>(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) {
        self.issue_into(strict_op(&a, &b, true), a, b, out);
    }

    /// Convenience wrapper for operands smaller than the unit's footprint:
    /// zero-pads `A` (columns up to `√m`, rows up to `√m`) and `B` (up to
    /// `√m × √m`, top-left aligned), issues the padded instruction, and
    /// trims the result back to `A.rows × B.cols`. The charge is that of
    /// the *padded* call — undersized work still pays for the full
    /// hardware footprint, exactly why the paper's base cases stop at the
    /// unit's size rather than below it.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or exceed `√m`.
    #[must_use]
    pub fn tensor_mul_padded<T: Scalar>(&mut self, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.tensor_mul_padded_view(a.view(), b.view())
    }

    /// [`Self::tensor_mul_padded`] on borrowed operand views (see
    /// [`Self::tensor_mul_view`]).
    ///
    /// # Panics
    /// Same shape rules as [`Self::tensor_mul_padded`].
    #[must_use]
    pub fn tensor_mul_padded_view<T: Scalar>(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
    ) -> Matrix<T> {
        self.issue(TensorOp::padded(a.rows(), a.cols(), b.cols()), a, b)
    }

    /// Meter one logical op: one native invocation on units with tall
    /// support, `⌈n/√m⌉` square invocations otherwise. Trace events
    /// record the *per-invocation* descriptor (rows as charged).
    /// Returns the total simulated cost charged, for telemetry.
    fn charge_op(&mut self, op: &TensorOp) -> u64 {
        let kind = match (op.pad, op.accumulate) {
            (PadPolicy::Strict, false) => 0,
            (PadPolicy::Strict, true) => 1,
            (PadPolicy::ZeroPad, false) => 2,
            (PadPolicy::ZeroPad, true) => 3,
        };
        self.issued_kinds[kind] += 1;
        let s = self.sqrt_m();
        let n = op.charge_rows(s);
        let mut charged = 0u64;
        if self.unit.supports_tall() {
            let cost = self.unit.invocation_cost(n);
            let lat = self.unit.invocation_latency(n);
            self.stats.record_tensor(n as u64, cost, lat);
            charged += cost;
            if let Some(t) = &mut self.trace {
                t.push_tensor(TensorOp { rows: n, ..*op }, cost);
            }
        } else {
            let tiles = n.div_ceil(s);
            for _ in 0..tiles {
                let cost = self.unit.invocation_cost(s);
                let lat = self.unit.invocation_latency(s);
                self.stats.record_tensor(s as u64, cost, lat);
                charged += cost;
                if let Some(t) = &mut self.trace {
                    t.push_tensor(TensorOp { rows: s, ..*op }, cost);
                }
            }
        }
        charged
    }
}

/// Lower a strict `tensor_mul*` call to its descriptor: the op records
/// the shapes the caller actually passed, so [`TensorOp::validate`]
/// reports model-contract violations (wrong width, too few rows) with
/// the operands' dimensions.
fn strict_op<T: Scalar>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    accumulate: bool,
) -> TensorOp {
    TensorOp {
        rows: a.rows(),
        inner: a.cols(),
        width: b.cols(),
        accumulate,
        pad: PadPolicy::Strict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ReplayExecutor;
    use crate::trace::TraceEvent;
    use tcu_linalg::ops::matmul_naive;

    fn iota(r: usize, c: usize) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| (i * c + j + 1) as i64)
    }

    #[test]
    fn view_call_equals_owned_call_in_result_and_cost() {
        let big = Matrix::from_fn(16, 12, |i, j| (3 * i + 5 * j) as i64);
        let wts = Matrix::from_fn(8, 8, |i, j| (i * 2 + j) as i64);
        let a = big.block(2, 3, 8, 4);
        let b = wts.block(2, 2, 4, 4);

        let mut owned = TcuMachine::model(16, 9);
        let c_owned = owned.tensor_mul(&a, &b);
        let mut viewed = TcuMachine::model(16, 9);
        let c_viewed = viewed.tensor_mul_view(big.subview(2, 3, 8, 4), wts.subview(2, 2, 4, 4));
        assert_eq!(c_owned, c_viewed);
        assert_eq!(owned.stats(), viewed.stats());
        assert_eq!(c_owned, matmul_naive(&a, &b));
    }

    #[test]
    fn host_threads_change_nothing_observable() {
        // 300 rows: enough for a real multi-band split (threads are
        // clamped so every band has at least the kernel's minimum rows).
        let a = iota(300, 4);
        let b = iota(4, 4);
        let mut serial = TcuMachine::model(16, 3);
        serial.enable_trace();
        let cs = serial.tensor_mul(&a, &b);

        let mut parallel = TcuMachine::model(16, 3);
        parallel.set_host_threads(4);
        assert_eq!(parallel.host_threads(), 4);
        parallel.enable_trace();
        let cp = parallel.tensor_mul(&a, &b);

        assert_eq!(cs, cp);
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.take_trace(), parallel.take_trace());
    }

    #[test]
    fn square_call_costs_m_plus_latency() {
        let mut mach = TcuMachine::model(16, 7);
        let a = iota(4, 4);
        let b = Matrix::<i64>::identity(4);
        let c = mach.tensor_mul(&a, &b);
        assert_eq!(c, a);
        assert_eq!(mach.time(), 16 + 7);
        assert_eq!(mach.stats().tensor_calls, 1);
        assert_eq!(mach.stats().tensor_rows, 4);
    }

    #[test]
    fn tall_call_streams_rows() {
        let mut mach = TcuMachine::model(16, 100);
        let a = iota(32, 4);
        let b = iota(4, 4);
        let c = mach.tensor_mul(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        // one invocation: 32·4 + 100
        assert_eq!(mach.time(), 32 * 4 + 100);
        assert_eq!(mach.stats().tensor_calls, 1);
        assert_eq!(mach.stats().tensor_latency_time, 100);
    }

    #[test]
    fn weak_machine_splits_tall_calls() {
        let mut weak = TcuMachine::weak(16, 100);
        let a = iota(32, 4);
        let b = iota(4, 4);
        let c = weak.tensor_mul(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        // 32/4 = 8 square invocations, each 16 + 100
        assert_eq!(weak.stats().tensor_calls, 8);
        assert_eq!(weak.time(), 8 * (16 + 100));
    }

    #[test]
    fn weak_machine_rounds_up_ragged_tiles() {
        let mut weak = TcuMachine::weak(16, 0);
        let a = iota(10, 4); // 10 rows -> 3 tiles of 4
        let b = iota(4, 4);
        let c = weak.tensor_mul(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        assert_eq!(weak.stats().tensor_calls, 3);
        assert_eq!(weak.time(), 3 * 16);
    }

    #[test]
    fn padded_call_charges_full_footprint() {
        let mut mach = TcuMachine::model(16, 9);
        let a = iota(2, 3); // 2×3, under-sized in both dimensions
        let b = iota(3, 2);
        let c = mach.tensor_mul_padded(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        assert_eq!((c.rows(), c.cols()), (2, 2));
        // charged as a full √m-row call: 4·4 + 9
        assert_eq!(mach.time(), 16 + 9);
    }

    #[test]
    #[should_panic(expected = "n ≥ √m")]
    fn short_operand_rejected_without_padding() {
        let mut mach = TcuMachine::model(16, 0);
        let a = iota(2, 4);
        let b = iota(4, 4);
        let _ = mach.tensor_mul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "√m = 4 columns")]
    fn wrong_width_rejected() {
        let mut mach = TcuMachine::model(16, 0);
        let a = iota(4, 5);
        let b = iota(5, 5);
        let _ = mach.tensor_mul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "does not match the op descriptor")]
    fn op_view_mismatch_rejected() {
        let mut mach = TcuMachine::model(16, 0);
        let a = iota(8, 4);
        let b = iota(4, 4);
        let _ = mach.issue(TensorOp::mul(9, 4), a.view(), b.view());
    }

    #[test]
    #[should_panic(expected = "use issue_into")]
    fn accumulating_op_needs_destination() {
        let mut mach = TcuMachine::model(16, 0);
        let a = iota(8, 4);
        let b = iota(4, 4);
        let _ = mach.issue(TensorOp::mul_acc(8, 4), a.view(), b.view());
    }

    #[test]
    fn charge_and_reset() {
        let mut mach = TcuMachine::model(4, 0);
        mach.charge(123);
        assert_eq!(mach.time(), 123);
        mach.reset();
        assert_eq!(mach.time(), 0);
        assert_eq!(mach.stats(), &Stats::default());
    }

    #[test]
    fn trace_records_call_sequence() {
        let mut mach = TcuMachine::model(16, 5);
        mach.enable_trace();
        mach.charge(10);
        let a = iota(8, 4);
        let b = iota(4, 4);
        let _ = mach.tensor_mul(&a, &b);
        mach.charge(3);
        mach.charge(4);
        let trace = mach.take_trace();
        assert_eq!(
            trace.events(),
            &[
                TraceEvent::Scalar { ops: 10 },
                TraceEvent::Tensor {
                    op: TensorOp::mul(8, 4),
                    cost: 8 * 4 + 5
                },
                TraceEvent::Scalar { ops: 7 },
            ]
        );
        // taking the trace stops recording
        mach.charge(1);
        assert!(mach.take_trace().is_empty());
    }

    #[test]
    fn replay_reproduces_stats_and_trace() {
        let mut mach = TcuMachine::model(16, 5);
        mach.enable_trace();
        mach.charge(10);
        let a = iota(8, 4);
        let b = iota(4, 4);
        let _ = mach.tensor_mul(&a, &b);
        let _ = mach.tensor_mul_padded(&iota(2, 3), &iota(3, 2));
        let trace = mach.take_trace();

        let mut replayed = TcuMachine::with_executor(*mach.unit(), ReplayExecutor::default());
        replayed.enable_trace();
        replayed.replay(&trace);
        assert_eq!(replayed.stats(), mach.stats());
        assert_eq!(replayed.take_trace(), trace);
    }

    #[test]
    fn replay_executor_machine_charges_without_numerics() {
        let a = iota(8, 4);
        let b = iota(4, 4);
        let mut numeric = TcuMachine::model(16, 5);
        let mut ghost = TcuMachine::with_executor(*numeric.unit(), ReplayExecutor::default());
        let c_num = numeric.tensor_mul(&a, &b);
        let c_ghost = ghost.tensor_mul(&a, &b);
        assert_eq!(numeric.stats(), ghost.stats());
        assert_eq!(c_num, matmul_naive(&a, &b));
        assert_eq!(c_ghost, Matrix::<i64>::zeros(8, 4));
    }

    #[test]
    fn stats_summary_breaks_ops_down_by_kind() {
        let mut mach = TcuMachine::weak(16, 5);
        let a = iota(8, 4);
        let b = iota(4, 4);
        let _ = mach.tensor_mul(&a, &b); // strict, splits into 2 tiles
        let _ = mach.tensor_mul_padded(&iota(2, 3), &iota(3, 2));
        let mut out = mach.tensor_mul(&a, &b);
        mach.tensor_mul_acc_view(a.view(), b.view(), &mut out.view_mut());
        mach.charge(9);
        let s = mach.stats_summary();
        assert_eq!(s.ops_issued, 4);
        assert_eq!((s.muls, s.mul_accs, s.padded, s.padded_accs), (2, 1, 1, 0));
        // Weak unit: each 8-row strict op is 2 invocations; the padded
        // and accumulate ops are 1 each... acc op is 8 rows -> 2 tiles.
        assert_eq!(s.invocations, mach.stats().tensor_calls);
        assert_eq!(s.rows_charged, mach.stats().tensor_rows);
        assert_eq!(s.scalar_ops, 9);
        assert_eq!(s.time, mach.time());
        let line = s.to_string();
        assert!(line.contains("ops issued 4") && line.contains("mul+acc 1"));
        mach.reset();
        assert_eq!(mach.stats_summary(), crate::cost::StatsSummary::default());
    }

    #[test]
    fn tagged_issue_matches_untagged_exactly() {
        let big = iota(16, 12);
        let b = iota(4, 4);
        let mut plain = TcuMachine::model(16, 3);
        plain.enable_trace();
        let mut tagged = TcuMachine::model(16, 3);
        tagged.executor_mut().enable_pack_cache(4);
        tagged.enable_trace();
        let id = OperandId {
            buffer: 0,
            generation: 0,
            origin: (0, 4),
            extent: (16, 4),
        };
        let want = plain.tensor_mul_view(big.subview(0, 4, 16, 4), b.view());
        for _ in 0..3 {
            let mut got = Matrix::<i64>::zeros(16, 4);
            tagged.issue_into_tagged(
                TensorOp::mul(16, 4),
                big.subview(0, 4, 16, 4),
                Some(id),
                b.view(),
                &mut got.view_mut(),
            );
            assert_eq!(got, want);
        }
        let cache = tagged.executor().pack_cache_stats().expect("cache on");
        assert_eq!((cache.misses, cache.hits), (1, 2));
        // Accounting is unchanged by tagging: 3 tagged ops = 3× one op.
        assert_eq!(tagged.stats().tensor_calls, 3);
        assert_eq!(tagged.stats().tensor_time, 3 * plain.stats().tensor_time);
    }

    #[test]
    fn mixed_element_types_on_one_machine() {
        let mut mach = TcuMachine::model(4, 0);
        let af = Matrix::<f64>::identity(2);
        let _ = mach.tensor_mul(&af, &af);
        let ai = Matrix::<i64>::identity(2);
        let _ = mach.tensor_mul(&ai, &ai);
        assert_eq!(mach.stats().tensor_calls, 2);
    }
}
