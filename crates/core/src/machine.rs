//! The simulated (m, ℓ)-TCU machine.
//!
//! [`TcuMachine`] couples a [`TensorUnit`] costing policy with the metering
//! state ([`Stats`], optional [`TraceLog`]) and exposes the model's two
//! primitive actions:
//!
//! * [`TcuMachine::charge`] — scalar CPU work, one time unit per operation;
//! * [`TcuMachine::tensor_mul`] — the tensor instruction: `C = A·B` with
//!   `A` of shape `n × √m` (`n ≥ √m`) and `B` of shape `√m × √m`.
//!
//! The machine is generic over the element type *per call*, not per
//! machine: the model's words are κ-bit and opaque (§3), so the same
//! machine instance may multiply `f64` matrices in one call and `i64`
//! matrices in the next — exactly as the paper's algorithms do (reals for
//! GE, integers for transitive closure, complex numbers for the DFT).

use crate::cost::Stats;
use crate::tensor_unit::{ModelTensorUnit, TensorUnit, WeakTensorUnit};
use crate::trace::TraceLog;
use tcu_linalg::kernels;
use tcu_linalg::{Matrix, MatrixView, Scalar};

/// A simulated RAM with an attached tensor unit, metering simulated time.
#[derive(Clone, Debug)]
pub struct TcuMachine<U: TensorUnit> {
    unit: U,
    stats: Stats,
    trace: Option<TraceLog>,
    /// Host worker threads for executing tensor instructions (the
    /// *simulator's* wall-clock, never simulated time). Defaults to 1;
    /// opt in via [`Self::set_host_threads`] or `TCU_HOST_THREADS`. The
    /// parallel kernel's row-band split is deterministic, so numeric
    /// results are identical for every setting.
    host_threads: usize,
}

impl TcuMachine<ModelTensorUnit> {
    /// The standard (m, ℓ)-TCU: tall left operands stream natively.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn model(m: usize, latency: u64) -> Self {
        Self::new(ModelTensorUnit::new(m, latency))
    }
}

impl TcuMachine<WeakTensorUnit> {
    /// The §5 weak TCU: only square `√m × √m` invocations.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn weak(m: usize, latency: u64) -> Self {
        Self::new(WeakTensorUnit::new(m, latency))
    }
}

impl<U: TensorUnit> TcuMachine<U> {
    /// Wrap an arbitrary costing policy. Host execution starts
    /// single-threaded unless `TCU_HOST_THREADS` requests more workers.
    #[must_use]
    pub fn new(unit: U) -> Self {
        let host_threads = std::env::var("TCU_HOST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        Self {
            unit,
            stats: Stats::default(),
            trace: None,
            host_threads,
        }
    }

    /// Opt in to (or back out of) parallel host execution of tensor
    /// instructions. Affects wall-clock only: simulated time, `Stats`,
    /// traces, and numeric results are identical for every value — the
    /// kernel's row-band split is deterministic.
    pub fn set_host_threads(&mut self, threads: usize) {
        self.host_threads = threads.max(1);
    }

    /// Current host worker count for tensor-instruction execution.
    #[inline]
    #[must_use]
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// `√m` of the attached unit.
    #[inline]
    #[must_use]
    pub fn sqrt_m(&self) -> usize {
        self.unit.sqrt_m()
    }

    /// Hardware capacity `m`.
    #[inline]
    #[must_use]
    pub fn m(&self) -> usize {
        self.unit.m()
    }

    /// Per-invocation latency ℓ.
    #[inline]
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.unit.latency()
    }

    /// The costing policy.
    #[inline]
    #[must_use]
    pub fn unit(&self) -> &U {
        &self.unit
    }

    /// Charge `ops` scalar CPU operations (1 time unit each).
    #[inline]
    pub fn charge(&mut self, ops: u64) {
        self.stats.record_scalar(ops);
        if let Some(t) = &mut self.trace {
            t.push_scalar(ops);
        }
    }

    /// Total simulated time so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.stats.time()
    }

    /// Detailed counters.
    #[inline]
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Zero all counters (and any in-progress trace).
    pub fn reset(&mut self) {
        self.stats = Stats::default();
        if let Some(t) = &mut self.trace {
            *t = TraceLog::new();
        }
    }

    /// Start recording an execution trace (for the §5 external-memory
    /// replay); any previous trace is discarded.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceLog::new());
    }

    /// Stop recording and return the trace collected since
    /// [`Self::enable_trace`].
    pub fn take_trace(&mut self) -> TraceLog {
        self.trace.take().unwrap_or_default()
    }

    /// The tensor instruction: `C = A·B` where `A` is `n × √m` with
    /// `n ≥ √m` and `B` is `√m × √m` (§3). On a unit without native tall
    /// support (the weak model), the left operand is split into `⌈n/√m⌉`
    /// square tiles, one invocation each.
    ///
    /// The numeric result is the exact ring product; the time charged is
    /// whatever the unit's policy dictates. Operand marshalling is covered
    /// by the invocation charge and not billed separately.
    ///
    /// # Panics
    /// Panics if shapes violate the model (`A.cols ≠ √m`, `B ≠ √m × √m`,
    /// or `A.rows < √m`); use [`Self::tensor_mul_padded`] for undersized
    /// operands.
    #[must_use]
    pub fn tensor_mul<T: Scalar>(&mut self, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.tensor_mul_view(a.view(), b.view())
    }

    /// [`Self::tensor_mul`] on borrowed operand views: the zero-copy hot
    /// path. Blocked algorithms pass subviews of their larger matrices
    /// directly, so no block is materialized just to be multiplied; the
    /// product is computed by the tiled host kernel (parallel across
    /// deterministic row bands when [`Self::set_host_threads`] opted in).
    ///
    /// # Panics
    /// Same shape rules as [`Self::tensor_mul`].
    #[must_use]
    pub fn tensor_mul_view<T: Scalar>(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
    ) -> Matrix<T> {
        let s = self.sqrt_m();
        assert_eq!(a.cols(), s, "left operand must have √m = {s} columns");
        assert_eq!(
            (b.rows(), b.cols()),
            (s, s),
            "right operand must be √m × √m"
        );
        assert!(
            a.rows() >= s,
            "model requires n ≥ √m rows (got {}); pad first",
            a.rows()
        );
        self.charge_tensor(a.rows());
        kernels::matmul_threads(a, b, self.host_threads)
    }

    /// [`Self::tensor_mul_view`] with the product accumulated straight
    /// into `out` (`out += A·B`) — the `D = A·B + C` dataflow of real
    /// tensor cores, exposed as a *host-level* fusion: the simulated
    /// charge is exactly that of `tensor_mul`, and callers that bill the
    /// accumulation as CPU work (Theorem 2's "final summation") must
    /// still [`Self::charge`] it explicitly, so `Stats`/trace output is
    /// identical to the product-then-add flow. What the fusion removes
    /// is the host's intermediate product matrix and second pass.
    ///
    /// # Panics
    /// Shape rules of [`Self::tensor_mul_view`], plus `out` must be
    /// `a.rows × √m`.
    pub fn tensor_mul_acc_view<T: Scalar>(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut tcu_linalg::MatrixViewMut<'_, T>,
    ) {
        let s = self.sqrt_m();
        assert_eq!(a.cols(), s, "left operand must have √m = {s} columns");
        assert_eq!(
            (b.rows(), b.cols()),
            (s, s),
            "right operand must be √m × √m"
        );
        assert!(
            a.rows() >= s,
            "model requires n ≥ √m rows (got {}); pad first",
            a.rows()
        );
        self.charge_tensor(a.rows());
        kernels::matmul_acc_threads(out, a, b, self.host_threads);
    }

    /// Convenience wrapper for operands smaller than the unit's footprint:
    /// zero-pads `A` (columns up to `√m`, rows up to `√m`) and `B` (up to
    /// `√m × √m`, top-left aligned), issues the padded instruction, and
    /// trims the result back to `A.rows × B.cols`. The charge is that of
    /// the *padded* call — undersized work still pays for the full
    /// hardware footprint, exactly why the paper's base cases stop at the
    /// unit's size rather than below it.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or exceed `√m`.
    #[must_use]
    pub fn tensor_mul_padded<T: Scalar>(&mut self, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        self.tensor_mul_padded_view(a.view(), b.view())
    }

    /// [`Self::tensor_mul_padded`] on borrowed operand views (see
    /// [`Self::tensor_mul_view`]).
    ///
    /// # Panics
    /// Same shape rules as [`Self::tensor_mul_padded`].
    #[must_use]
    pub fn tensor_mul_padded_view<T: Scalar>(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
    ) -> Matrix<T> {
        let s = self.sqrt_m();
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        assert!(a.cols() <= s, "inner dimension exceeds √m");
        assert!(b.cols() <= s, "right operand width exceeds √m");
        let n_effective = a.rows().max(s);
        self.charge_tensor(n_effective);
        kernels::matmul_threads(a, b, self.host_threads)
    }

    /// Meter one logical tensor multiplication with an `n_rows`-row left
    /// operand, splitting into square invocations when the unit lacks
    /// native tall support.
    fn charge_tensor(&mut self, n_rows: usize) {
        let s = self.sqrt_m();
        if self.unit.supports_tall() {
            let cost = self.unit.invocation_cost(n_rows);
            let lat = self.unit.invocation_latency(n_rows);
            self.stats.record_tensor(n_rows as u64, cost, lat);
            if let Some(t) = &mut self.trace {
                t.push_tensor(n_rows as u64);
            }
        } else {
            let tiles = n_rows.div_ceil(s);
            for _ in 0..tiles {
                let cost = self.unit.invocation_cost(s);
                let lat = self.unit.invocation_latency(s);
                self.stats.record_tensor(s as u64, cost, lat);
                if let Some(t) = &mut self.trace {
                    t.push_tensor(s as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use tcu_linalg::ops::matmul_naive;

    fn iota(r: usize, c: usize) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| (i * c + j + 1) as i64)
    }

    #[test]
    fn view_call_equals_owned_call_in_result_and_cost() {
        let big = Matrix::from_fn(16, 12, |i, j| (3 * i + 5 * j) as i64);
        let wts = Matrix::from_fn(8, 8, |i, j| (i * 2 + j) as i64);
        let a = big.block(2, 3, 8, 4);
        let b = wts.block(2, 2, 4, 4);

        let mut owned = TcuMachine::model(16, 9);
        let c_owned = owned.tensor_mul(&a, &b);
        let mut viewed = TcuMachine::model(16, 9);
        let c_viewed = viewed.tensor_mul_view(big.subview(2, 3, 8, 4), wts.subview(2, 2, 4, 4));
        assert_eq!(c_owned, c_viewed);
        assert_eq!(owned.stats(), viewed.stats());
        assert_eq!(c_owned, matmul_naive(&a, &b));
    }

    #[test]
    fn host_threads_change_nothing_observable() {
        // 300 rows: enough for a real multi-band split (threads are
        // clamped so every band has at least the kernel's minimum rows).
        let a = iota(300, 4);
        let b = iota(4, 4);
        let mut serial = TcuMachine::model(16, 3);
        serial.enable_trace();
        let cs = serial.tensor_mul(&a, &b);

        let mut parallel = TcuMachine::model(16, 3);
        parallel.set_host_threads(4);
        assert_eq!(parallel.host_threads(), 4);
        parallel.enable_trace();
        let cp = parallel.tensor_mul(&a, &b);

        assert_eq!(cs, cp);
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.take_trace(), parallel.take_trace());
    }

    #[test]
    fn square_call_costs_m_plus_latency() {
        let mut mach = TcuMachine::model(16, 7);
        let a = iota(4, 4);
        let b = Matrix::<i64>::identity(4);
        let c = mach.tensor_mul(&a, &b);
        assert_eq!(c, a);
        assert_eq!(mach.time(), 16 + 7);
        assert_eq!(mach.stats().tensor_calls, 1);
        assert_eq!(mach.stats().tensor_rows, 4);
    }

    #[test]
    fn tall_call_streams_rows() {
        let mut mach = TcuMachine::model(16, 100);
        let a = iota(32, 4);
        let b = iota(4, 4);
        let c = mach.tensor_mul(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        // one invocation: 32·4 + 100
        assert_eq!(mach.time(), 32 * 4 + 100);
        assert_eq!(mach.stats().tensor_calls, 1);
        assert_eq!(mach.stats().tensor_latency_time, 100);
    }

    #[test]
    fn weak_machine_splits_tall_calls() {
        let mut weak = TcuMachine::weak(16, 100);
        let a = iota(32, 4);
        let b = iota(4, 4);
        let c = weak.tensor_mul(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        // 32/4 = 8 square invocations, each 16 + 100
        assert_eq!(weak.stats().tensor_calls, 8);
        assert_eq!(weak.time(), 8 * (16 + 100));
    }

    #[test]
    fn weak_machine_rounds_up_ragged_tiles() {
        let mut weak = TcuMachine::weak(16, 0);
        let a = iota(10, 4); // 10 rows -> 3 tiles of 4
        let b = iota(4, 4);
        let c = weak.tensor_mul(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        assert_eq!(weak.stats().tensor_calls, 3);
        assert_eq!(weak.time(), 3 * 16);
    }

    #[test]
    fn padded_call_charges_full_footprint() {
        let mut mach = TcuMachine::model(16, 9);
        let a = iota(2, 3); // 2×3, under-sized in both dimensions
        let b = iota(3, 2);
        let c = mach.tensor_mul_padded(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        assert_eq!((c.rows(), c.cols()), (2, 2));
        // charged as a full √m-row call: 4·4 + 9
        assert_eq!(mach.time(), 16 + 9);
    }

    #[test]
    #[should_panic(expected = "n ≥ √m")]
    fn short_operand_rejected_without_padding() {
        let mut mach = TcuMachine::model(16, 0);
        let a = iota(2, 4);
        let b = iota(4, 4);
        let _ = mach.tensor_mul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "√m = 4 columns")]
    fn wrong_width_rejected() {
        let mut mach = TcuMachine::model(16, 0);
        let a = iota(4, 5);
        let b = iota(5, 5);
        let _ = mach.tensor_mul(&a, &b);
    }

    #[test]
    fn charge_and_reset() {
        let mut mach = TcuMachine::model(4, 0);
        mach.charge(123);
        assert_eq!(mach.time(), 123);
        mach.reset();
        assert_eq!(mach.time(), 0);
        assert_eq!(mach.stats(), &Stats::default());
    }

    #[test]
    fn trace_records_call_sequence() {
        let mut mach = TcuMachine::model(16, 5);
        mach.enable_trace();
        mach.charge(10);
        let a = iota(8, 4);
        let b = iota(4, 4);
        let _ = mach.tensor_mul(&a, &b);
        mach.charge(3);
        mach.charge(4);
        let trace = mach.take_trace();
        assert_eq!(
            trace.events(),
            &[
                TraceEvent::Scalar { ops: 10 },
                TraceEvent::Tensor { n_rows: 8 },
                TraceEvent::Scalar { ops: 7 },
            ]
        );
        // taking the trace stops recording
        mach.charge(1);
        assert!(mach.take_trace().is_empty());
    }

    #[test]
    fn mixed_element_types_on_one_machine() {
        let mut mach = TcuMachine::model(4, 0);
        let af = Matrix::<f64>::identity(2);
        let _ = mach.tensor_mul(&af, &af);
        let ai = Matrix::<i64>::identity(2);
        let _ = mach.tensor_mul(&ai, &ai);
        assert_eq!(mach.stats().tensor_calls, 2);
    }
}
