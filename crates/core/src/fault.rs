//! Deterministic fault injection and the recovery accounting surface.
//!
//! Hardware accelerators fail: a unit drops an invocation (a transient
//! ECC hiccup, a preempted stream) or dies for the rest of the job (a
//! wedged engine). The scheduled runtime recovers from both — transient
//! faults are retried in place, permanently failing units are
//! quarantined and their work re-partitioned onto survivors — and this
//! module provides the machinery to *test* that story the way the rest
//! of the workspace tests everything: deterministically.
//!
//! [`FaultyExecutor`] wraps any [`Executor`] and injects faults from a
//! [`FaultPlan`] — an explicit map of "the k-th execution on unit u
//! fails, transiently or permanently". Plans can be built by hand for
//! targeted tests or generated from a seed (via the workspace's
//! hermetic `rand` shim) for chaos suites; either way the same plan
//! always produces the same fault sequence, so a chaos run that found a
//! bug is replayable by seed.
//!
//! Injected faults manifest as panics carrying an [`InjectedFault`]
//! payload, raised *before* the wrapped executor touches the output —
//! so a retried op sees its scratch destination exactly as seeded, and
//! the wave driver (`tcu-sched`) contains the unwind per op with
//! `catch_unwind`. Non-injected panics (a real executor bug) are
//! treated as permanent unit faults and recovered the same way, except
//! the op's scratch is conservatively re-seeded before re-execution.

use crate::exec::{Executor, OperandId, PackCacheStats};
use crate::op::TensorOp;
use crate::parallel::ParallelTcuMachine;
use crate::tensor_unit::TensorUnit;
use std::collections::BTreeMap;
use std::sync::Arc;
use tcu_linalg::{MatrixView, MatrixViewMut, Scalar};

/// How long an injected fault lasts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// One execution fails; the next attempt may succeed. Models a
    /// dropped invocation — the recovery policy retries in place with
    /// simulated backoff.
    Transient,
    /// The unit fails this execution and every one after it. Models a
    /// dead engine — the recovery policy quarantines the unit.
    Permanent,
}

/// The panic payload of an injected fault. The wave driver downcasts
/// caught unwinds to this type to tell injected faults (scratch left
/// untouched, retry is safe) from real executor bugs (scratch state
/// unknown, re-seed before re-execution).
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// Unit the fault fired on.
    pub unit: usize,
    /// Execution index (per unit) the fault fired at.
    pub k: u64,
    /// Transient or permanent.
    pub kind: FaultKind,
}

/// A deterministic map of injected faults: `(unit, k) → kind`, where
/// `k` counts the executions the unit's executor has performed
/// (retries count — a transiently-failed op's second attempt is the
/// unit's next execution).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<(usize, u64), FaultKind>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire. A [`FaultyExecutor`] with
    /// this plan is a pure (counted) pass-through — the configuration
    /// the fault-free-overhead benchmark measures.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: fail the `k`-th execution on `unit` with `kind`.
    #[must_use]
    pub fn fail(mut self, unit: usize, k: u64, kind: FaultKind) -> Self {
        self.faults.insert((unit, k), kind);
        self
    }

    /// A seeded random plan over `units` units and execution indices
    /// `0..horizon`, guaranteed *recoverable* under the default policy:
    ///
    /// * transient faults fire with probability
    ///   `transient_per_mille / 1000` per execution index, but never at
    ///   two consecutive indices of one unit — so a retried op always
    ///   succeeds by its second attempt (within any `max_attempts ≥ 2`);
    /// * at most `permanent_units` units (capped at `units − 1`, so at
    ///   least one unit always survives) additionally receive one
    ///   permanent fault at a random index.
    ///
    /// Same seed, same arguments → byte-identical plan (the generator is
    /// the hermetic SplitMix64 shim), which is what makes chaos-test
    /// failures replayable.
    #[must_use]
    pub fn seeded(
        seed: u64,
        units: usize,
        horizon: u64,
        transient_per_mille: u32,
        permanent_units: usize,
    ) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut plan = Self::none();
        for u in 0..units {
            let mut prev_faulted = false;
            for k in 0..horizon {
                let fire = !prev_faulted
                    && u64::from(transient_per_mille) > 0
                    && rng.gen_range(0..1000u32) < transient_per_mille;
                if fire {
                    plan.faults.insert((u, k), FaultKind::Transient);
                }
                prev_faulted = fire;
            }
        }
        let perm = permanent_units.min(units.saturating_sub(1));
        if perm > 0 {
            // Choose `perm` distinct victims deterministically.
            let mut victims: Vec<usize> = (0..units).collect();
            for i in 0..perm {
                let j = i + rng.gen_range(0..(units - i));
                victims.swap(i, j);
            }
            for &u in victims.iter().take(perm) {
                let k = rng.gen_range(0..horizon.max(1));
                plan.faults.insert((u, k), FaultKind::Permanent);
            }
        }
        plan
    }

    /// The fault planned for execution `k` on `unit`, if any.
    #[must_use]
    pub fn fault_at(&self, unit: usize, k: u64) -> Option<FaultKind> {
        self.faults.get(&(unit, k)).copied()
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` iff no faults are planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// An [`Executor`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Each instance counts its own executions and checks the plan under
/// its configured unit id before delegating; a planned fault panics
/// with an [`InjectedFault`] payload *without* touching the output.
/// Once a permanent fault fires, every later execution on the instance
/// fails too (the unit is dead until quarantined).
///
/// [`ParallelTcuMachine::with_executor`] clones one template executor
/// per unit, which would give every unit the same id — call
/// [`assign_unit_ids`] (or [`FaultyExecutor::set_unit`] per unit) after
/// construction so each clone injects its own unit's faults.
#[derive(Clone, Debug)]
pub struct FaultyExecutor<E> {
    inner: E,
    plan: Arc<FaultPlan>,
    unit: usize,
    executed: u64,
    dead: bool,
}

impl<E> FaultyExecutor<E> {
    /// Wrap `inner`, injecting from `plan` (as unit 0 until
    /// [`Self::set_unit`]).
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan: Arc::new(plan),
            unit: 0,
            executed: 0,
            dead: false,
        }
    }

    /// Set which unit's planned faults this instance injects.
    pub fn set_unit(&mut self, unit: usize) {
        self.unit = unit;
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Mutable access to the wrapped executor (e.g. to enable the host
    /// pack cache through the wrapper).
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    /// Executions attempted so far (including ones that faulted).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Check the plan for this execution index; panic with an
    /// [`InjectedFault`] payload if a fault is due. Fires *before* any
    /// numeric work, so the output is untouched on a fault.
    fn trip(&mut self) {
        let k = self.executed;
        self.executed += 1;
        if self.dead {
            std::panic::panic_any(InjectedFault {
                unit: self.unit,
                k,
                kind: FaultKind::Permanent,
            });
        }
        match self.plan.fault_at(self.unit, k) {
            Some(FaultKind::Permanent) => {
                self.dead = true;
                std::panic::panic_any(InjectedFault {
                    unit: self.unit,
                    k,
                    kind: FaultKind::Permanent,
                });
            }
            Some(FaultKind::Transient) => std::panic::panic_any(InjectedFault {
                unit: self.unit,
                k,
                kind: FaultKind::Transient,
            }),
            None => {}
        }
    }
}

impl<E: Executor> Executor for FaultyExecutor<E> {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn execute<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        self.trip();
        self.inner.execute(op, a, b, out)
    }

    fn execute_tagged<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        a_id: Option<OperandId>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        self.trip();
        self.inner.execute_tagged(op, a, a_id, b, out)
    }

    fn cache_stats(&self) -> Option<PackCacheStats> {
        self.inner.cache_stats()
    }

    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn tcu_obs::Recorder>, unit: u32) {
        // Injection wraps, never replaces, the backend: telemetry flows
        // to the real executor so cache events keep their unit lane.
        self.inner.attach_recorder(recorder, unit);
    }
}

/// Give every unit's cloned [`FaultyExecutor`] its own unit id, so each
/// injects the faults its unit's plan entries name.
pub fn assign_unit_ids<U: TensorUnit, E: Executor>(
    mach: &mut ParallelTcuMachine<U, FaultyExecutor<E>>,
) {
    for u in 0..mach.units() {
        mach.unit_executor_mut(u).set_unit(u);
    }
}

/// Bounds on the wave driver's recovery behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total attempts per op on one unit (the first try plus retries).
    /// An op still faulting transiently after this many attempts fails
    /// the run with [`crate::TcuError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Quarantine permanently failing units and re-partition their
    /// remaining work onto survivors. When `false`, a permanent fault
    /// fails the run with [`crate::TcuError::UnitFault`].
    pub quarantine: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            quarantine: true,
        }
    }
}

/// Recovery counters of one [`ParallelTcuMachine`]: everything the
/// fault-tolerant wave driver did that a fault-free run would not.
/// Deliberately *not* part of [`crate::Stats`] — the recovery contract
/// is that a recoverable faulty run's `Stats` are byte-identical to the
/// fault-free run's, so recovery accounting lives on its own surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient faults contained.
    pub transient_faults: u64,
    /// Permanent faults contained (including real worker panics).
    pub permanent_faults: u64,
    /// Retry attempts issued after transient faults.
    pub retries: u64,
    /// Simulated time charged for retry backoff (in the unit's cost
    /// model: the op's invocation cost again, doubling per attempt).
    pub backoff_time: u64,
    /// Units quarantined.
    pub quarantined_units: u64,
    /// Ops re-partitioned onto surviving units.
    pub requeued_ops: u64,
    /// Extra simulated makespan of re-partitioned work (the LPT
    /// makespan of each requeued batch over the survivors).
    pub recovery_makespan: u64,
}

impl FaultStats {
    /// Whether any recovery happened (all counters zero otherwise).
    #[must_use]
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

impl std::fmt::Display for FaultStats {
    /// One diagnostic line mirroring [`crate::StatsSummary`]'s shape,
    /// so `--stats` output prints recovery uniformly for every case.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "faults {} transient, {} permanent; retries {} (backoff {}); \
             quarantined {} units, requeued {} ops (recovery makespan {})",
            self.transient_faults,
            self.permanent_faults,
            self.retries,
            self.backoff_time,
            self.quarantined_units,
            self.requeued_ops,
            self.recovery_makespan,
        )
    }
}

/// Suppress the default panic-hook output for [`InjectedFault`] panics
/// (they are expected and caught by the wave driver; letting each one
/// print a backtrace banner buries real output). Any other panic still
/// reaches the previously-installed hook. Installs once per process;
/// chaos tests, the chaos example, and the fault benchmarks call this
/// first thing.
pub fn silence_injected_fault_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::HostExecutor;
    use tcu_linalg::Matrix;

    fn run_once(exec: &mut FaultyExecutor<HostExecutor>) -> Result<Matrix<i64>, InjectedFault> {
        let op = TensorOp::mul(4, 4);
        let a = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as i64);
        let b = Matrix::from_fn(4, 4, |i, j| (2 * i + j) as i64);
        let mut out = Matrix::<i64>::zeros(4, 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.execute(&op, a.view(), b.view(), &mut out.view_mut())
        }));
        match r {
            Ok(_) => Ok(out),
            Err(payload) => match payload.downcast::<InjectedFault>() {
                Ok(f) => Err(*f),
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }

    #[test]
    fn transient_fault_fires_once_then_clears() {
        silence_injected_fault_panics();
        let plan = FaultPlan::none().fail(0, 1, FaultKind::Transient);
        let mut exec = FaultyExecutor::new(HostExecutor::new(), plan);
        let ok = run_once(&mut exec).unwrap();
        let fault = run_once(&mut exec).unwrap_err();
        assert_eq!((fault.unit, fault.k), (0, 1));
        assert_eq!(fault.kind, FaultKind::Transient);
        // The retry (execution 2) succeeds and computes the same bytes.
        assert_eq!(run_once(&mut exec).unwrap(), ok);
        assert_eq!(exec.executed(), 3);
    }

    #[test]
    fn permanent_fault_latches() {
        silence_injected_fault_panics();
        let plan = FaultPlan::none().fail(0, 1, FaultKind::Permanent);
        let mut exec = FaultyExecutor::new(HostExecutor::new(), plan);
        assert!(run_once(&mut exec).is_ok());
        for _ in 0..3 {
            let fault = run_once(&mut exec).unwrap_err();
            assert_eq!(fault.kind, FaultKind::Permanent);
        }
    }

    #[test]
    fn faults_key_on_the_unit_id() {
        silence_injected_fault_panics();
        let plan = FaultPlan::none().fail(1, 0, FaultKind::Transient);
        let mut unit0 = FaultyExecutor::new(HostExecutor::new(), plan.clone());
        assert!(run_once(&mut unit0).is_ok(), "unit 0 has no faults");
        let mut unit1 = FaultyExecutor::new(HostExecutor::new(), plan);
        unit1.set_unit(1);
        assert!(run_once(&mut unit1).is_err(), "unit 1 faults at k = 0");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_spaced() {
        let a = FaultPlan::seeded(42, 4, 64, 120, 2);
        let b = FaultPlan::seeded(42, 4, 64, 120, 2);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_ne!(
            a,
            FaultPlan::seeded(43, 4, 64, 120, 2),
            "different seeds must (here) differ"
        );
        assert!(!a.is_empty());
        // No two consecutive transient faults on one unit, and at least
        // one unit entirely free of permanent faults.
        let mut perm_units = std::collections::BTreeSet::new();
        for u in 0..4usize {
            for k in 1..64u64 {
                if matches!(a.fault_at(u, k), Some(FaultKind::Transient)) {
                    assert_ne!(
                        a.fault_at(u, k - 1),
                        Some(FaultKind::Transient),
                        "consecutive transients at unit {u}, k {k}"
                    );
                }
            }
            if (0..64).any(|k| a.fault_at(u, k) == Some(FaultKind::Permanent)) {
                perm_units.insert(u);
            }
        }
        assert!(perm_units.len() <= 2, "at most permanent_units victims");
        assert!(perm_units.len() < 4, "at least one unit must survive");
    }

    #[test]
    fn empty_plan_is_a_counted_passthrough() {
        let mut exec = FaultyExecutor::new(HostExecutor::new(), FaultPlan::none());
        let out = run_once(&mut exec).unwrap();
        let mut plain = HostExecutor::new();
        let op = TensorOp::mul(4, 4);
        let a = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as i64);
        let b = Matrix::from_fn(4, 4, |i, j| (2 * i + j) as i64);
        let mut want = Matrix::<i64>::zeros(4, 4);
        let _ = plain.execute(&op, a.view(), b.view(), &mut want.view_mut());
        assert_eq!(out, want);
        assert_eq!(exec.executed(), 1);
    }
}
