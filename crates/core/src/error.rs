//! The typed error surface of the execution stack.
//!
//! Until this module existed, every failure in the scheduled runtime —
//! a mis-shaped binding, an unbound buffer, a schedule replayed on the
//! wrong machine, a worker thread dying mid-wave — was a `panic!`. That
//! is fine for a simulator driven by tests, and useless for anything
//! long-running: a service front end needs to reject one bad request,
//! not abort the process. [`TcuError`] names every failure the runtime
//! can now *return* instead of raising, and the legacy panicking entry
//! points (`bind_*`, `run`, `run_parallel`) are thin wrappers that
//! unwrap their `try_*` counterparts — so their panic messages (and the
//! `#[should_panic]` pins on them) are exactly these errors' `Display`
//! strings.

use std::fmt;

/// Which side of an [`crate::exec::Executor`] data binding failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindRole {
    /// A read-only input binding.
    Input,
    /// A mutable output binding.
    Output,
}

/// Everything the execution stack can fail with, typed.
///
/// `Display` strings are load-bearing: the panicking wrapper APIs
/// format these errors verbatim, and the workspace's `#[should_panic]`
/// expectations match substrings of them — change a message and a pin
/// tells you.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcuError {
    /// A binding's view does not have the buffer's registered shape.
    BindShape {
        /// Buffer the binding targeted.
        buffer: usize,
        /// Input or output binding.
        role: BindRole,
        /// The buffer's registered shape.
        expected: (usize, usize),
        /// The view's shape.
        got: (usize, usize),
    },
    /// A buffer the graph writes was bound read-only.
    BindWrittenAsInput {
        /// The offending buffer.
        buffer: usize,
    },
    /// A buffer the schedule references has no binding.
    Unbound {
        /// The unbound buffer.
        buffer: usize,
        /// `true` if the schedule *writes* the buffer (it needed an
        /// output binding), `false` if it only reads it.
        written: bool,
    },
    /// Schedule, machine, and environment disagree (wrong `√m`, unit
    /// count, buffer shapes, or tall-split convention). The payload is
    /// the full human-readable diagnosis.
    PlanMismatch {
        /// What disagreed.
        what: &'static str,
    },
    /// A [`crate::TensorOp`] violates the model's shape contract.
    OpInvalid {
        /// The contract violation, in the model's own words.
        reason: String,
    },
    /// A tensor unit failed permanently and the recovery policy forbids
    /// quarantining it.
    UnitFault {
        /// The failed unit.
        unit: usize,
        /// Wave index (within the running schedule) of the failure.
        wave: usize,
    },
    /// One op kept faulting transiently until the bounded retry budget
    /// ran out.
    RetriesExhausted {
        /// Unit the op was retried on.
        unit: usize,
        /// Wave index of the failure.
        wave: usize,
        /// Attempts made (the policy's `max_attempts`).
        attempts: u32,
    },
    /// Every unit has been quarantined with work still pending —
    /// nothing is left to run on.
    AllUnitsQuarantined {
        /// Wave index at which the last unit died.
        wave: usize,
        /// Ops still unexecuted when recovery became impossible.
        pending: usize,
    },
}

impl fmt::Display for TcuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BindShape {
                buffer,
                role,
                expected,
                got,
            } => {
                let side = match role {
                    BindRole::Input => "input",
                    BindRole::Output => "output",
                };
                write!(
                    f,
                    "{side} binding shape mismatch (buffer {buffer}: registered \
                     {}×{}, bound {}×{})",
                    expected.0, expected.1, got.0, got.1
                )
            }
            Self::BindWrittenAsInput { buffer } => write!(
                f,
                "buffer {buffer} is written by the graph; bind it mutably with bind_output"
            ),
            Self::Unbound { buffer, written } => {
                if *written {
                    write!(f, "buffer {buffer} written but not bound as output")
                } else {
                    write!(f, "buffer {buffer} read but not bound as input or output")
                }
            }
            Self::PlanMismatch { what } => f.write_str(what),
            Self::OpInvalid { reason } => f.write_str(reason),
            Self::UnitFault { unit, wave } => write!(
                f,
                "tensor unit {unit} failed permanently in wave {wave} and the \
                 recovery policy does not quarantine"
            ),
            Self::RetriesExhausted {
                unit,
                wave,
                attempts,
            } => write!(
                f,
                "op on unit {unit} in wave {wave} still faulting after {attempts} attempts; \
                 retries exhausted"
            ),
            Self::AllUnitsQuarantined { wave, pending } => write!(
                f,
                "all units quarantined in wave {wave} with {pending} ops still pending"
            ),
        }
    }
}

impl std::error::Error for TcuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_legacy_panic_substrings() {
        // The wrapper APIs panic with these Display strings, and the
        // workspace's #[should_panic] pins match substrings of the old
        // assert messages — each must survive in the new wording.
        let cases: Vec<(TcuError, &str)> = vec![
            (
                TcuError::BindWrittenAsInput { buffer: 2 },
                "bind it mutably",
            ),
            (
                TcuError::BindShape {
                    buffer: 0,
                    role: BindRole::Input,
                    expected: (4, 4),
                    got: (4, 5),
                },
                "input binding shape mismatch",
            ),
            (
                TcuError::Unbound {
                    buffer: 3,
                    written: true,
                },
                "buffer 3 written but not bound as output",
            ),
            (
                TcuError::Unbound {
                    buffer: 1,
                    written: false,
                },
                "buffer 1 read but not bound as input or output",
            ),
            (
                TcuError::PlanMismatch {
                    what: "schedule was planned for a different unit count",
                },
                "different unit count",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} must contain {needle:?}"
            );
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&TcuError::AllUnitsQuarantined {
            wave: 0,
            pending: 4,
        });
    }
}
