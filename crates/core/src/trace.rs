//! Execution traces: the recorded instruction stream of a TCU algorithm.
//!
//! A trace is a *replayable program*: every tensor event carries the
//! full [`TensorOp`] descriptor of the invocation plus the simulated
//! cost it was charged, and scalar segments carry their op counts. Two
//! consumers exist today: `tcu-extmem::simulate` replays traces in the
//! external-memory model (Theorem 12 turns each tensor call into `Θ(m)`
//! I/Os), and [`crate::exec::ReplayExecutor`] re-runs a trace through a
//! costing policy to re-derive [`crate::Stats`] without touching
//! numerics — the property `replay(record(P)) == record(P)` is pinned
//! by the workspace's replay tests.
//!
//! Tensor events are recorded per *hardware invocation*: a tall call on
//! a unit without native tall support appears as its `⌈n/√m⌉` square
//! tiles, exactly as charged.

use crate::op::TensorOp;

/// One step of a TCU execution, at the granularity Theorem 12 needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One hardware tensor invocation: the full op descriptor (with
    /// `op.rows` the rows actually charged for this invocation) and the
    /// simulated cost the costing policy charged it.
    Tensor {
        /// Descriptor of the invocation.
        op: TensorOp,
        /// Simulated time charged (`n·√m + ℓ` under the model policy).
        cost: u64,
    },
    /// A run of `ops` consecutive scalar CPU operations (coalesced).
    Scalar {
        /// Number of unit-cost CPU operations in the run.
        ops: u64,
    },
    /// A tensor unit faulted during a parallel wave and the fault was
    /// contained. Recovery events are *annotations*, not work: they are
    /// excluded from the digest and from every work summary, so a
    /// recovered run's trace digests identically to the fault-free run.
    Fault {
        /// The faulting unit.
        unit: usize,
        /// `true` for a transient fault (retried), `false` for a
        /// permanent one (unit quarantined or run failed).
        transient: bool,
    },
    /// A faulted op was retried on its unit after simulated backoff.
    Retry {
        /// The retrying unit.
        unit: usize,
        /// Attempt number issued (2 = first retry).
        attempt: u32,
        /// Simulated backoff time charged into the run's makespan.
        backoff: u64,
    },
    /// A permanently failed unit was quarantined and its remaining wave
    /// assignments re-partitioned onto the surviving units.
    Quarantine {
        /// The quarantined unit.
        unit: usize,
        /// Ops moved onto survivors.
        requeued: usize,
    },
}

impl TraceEvent {
    /// `true` for the recovery annotations ([`TraceEvent::Fault`],
    /// [`TraceEvent::Retry`], [`TraceEvent::Quarantine`]) that describe
    /// *how* a run executed rather than *what* it computed.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            Self::Fault { .. } | Self::Retry { .. } | Self::Quarantine { .. }
        )
    }
}

impl std::fmt::Display for TraceEvent {
    /// One human-readable line per event, shared by
    /// [`TraceLog::summary`] and the experiments' `--stats` output so
    /// fault annotations print identically everywhere.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Tensor { op, cost } => write!(
                f,
                "tensor {}x{}·{}x{}{}{} (cost {cost})",
                op.rows,
                op.inner,
                op.inner,
                op.width,
                if op.accumulate { " +acc" } else { "" },
                if matches!(op.pad, crate::op::PadPolicy::ZeroPad) {
                    " padded"
                } else {
                    ""
                },
            ),
            Self::Scalar { ops } => write!(f, "scalar x{ops}"),
            Self::Fault { unit, transient } => write!(
                f,
                "fault on unit {unit} ({})",
                if transient { "transient" } else { "permanent" }
            ),
            Self::Retry {
                unit,
                attempt,
                backoff,
            } => write!(
                f,
                "retry on unit {unit}, attempt {attempt} (backoff {backoff})"
            ),
            Self::Quarantine { unit, requeued } => {
                write!(f, "quarantine unit {unit}, requeued {requeued} ops")
            }
        }
    }
}

/// An append-only log of [`TraceEvent`]s with consecutive scalar segments
/// coalesced, so trace size is proportional to the number of tensor calls
/// rather than to simulated time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tensor invocation with its charged cost.
    pub fn push_tensor(&mut self, op: TensorOp, cost: u64) {
        self.events.push(TraceEvent::Tensor { op, cost });
    }

    /// Append scalar work, merging with a trailing scalar segment.
    pub fn push_scalar(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        if let Some(TraceEvent::Scalar { ops: last }) = self.events.last_mut() {
            *last += ops;
        } else {
            self.events.push(TraceEvent::Scalar { ops });
        }
    }

    /// Record a contained unit fault. Recovery events never coalesce
    /// with scalar segments — the wave driver charges no scalar work
    /// while recovering, so a fault annotation can never split a run
    /// that a fault-free execution would have merged.
    pub fn push_fault(&mut self, unit: usize, transient: bool) {
        self.events.push(TraceEvent::Fault { unit, transient });
    }

    /// Record a retry attempt and its charged backoff.
    pub fn push_retry(&mut self, unit: usize, attempt: u32, backoff: u64) {
        self.events.push(TraceEvent::Retry {
            unit,
            attempt,
            backoff,
        });
    }

    /// Record a unit quarantine and the number of requeued ops.
    pub fn push_quarantine(&mut self, unit: usize, requeued: usize) {
        self.events.push(TraceEvent::Quarantine { unit, requeued });
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of tensor invocations recorded.
    #[must_use]
    pub fn tensor_calls(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Tensor { .. }))
            .count() as u64
    }

    /// Total scalar operations recorded.
    #[must_use]
    pub fn scalar_ops(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scalar { ops } => *ops,
                _ => 0,
            })
            .sum()
    }

    /// Total rows streamed across all tensor invocations.
    #[must_use]
    pub fn tensor_rows(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Tensor { op, .. } => op.rows as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total simulated cost recorded across tensor invocations (the
    /// `Stats::tensor_time` of the recording run).
    #[must_use]
    pub fn tensor_cost(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Tensor { cost, .. } => *cost,
                _ => 0,
            })
            .sum()
    }

    /// The log with recovery annotations dropped: exactly the event
    /// stream a fault-free execution of the same schedule records. The
    /// chaos suite compares `faulted.without_faults().events()` against
    /// the fault-free run's `events()` — the strongest form of the
    /// recovery-is-unobservable contract.
    #[must_use]
    pub fn without_faults(&self) -> TraceLog {
        TraceLog {
            events: self
                .events
                .iter()
                .filter(|e| !e.is_fault())
                .copied()
                .collect(),
        }
    }

    /// The recorded recovery annotations, in execution order.
    #[must_use]
    pub fn fault_events(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.is_fault())
            .copied()
            .collect()
    }

    /// `true` iff nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Multi-line pretty-print of the log: one aggregate work line
    /// (invocations, rows, cost, scalar ops), then — when recovery
    /// happened — each fault annotation on its own indented line via
    /// [`TraceEvent`]'s `Display`. The uniform shape every `--stats`
    /// printout routes through.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "trace: {} invocations, {} rows, tensor cost {}, scalar ops {}",
            self.tensor_calls(),
            self.tensor_rows(),
            self.tensor_cost(),
            self.scalar_ops(),
        );
        let faults = self.fault_events();
        if !faults.is_empty() {
            out.push_str(&format!("; {} recovery events:", faults.len()));
            for ev in faults {
                out.push_str(&format!("\n  {ev}"));
            }
        }
        out
    }

    /// FNV-1a digest of the event stream: event kind tag plus its
    /// primary payload (tensor rows / scalar ops), little-endian. The
    /// hashed bytes are the trace schema of the seed simulator, so
    /// digests are stable across the `TensorOp` upgrade — the pinned
    /// values in `tests/cost_invariance.rs` predate it. The digest
    /// covers *only* that seed schema: descriptor extras
    /// (inner/width/accumulate/pad) and costs are deliberately not
    /// hashed, so two traces can digest equal while differing in them —
    /// anything needing full trace identity must compare
    /// [`Self::events`] directly (the strictly stronger check the
    /// replay tests use).
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        for ev in &self.events {
            // Recovery annotations are not part of the trace schema:
            // skipping them here is what makes a recovered run's digest
            // equal the fault-free digest by construction.
            let (tag, payload) = match ev {
                TraceEvent::Tensor { op, .. } => (b'T', op.rows as u64),
                TraceEvent::Scalar { ops } => (b'S', *ops),
                TraceEvent::Fault { .. }
                | TraceEvent::Retry { .. }
                | TraceEvent::Quarantine { .. } => continue,
            };
            eat(tag);
            for b in payload.to_le_bytes() {
                eat(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(rows: usize) -> TensorOp {
        TensorOp::mul(rows, 4)
    }

    #[test]
    fn scalar_segments_coalesce() {
        let mut log = TraceLog::new();
        log.push_scalar(5);
        log.push_scalar(7);
        log.push_tensor(tensor(16), 16 * 4);
        log.push_scalar(0); // no-op
        log.push_scalar(3);
        assert_eq!(
            log.events(),
            &[
                TraceEvent::Scalar { ops: 12 },
                TraceEvent::Tensor {
                    op: tensor(16),
                    cost: 64
                },
                TraceEvent::Scalar { ops: 3 },
            ]
        );
    }

    #[test]
    fn summaries() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.push_tensor(tensor(8), 32);
        log.push_scalar(10);
        log.push_tensor(tensor(24), 96);
        assert_eq!(log.tensor_calls(), 2);
        assert_eq!(log.tensor_rows(), 32);
        assert_eq!(log.scalar_ops(), 10);
        assert_eq!(log.tensor_cost(), 128);
        assert!(!log.is_empty());
    }

    #[test]
    fn digest_separates_streams_and_ignores_descriptor_extras() {
        let mut a = TraceLog::new();
        a.push_tensor(tensor(8), 32);
        a.push_scalar(10);
        let mut b = TraceLog::new();
        b.push_tensor(tensor(8), 32);
        b.push_scalar(11);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), TraceLog::new().digest());

        // The digest hashes the seed schema (tag + rows), so a cost or
        // descriptor difference alone does not perturb it — events()
        // equality is the stronger check for those.
        let mut c = TraceLog::new();
        c.push_tensor(TensorOp::mul_acc(8, 4), 32);
        c.push_scalar(10);
        assert_eq!(a.digest(), c.digest());
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn fault_events_are_annotations_not_work() {
        let mut clean = TraceLog::new();
        clean.push_tensor(tensor(8), 32);
        clean.push_scalar(10);
        clean.push_tensor(tensor(24), 96);

        let mut faulty = TraceLog::new();
        faulty.push_tensor(tensor(8), 32);
        faulty.push_fault(1, true);
        faulty.push_retry(1, 2, 45);
        faulty.push_scalar(10);
        faulty.push_fault(0, false);
        faulty.push_quarantine(0, 3);
        faulty.push_tensor(tensor(24), 96);

        // Digest and every work summary ignore the annotations...
        assert_eq!(faulty.digest(), clean.digest());
        assert_eq!(faulty.tensor_calls(), clean.tensor_calls());
        assert_eq!(faulty.tensor_rows(), clean.tensor_rows());
        assert_eq!(faulty.tensor_cost(), clean.tensor_cost());
        assert_eq!(faulty.scalar_ops(), clean.scalar_ops());
        // ...without_faults() strips them to the clean stream exactly...
        assert_eq!(faulty.without_faults().events(), clean.events());
        // ...and fault_events() exposes just the recovery story.
        assert_eq!(
            faulty.fault_events(),
            vec![
                TraceEvent::Fault {
                    unit: 1,
                    transient: true
                },
                TraceEvent::Retry {
                    unit: 1,
                    attempt: 2,
                    backoff: 45
                },
                TraceEvent::Fault {
                    unit: 0,
                    transient: false
                },
                TraceEvent::Quarantine {
                    unit: 0,
                    requeued: 3
                },
            ]
        );
        assert!(TraceEvent::Fault {
            unit: 0,
            transient: true
        }
        .is_fault());
        assert!(!TraceEvent::Scalar { ops: 1 }.is_fault());
    }
}
