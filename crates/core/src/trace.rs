//! Execution traces: the recorded instruction stream of a TCU algorithm.
//!
//! A trace is a *replayable program*: every tensor event carries the
//! full [`TensorOp`] descriptor of the invocation plus the simulated
//! cost it was charged, and scalar segments carry their op counts. Two
//! consumers exist today: `tcu-extmem::simulate` replays traces in the
//! external-memory model (Theorem 12 turns each tensor call into `Θ(m)`
//! I/Os), and [`crate::exec::ReplayExecutor`] re-runs a trace through a
//! costing policy to re-derive [`crate::Stats`] without touching
//! numerics — the property `replay(record(P)) == record(P)` is pinned
//! by the workspace's replay tests.
//!
//! Tensor events are recorded per *hardware invocation*: a tall call on
//! a unit without native tall support appears as its `⌈n/√m⌉` square
//! tiles, exactly as charged.

use crate::op::TensorOp;

/// One step of a TCU execution, at the granularity Theorem 12 needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One hardware tensor invocation: the full op descriptor (with
    /// `op.rows` the rows actually charged for this invocation) and the
    /// simulated cost the costing policy charged it.
    Tensor {
        /// Descriptor of the invocation.
        op: TensorOp,
        /// Simulated time charged (`n·√m + ℓ` under the model policy).
        cost: u64,
    },
    /// A run of `ops` consecutive scalar CPU operations (coalesced).
    Scalar {
        /// Number of unit-cost CPU operations in the run.
        ops: u64,
    },
}

/// An append-only log of [`TraceEvent`]s with consecutive scalar segments
/// coalesced, so trace size is proportional to the number of tensor calls
/// rather than to simulated time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tensor invocation with its charged cost.
    pub fn push_tensor(&mut self, op: TensorOp, cost: u64) {
        self.events.push(TraceEvent::Tensor { op, cost });
    }

    /// Append scalar work, merging with a trailing scalar segment.
    pub fn push_scalar(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        if let Some(TraceEvent::Scalar { ops: last }) = self.events.last_mut() {
            *last += ops;
        } else {
            self.events.push(TraceEvent::Scalar { ops });
        }
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of tensor invocations recorded.
    #[must_use]
    pub fn tensor_calls(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Tensor { .. }))
            .count() as u64
    }

    /// Total scalar operations recorded.
    #[must_use]
    pub fn scalar_ops(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scalar { ops } => *ops,
                TraceEvent::Tensor { .. } => 0,
            })
            .sum()
    }

    /// Total rows streamed across all tensor invocations.
    #[must_use]
    pub fn tensor_rows(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Tensor { op, .. } => op.rows as u64,
                TraceEvent::Scalar { .. } => 0,
            })
            .sum()
    }

    /// Total simulated cost recorded across tensor invocations (the
    /// `Stats::tensor_time` of the recording run).
    #[must_use]
    pub fn tensor_cost(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Tensor { cost, .. } => *cost,
                TraceEvent::Scalar { .. } => 0,
            })
            .sum()
    }

    /// `true` iff nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a digest of the event stream: event kind tag plus its
    /// primary payload (tensor rows / scalar ops), little-endian. The
    /// hashed bytes are the trace schema of the seed simulator, so
    /// digests are stable across the `TensorOp` upgrade — the pinned
    /// values in `tests/cost_invariance.rs` predate it. The digest
    /// covers *only* that seed schema: descriptor extras
    /// (inner/width/accumulate/pad) and costs are deliberately not
    /// hashed, so two traces can digest equal while differing in them —
    /// anything needing full trace identity must compare
    /// [`Self::events`] directly (the strictly stronger check the
    /// replay tests use).
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        for ev in &self.events {
            let (tag, payload) = match ev {
                TraceEvent::Tensor { op, .. } => (b'T', op.rows as u64),
                TraceEvent::Scalar { ops } => (b'S', *ops),
            };
            eat(tag);
            for b in payload.to_le_bytes() {
                eat(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(rows: usize) -> TensorOp {
        TensorOp::mul(rows, 4)
    }

    #[test]
    fn scalar_segments_coalesce() {
        let mut log = TraceLog::new();
        log.push_scalar(5);
        log.push_scalar(7);
        log.push_tensor(tensor(16), 16 * 4);
        log.push_scalar(0); // no-op
        log.push_scalar(3);
        assert_eq!(
            log.events(),
            &[
                TraceEvent::Scalar { ops: 12 },
                TraceEvent::Tensor {
                    op: tensor(16),
                    cost: 64
                },
                TraceEvent::Scalar { ops: 3 },
            ]
        );
    }

    #[test]
    fn summaries() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.push_tensor(tensor(8), 32);
        log.push_scalar(10);
        log.push_tensor(tensor(24), 96);
        assert_eq!(log.tensor_calls(), 2);
        assert_eq!(log.tensor_rows(), 32);
        assert_eq!(log.scalar_ops(), 10);
        assert_eq!(log.tensor_cost(), 128);
        assert!(!log.is_empty());
    }

    #[test]
    fn digest_separates_streams_and_ignores_descriptor_extras() {
        let mut a = TraceLog::new();
        a.push_tensor(tensor(8), 32);
        a.push_scalar(10);
        let mut b = TraceLog::new();
        b.push_tensor(tensor(8), 32);
        b.push_scalar(11);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), TraceLog::new().digest());

        // The digest hashes the seed schema (tag + rows), so a cost or
        // descriptor difference alone does not perturb it — events()
        // equality is the stronger check for those.
        let mut c = TraceLog::new();
        c.push_tensor(TensorOp::mul_acc(8, 4), 32);
        c.push_scalar(10);
        assert_eq!(a.digest(), c.digest());
        assert_ne!(a.events(), c.events());
    }
}
