//! Execution traces: the sequence of tensor invocations and scalar-work
//! segments a TCU algorithm performs.
//!
//! Traces exist for the §5 bridge to the external-memory model: Theorem 12
//! simulates a weak-TCU execution in an external memory of size `M = 3m`,
//! turning each tensor call into `Θ(m)` I/Os and each scalar operation
//! into `O(1)` I/Os. `tcu-extmem::simulate` replays these traces to
//! measure that correspondence empirically.

/// One step of a TCU execution, at the granularity Theorem 12 needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A tensor invocation whose left operand had `n_rows` rows (the right
    /// operand is always `√m × √m`).
    Tensor { n_rows: u64 },
    /// A run of `ops` consecutive scalar CPU operations (coalesced).
    Scalar { ops: u64 },
}

/// An append-only log of [`TraceEvent`]s with consecutive scalar segments
/// coalesced, so trace size is proportional to the number of tensor calls
/// rather than to simulated time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tensor invocation.
    pub fn push_tensor(&mut self, n_rows: u64) {
        self.events.push(TraceEvent::Tensor { n_rows });
    }

    /// Append scalar work, merging with a trailing scalar segment.
    pub fn push_scalar(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        if let Some(TraceEvent::Scalar { ops: last }) = self.events.last_mut() {
            *last += ops;
        } else {
            self.events.push(TraceEvent::Scalar { ops });
        }
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of tensor invocations recorded.
    #[must_use]
    pub fn tensor_calls(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Tensor { .. }))
            .count() as u64
    }

    /// Total scalar operations recorded.
    #[must_use]
    pub fn scalar_ops(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scalar { ops } => *ops,
                TraceEvent::Tensor { .. } => 0,
            })
            .sum()
    }

    /// Total rows streamed across all tensor invocations.
    #[must_use]
    pub fn tensor_rows(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Tensor { n_rows } => *n_rows,
                TraceEvent::Scalar { .. } => 0,
            })
            .sum()
    }

    /// `true` iff nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_segments_coalesce() {
        let mut log = TraceLog::new();
        log.push_scalar(5);
        log.push_scalar(7);
        log.push_tensor(16);
        log.push_scalar(0); // no-op
        log.push_scalar(3);
        assert_eq!(
            log.events(),
            &[
                TraceEvent::Scalar { ops: 12 },
                TraceEvent::Tensor { n_rows: 16 },
                TraceEvent::Scalar { ops: 3 },
            ]
        );
    }

    #[test]
    fn summaries() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.push_tensor(8);
        log.push_scalar(10);
        log.push_tensor(24);
        assert_eq!(log.tensor_calls(), 2);
        assert_eq!(log.tensor_rows(), 32);
        assert_eq!(log.scalar_ops(), 10);
        assert!(!log.is_empty());
    }
}
