//! §6 extension: *parallel* tensor units.
//!
//! The paper's conclusion lists "hardware accelerators have parallel
//! tensors … how can we include these features in the TCU model?" as an
//! open question (boards like the Titan RTX carry hundreds of tensor
//! cores, §3.1). This module provides the natural extension: a
//! [`ParallelTcuMachine`] with `p` identical units. A *batch* of
//! independent [`TensorOp`]s is scheduled over a deterministic LPT
//! partition ([`partition_lpt`]) and the batch charges its **makespan**;
//! scalar CPU work remains serial (the CPU is still one processor). With
//! equal-size invocations the makespan is `⌈k/p⌉` times the per-call
//! cost, so a `p`-unit machine accelerates exactly the tensor-bound
//! portion of an algorithm — an Amdahl decomposition the EP1 experiment
//! measures.
//!
//! Scheduling operates purely on op descriptors and unit costs — the
//! numerics of every op flow through the same pluggable [`Executor`]
//! backend as the serial machine, so there is exactly one
//! multiplication code path in the workspace.

use crate::cost::{Stats, StatsSummary};
use crate::exec::{Executor, HostExecutor, OperandId, PackCacheStats};
use crate::fault::FaultStats;
use crate::op::TensorOp;
use crate::tensor_unit::TensorUnit;
use crate::trace::TraceLog;
use std::sync::Arc;
use tcu_linalg::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// A TCU machine with `p` identical tensor units.
///
/// Each unit carries its *own* executor instance (cloned from the
/// constructor's template), so backend-local state — the host
/// executor's pack cache above all — is per unit, exactly like the
/// per-core caches of a real multi-unit part. Numerics remain
/// deterministic regardless: ops execute in batch/schedule order, and
/// every executor is required to be order-insensitive per op.
#[derive(Clone, Debug)]
pub struct ParallelTcuMachine<U: TensorUnit, E: Executor = HostExecutor> {
    unit: U,
    execs: Vec<E>,
    stats: Stats,
    trace: Option<TraceLog>,
    /// Simulated time spent in batch makespans (subset of
    /// `stats.tensor_time`, which keeps the *work* for utilization
    /// accounting).
    makespan_time: u64,
    /// Recovery accounting: what the fault-tolerant wave driver did that
    /// a fault-free run would not. Kept outside `stats` so `Stats` stay
    /// byte-identical between a recovered run and a fault-free one.
    fault_stats: FaultStats,
    /// Execution-telemetry sink (`tcu-obs`), `None` unless opted in via
    /// [`Self::enable_recorder`] or `TCU_TRACE_OUT`. Purely an observer
    /// of wall-clock and already-charged quantities.
    recorder: Option<Arc<dyn tcu_obs::Recorder>>,
}

impl<U: TensorUnit> ParallelTcuMachine<U> {
    /// `p ≥ 1` units sharing one costing policy, over the default
    /// host-kernel backend.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(unit: U, p: usize) -> Self {
        Self::with_executor(unit, p, HostExecutor::new())
    }
}

impl<U: TensorUnit> ParallelTcuMachine<U, HostExecutor> {
    /// Enable a pack cache of `capacity` strips on *every* unit's host
    /// executor (resetting any previous cache state). Per-unit caches
    /// mirror the scheduled runtime's placement: a strip is packed by
    /// the unit that first streams it, and re-used by the invocations
    /// the schedule assigns to that same unit.
    pub fn enable_pack_caches(&mut self, capacity: usize) {
        for e in &mut self.execs {
            e.enable_pack_cache(capacity);
        }
    }
}

impl<U: TensorUnit, E: Executor> ParallelTcuMachine<U, E> {
    /// `p ≥ 1` units sharing one costing policy, each running its own
    /// clone of `exec`.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    #[must_use]
    pub fn with_executor(unit: U, p: usize, exec: E) -> Self
    where
        E: Clone,
    {
        assert!(p >= 1, "need at least one unit");
        let mut mach = Self {
            unit,
            execs: vec![exec; p],
            stats: Stats::default(),
            trace: None,
            makespan_time: 0,
            fault_stats: FaultStats::default(),
            recorder: None,
        };
        // `TCU_TRACE_OUT=<path>` turns tracing on process-wide with no
        // caller changes.
        if let Some(sink) = tcu_obs::env_recorder() {
            mach.enable_recorder(sink);
        }
        mach
    }

    /// Attach an execution-telemetry recorder: every unit's executor is
    /// told its unit id (so pack-cache events land on the right lane),
    /// and the fault-recovery annotations gain scheduler-lane instant
    /// events. Purely observational — simulated time, `Stats`, traces,
    /// and results are unchanged with or without it.
    pub fn enable_recorder(&mut self, recorder: Arc<dyn tcu_obs::Recorder>) {
        for (u, e) in self.execs.iter_mut().enumerate() {
            e.attach_recorder(Arc::clone(&recorder), u as u32);
        }
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any — the wave driver clones this so
    /// its worker threads can stamp per-op execute spans.
    #[must_use]
    pub fn recorder_handle(&self) -> Option<Arc<dyn tcu_obs::Recorder>> {
        self.recorder.clone()
    }

    /// Unit `u`'s numeric backend.
    ///
    /// # Panics
    /// Panics if `u ≥ units()`.
    #[inline]
    #[must_use]
    pub fn unit_executor(&self, u: usize) -> &E {
        &self.execs[u]
    }

    /// Mutable access to unit `u`'s numeric backend.
    ///
    /// # Panics
    /// Panics if `u ≥ units()`.
    #[inline]
    pub fn unit_executor_mut(&mut self, u: usize) -> &mut E {
        &mut self.execs[u]
    }

    /// All units' backends at once — the wave driver borrows the slice
    /// and hands each unit's executor to that unit's worker thread for
    /// the duration of one wave.
    #[inline]
    pub fn unit_executors_mut(&mut self) -> &mut [E] {
        &mut self.execs
    }

    /// Number of tensor units.
    #[inline]
    #[must_use]
    pub fn units(&self) -> usize {
        self.execs.len()
    }

    /// `√m` of the units.
    #[inline]
    #[must_use]
    pub fn sqrt_m(&self) -> usize {
        self.unit.sqrt_m()
    }

    /// The shared costing policy.
    #[inline]
    #[must_use]
    pub fn unit(&self) -> &U {
        &self.unit
    }

    /// Serial CPU work (1 time unit per op).
    pub fn charge(&mut self, ops: u64) {
        self.stats.record_scalar(ops);
        if let Some(t) = &mut self.trace {
            t.push_scalar(ops);
        }
    }

    /// Start recording an execution trace; any previous trace is
    /// discarded. Tensor events are recorded in *charge order* — the
    /// schedule's canonical serial order under the wave driver — so a
    /// parallel run's trace is byte-identical to the serial machine's.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceLog::new());
    }

    /// Stop recording and return the trace collected since
    /// [`Self::enable_trace`].
    pub fn take_trace(&mut self) -> TraceLog {
        self.trace.take().unwrap_or_default()
    }

    /// The trace recorded so far, without stopping or consuming it
    /// (`None` unless [`Self::enable_trace`] was called).
    #[must_use]
    pub fn trace_log(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Simulated wall-clock time: serial CPU work plus the makespan of
    /// every tensor batch.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.stats.scalar_ops + self.makespan_time
    }

    /// Total tensor *work* (sum over units) — `time ×` utilization.
    #[must_use]
    pub fn tensor_work(&self) -> u64 {
        self.stats.tensor_time
    }

    /// Detailed counters (tensor_time holds total work, not makespan).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// One-look digest of the run so far, in the serial machine's
    /// [`StatsSummary`] shape: invocation/row/time counters from
    /// `Stats`, wall-clock from [`Self::time`], and the per-unit pack
    /// caches summed into one line (`None` when no unit keeps a cache).
    /// The parallel issue paths take pre-lowered descriptors, so the
    /// logical-op kind breakdown is not tracked and reads zero.
    #[must_use]
    pub fn stats_summary(&self) -> StatsSummary {
        let mut pack: Option<PackCacheStats> = None;
        for e in &self.execs {
            if let Some(s) = e.cache_stats() {
                let agg = pack.get_or_insert_with(PackCacheStats::default);
                agg.lookups += s.lookups;
                agg.hits += s.hits;
                agg.misses += s.misses;
                agg.packed_bytes += s.packed_bytes;
                agg.evictions += s.evictions;
            }
        }
        StatsSummary {
            invocations: self.stats.tensor_calls,
            rows_charged: self.stats.tensor_rows,
            tensor_time: self.stats.tensor_time,
            scalar_ops: self.stats.scalar_ops,
            time: self.time(),
            pack_cache: pack,
            ..StatsSummary::default()
        }
    }

    /// The hardware invocations one logical op decomposes into: a single
    /// `charge_rows`-row invocation on units with native tall support,
    /// `⌈n/√m⌉` independent square tiles otherwise — the same split the
    /// serial machine's charge path applies, so parallel and serial
    /// accounting agree per op (tiles also schedule independently, which
    /// is exactly what a partitioned tall operand allows).
    fn invocation_rows(&self, op: &TensorOp) -> Vec<usize> {
        let s = self.sqrt_m();
        let n = op.charge_rows(s);
        if self.unit.supports_tall() {
            vec![n]
        } else {
            vec![s; n.div_ceil(s)]
        }
    }

    /// The deterministic schedule this machine would use for a batch of
    /// ops, without executing anything: per-invocation unit assignment
    /// and per-unit loads under the unit's costing policy (an op that
    /// tall-splits contributes one schedulable invocation per tile).
    #[must_use]
    pub fn plan(&self, ops: &[TensorOp]) -> Partition {
        let costs: Vec<u64> = ops
            .iter()
            .flat_map(|op| self.invocation_rows(op))
            .map(|rows| self.unit.invocation_cost(rows))
            .collect();
        partition_lpt(&costs, self.units())
    }

    /// Issue one already-scheduled op on unit `unit_idx`: the
    /// charge-and-execute half of running a `tcu-sched` schedule on this
    /// machine. The op is validated and charged exactly as on the serial
    /// machine (including the tall-split into square invocations on
    /// units without native tall support) — per-op `Stats` are therefore
    /// identical to a serial run of the same stream — and its numerics
    /// run on the *assigned unit's* executor, so executor-local caches
    /// follow the schedule's unit placement. Wall-clock is not advanced
    /// here: the caller completes each wave with [`Self::complete_wave`],
    /// charging the wave's makespan once.
    ///
    /// # Panics
    /// Panics if `unit_idx ≥ units()`, if `op` violates the model's
    /// shape contract, or if the views do not carry `op`'s shapes.
    pub fn issue_into_on_unit<T: Scalar>(
        &mut self,
        unit_idx: usize,
        op: TensorOp,
        a: MatrixView<'_, T>,
        a_id: Option<OperandId>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) {
        assert!(
            unit_idx < self.units(),
            "unit index {unit_idx} out of range for {} units",
            self.units()
        );
        assert!(
            op.matches((a.rows(), a.cols()), (b.rows(), b.cols())),
            "operands do not match the op descriptor"
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (op.rows, op.width),
            "output does not match the op descriptor"
        );
        self.charge_wave_op(&op);
        let _ = self.execs[unit_idx].execute_tagged(&op, a, a_id, b, out);
    }

    /// Meter one scheduled op without executing it: validate against the
    /// model, then record its hardware invocations into `Stats` and the
    /// trace exactly as the serial machine's charge path does (one event
    /// per invocation, `rows` set to what each invocation streams). The
    /// wave driver charges every op of a wave in canonical order on the
    /// main thread *before* the wave's numerics run on worker threads —
    /// accounting is therefore deterministic and byte-identical to a
    /// serial scheduled run regardless of thread interleaving.
    ///
    /// # Panics
    /// Panics if `op` violates the model's shape contract.
    pub fn charge_wave_op(&mut self, op: &TensorOp) {
        self.wave_parts().0.charge_wave_op(op);
    }

    /// Advance simulated wall-clock by a completed wave's makespan (the
    /// max-loaded unit of the wave's partition). Paired with
    /// [`Self::issue_into_on_unit`], which charges per-op work only.
    pub fn complete_wave(&mut self, makespan: u64) {
        self.makespan_time += makespan;
    }

    /// Recovery counters accumulated by the fault-tolerant wave driver
    /// (all zero on a fault-free run).
    #[must_use]
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Record a contained unit fault (transient or permanent) as a
    /// trace annotation plus a [`FaultStats`] counter. Never touches
    /// `Stats` — recovery must be unobservable there.
    pub fn record_fault(&mut self, unit: usize, transient: bool) {
        self.wave_parts().0.record_fault(unit, transient);
    }

    /// Record a retry of a `rows`-row op on `unit` and charge its
    /// simulated backoff into wall-clock: the op's invocation cost
    /// again, doubled per extra attempt (`attempt` counts from 2, the
    /// first retry). The charge lands in `makespan_time` — observable
    /// via [`Self::time`] — never in `Stats`. Returns the backoff
    /// charged.
    pub fn record_retry(&mut self, unit: usize, attempt: u32, rows: usize) -> u64 {
        self.wave_parts().0.record_retry(unit, attempt, rows)
    }

    /// Record the quarantine of `unit` with `requeued` ops moved onto
    /// survivors.
    pub fn record_quarantine(&mut self, unit: usize, requeued: usize) {
        self.wave_parts().0.record_quarantine(unit, requeued);
    }

    /// Charge the extra simulated makespan of a re-partitioned batch of
    /// requeued ops (the LPT makespan of the batch over the surviving
    /// units). Like backoff, this lands in `makespan_time` only.
    pub fn charge_recovery(&mut self, makespan: u64) {
        self.wave_parts().0.charge_recovery(makespan);
    }

    /// Split the machine into its accounting half and its executors —
    /// the borrow seam of persistent-pool wave execution. The returned
    /// [`WaveAccountant`] owns mutable access to `Stats`, the trace,
    /// wall-clock, and [`FaultStats`]; the executor slice is free to be
    /// handed out element-wise to long-lived worker threads. The main
    /// thread can therefore keep charging, annotating, and completing
    /// waves for the whole run while every unit's executor lives on its
    /// own worker.
    pub fn wave_parts(&mut self) -> (WaveAccountant<'_, U>, &mut [E]) {
        (
            WaveAccountant {
                unit: &self.unit,
                stats: &mut self.stats,
                trace: &mut self.trace,
                makespan_time: &mut self.makespan_time,
                fault_stats: &mut self.fault_stats,
                recorder: self.recorder.clone(),
            },
            &mut self.execs,
        )
    }

    /// Issue a batch of *independent* ops (`Cᵢ = Aᵢ·Bᵢ`): each op is
    /// validated and charged exactly as on the serial machine (including
    /// the tall-split into square invocations on units without native
    /// tall support), the resulting invocations are scheduled over
    /// [`partition_lpt`], wall-clock advances by the makespan, and every
    /// op's numerics run through the executor in batch order (scheduling
    /// is pure accounting, so results are independent of the partition).
    ///
    /// # Panics
    /// Panics if an op violates the model's shape contract or its views
    /// (same rules as [`crate::TcuMachine::issue`]), or if an op has
    /// `accumulate` set (batch products are returned, not accumulated).
    #[must_use]
    pub fn issue_batch<T: Scalar>(
        &mut self,
        batch: &[(TensorOp, MatrixView<'_, T>, MatrixView<'_, T>)],
    ) -> Vec<Matrix<T>> {
        let s = self.sqrt_m();
        let mut costs = Vec::with_capacity(batch.len());
        // Each op's first hardware invocation decides which unit runs
        // its numerics (a tall-split op's tiles may be billed across
        // units, but the product is computed once).
        let mut first_inv = Vec::with_capacity(batch.len());
        for (op, a, b) in batch {
            assert!(!op.accumulate, "batch ops return their products");
            assert!(
                op.matches((a.rows(), a.cols()), (b.rows(), b.cols())),
                "operands do not match the op descriptor"
            );
            op.validate(s);
            first_inv.push(costs.len());
            for rows in self.invocation_rows(op) {
                let cost = self.unit.invocation_cost(rows);
                let lat = self.unit.invocation_latency(rows);
                self.stats.record_tensor(rows as u64, cost, lat);
                costs.push(cost);
            }
        }
        let partition = partition_lpt(&costs, self.units());
        self.makespan_time += partition.makespan();
        batch
            .iter()
            .zip(&first_inv)
            .map(|((op, a, b), &inv)| {
                let unit = partition.assignment.get(inv).copied().unwrap_or(0);
                let mut out = Matrix::<T>::zeros(op.rows, op.width);
                let _ = self.execs[unit].execute(op, *a, *b, &mut out.view_mut());
                out
            })
            .collect()
    }

    /// Issue a batch of *independent* tensor invocations
    /// (`Cᵢ = Aᵢ·Bᵢ`, each `Aᵢ : nᵢ × √m`, `Bᵢ : √m × √m`).
    ///
    /// # Panics
    /// Panics if shapes violate the model (same rules as
    /// [`crate::TcuMachine::tensor_mul`]).
    #[must_use]
    pub fn tensor_mul_batch<T: Scalar>(
        &mut self,
        ops: &[(&Matrix<T>, &Matrix<T>)],
    ) -> Vec<Matrix<T>> {
        let views: Vec<(MatrixView<'_, T>, MatrixView<'_, T>)> =
            ops.iter().map(|(a, b)| (a.view(), b.view())).collect();
        self.tensor_mul_batch_views(&views)
    }

    /// [`Self::tensor_mul_batch`] on borrowed operand views — the
    /// zero-copy path used by the §6 parallel algorithms, which carve
    /// every strip and weight block directly out of the input matrices.
    /// Thin wrapper: lowers each pair to a [`TensorOp`] and issues the
    /// batch.
    ///
    /// # Panics
    /// Panics if shapes violate the model.
    #[must_use]
    pub fn tensor_mul_batch_views<T: Scalar>(
        &mut self,
        ops: &[(MatrixView<'_, T>, MatrixView<'_, T>)],
    ) -> Vec<Matrix<T>> {
        let s = self.sqrt_m();
        let batch: Vec<(TensorOp, MatrixView<'_, T>, MatrixView<'_, T>)> = ops
            .iter()
            .map(|&(a, b)| (TensorOp::mul(a.rows(), s), a, b))
            .collect();
        self.issue_batch(&batch)
    }
}

/// The accounting half of a [`ParallelTcuMachine`], borrowed apart from
/// its executors via [`ParallelTcuMachine::wave_parts`].
///
/// Wave execution needs two disjoint capabilities at once: worker
/// threads need exclusive, long-lived access to *their unit's* executor,
/// and the main thread needs to keep metering charges, recovery
/// annotations, and wave makespans in canonical order. This split makes
/// that borrow structure explicit — every method here touches only the
/// shared costing policy and the accounting state, never an executor —
/// and each method is the exact body the machine's same-named method
/// delegates to, so charging through the accountant is byte-identical
/// to charging through the machine.
#[derive(Debug)]
pub struct WaveAccountant<'m, U: TensorUnit> {
    unit: &'m U,
    stats: &'m mut Stats,
    trace: &'m mut Option<TraceLog>,
    makespan_time: &'m mut u64,
    fault_stats: &'m mut FaultStats,
    /// Cloned from the machine: fault/retry/quarantine annotations gain
    /// scheduler-lane instant events when a recorder is attached.
    recorder: Option<Arc<dyn tcu_obs::Recorder>>,
}

impl<U: TensorUnit> WaveAccountant<'_, U> {
    /// `√m` of the units.
    #[inline]
    #[must_use]
    pub fn sqrt_m(&self) -> usize {
        self.unit.sqrt_m()
    }

    /// The shared costing policy.
    #[inline]
    #[must_use]
    pub fn unit(&self) -> &U {
        self.unit
    }

    /// The total simulated cost one scheduled op will be charged (the
    /// sum over its hardware invocations) — what
    /// [`Self::charge_wave_op`] adds to `tensor_time`, computed without
    /// charging. The wave driver stamps it into telemetry so per-op
    /// execute spans carry both wall ns and model cost.
    ///
    /// # Panics
    /// Panics if `op` violates the model's shape contract.
    #[must_use]
    pub fn op_cost(&self, op: &TensorOp) -> u64 {
        let s = self.sqrt_m();
        op.validate(s);
        let n = op.charge_rows(s);
        if self.unit.supports_tall() {
            self.unit.invocation_cost(n)
        } else {
            n.div_ceil(s) as u64 * self.unit.invocation_cost(s)
        }
    }

    /// Emit an instant scheduler-lane telemetry event, when recording.
    fn record_instant(&self, kind: tcu_obs::EventKind) {
        if let Some(rec) = &self.recorder {
            let t = rec.now_ns();
            rec.record(
                tcu_obs::Lane::Scheduler,
                tcu_obs::SpanEvent {
                    kind,
                    t_ns: t,
                    dur_ns: 0,
                },
            );
        }
    }

    /// See [`ParallelTcuMachine::charge_wave_op`].
    ///
    /// # Panics
    /// Panics if `op` violates the model's shape contract.
    pub fn charge_wave_op(&mut self, op: &TensorOp) {
        let s = self.sqrt_m();
        op.validate(s);
        let n = op.charge_rows(s);
        let (count, rows) = if self.unit.supports_tall() {
            (1, n)
        } else {
            (n.div_ceil(s), s)
        };
        for _ in 0..count {
            let cost = self.unit.invocation_cost(rows);
            let lat = self.unit.invocation_latency(rows);
            self.stats.record_tensor(rows as u64, cost, lat);
            if let Some(t) = self.trace.as_mut() {
                t.push_tensor(TensorOp { rows, ..*op }, cost);
            }
        }
    }

    /// See [`ParallelTcuMachine::complete_wave`].
    pub fn complete_wave(&mut self, makespan: u64) {
        *self.makespan_time += makespan;
    }

    /// See [`ParallelTcuMachine::record_fault`].
    pub fn record_fault(&mut self, unit: usize, transient: bool) {
        if transient {
            self.fault_stats.transient_faults += 1;
        } else {
            self.fault_stats.permanent_faults += 1;
        }
        if let Some(t) = self.trace.as_mut() {
            t.push_fault(unit, transient);
        }
        self.record_instant(tcu_obs::EventKind::Fault {
            unit: unit as u32,
            transient,
        });
    }

    /// See [`ParallelTcuMachine::record_retry`].
    pub fn record_retry(&mut self, unit: usize, attempt: u32, rows: usize) -> u64 {
        let backoff = self
            .unit
            .invocation_cost(rows)
            .wrapping_shl(attempt.saturating_sub(2));
        self.fault_stats.retries += 1;
        self.fault_stats.backoff_time += backoff;
        *self.makespan_time += backoff;
        if let Some(t) = self.trace.as_mut() {
            t.push_retry(unit, attempt, backoff);
        }
        self.record_instant(tcu_obs::EventKind::Retry {
            unit: unit as u32,
            attempt,
            backoff,
        });
        backoff
    }

    /// See [`ParallelTcuMachine::record_quarantine`].
    pub fn record_quarantine(&mut self, unit: usize, requeued: usize) {
        self.fault_stats.quarantined_units += 1;
        self.fault_stats.requeued_ops += requeued as u64;
        if let Some(t) = self.trace.as_mut() {
            t.push_quarantine(unit, requeued);
        }
        self.record_instant(tcu_obs::EventKind::Quarantine {
            unit: unit as u32,
            requeued: requeued as u64,
        });
    }

    /// See [`ParallelTcuMachine::charge_recovery`].
    pub fn charge_recovery(&mut self, makespan: u64) {
        self.fault_stats.recovery_makespan += makespan;
        *self.makespan_time += makespan;
    }

    /// Record one ready-deque dispatch of the dataflow driver: `depth`
    /// ops whose dependency frontier cleared were handed to `unit` in a
    /// single batch. Telemetry only — never touches `Stats`, the trace,
    /// or wall-clock — so a recorder-off run skips it entirely.
    pub fn record_ready(&self, unit: usize, depth: usize) {
        self.record_instant(tcu_obs::EventKind::Ready {
            unit: unit as u32,
            depth: depth as u32,
        });
    }

    /// Record one deterministic plan-time steal of the dataflow
    /// placement: the op's wave-LPT home was `from`, but `to` ran it.
    /// Telemetry only, like [`Self::record_ready`].
    pub fn record_steal(&self, from: usize, to: usize) {
        self.record_instant(tcu_obs::EventKind::Steal {
            from: from as u32,
            to: to as u32,
        });
    }
}

/// A deterministic schedule of op costs onto `p` identical units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[i]` is the unit op `i` runs on.
    pub assignment: Vec<usize>,
    /// Total cost assigned to each unit.
    pub loads: Vec<u64>,
}

impl Partition {
    /// The batch's simulated wall-clock: the maximum unit load.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }
}

/// Deterministic LPT (longest-processing-time-first) partition of
/// `costs` onto `p` identical units: ops are placed in decreasing cost
/// order (ties broken by lower index first) onto the currently
/// least-loaded unit (ties broken by lower unit index). Determinism is
/// the point — the same batch always maps to the same partition, so
/// recorded schedules can be re-derived exactly (cf. deterministic
/// work-unit partitioning in Bobpp-style runtimes).
///
/// # Panics
/// Panics if `p == 0`.
#[must_use]
pub fn partition_lpt(costs: &[u64], p: usize) -> Partition {
    assert!(p >= 1, "need at least one unit");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut assignment = vec![0usize; costs.len()];
    let mut loads = vec![0u64; p];
    for i in order {
        // `p >= 1` is asserted above, so the minimum always exists.
        let unit = (0..p).min_by_key(|&u| (loads[u], u)).unwrap_or(0);
        assignment[i] = unit;
        loads[unit] += costs[i];
    }
    Partition { assignment, loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor_unit::ModelTensorUnit;

    fn batch_inputs(k: usize, rows: usize, s: usize) -> Vec<(Matrix<i64>, Matrix<i64>)> {
        (0..k)
            .map(|t| {
                (
                    Matrix::from_fn(rows, s, |i, j| (i + j + t) as i64),
                    Matrix::from_fn(s, s, |i, j| (i * 2 + j + t) as i64),
                )
            })
            .collect()
    }

    fn makespan(costs: &[u64], p: usize) -> u64 {
        partition_lpt(costs, p).makespan()
    }

    #[test]
    fn makespan_basics() {
        assert_eq!(makespan(&[], 4), 0);
        assert_eq!(makespan(&[10], 4), 10);
        assert_eq!(makespan(&[10, 10, 10, 10], 2), 20);
        assert_eq!(makespan(&[10, 10, 10], 2), 20);
        // LPT: 7,5,4,3 on 2 machines -> 7+3=10, 5+4=9 -> 10.
        assert_eq!(makespan(&[7, 5, 4, 3], 2), 10);
    }

    #[test]
    fn partition_is_deterministic_and_consistent() {
        let costs = [7u64, 5, 7, 3, 5];
        let part = partition_lpt(&costs, 2);
        assert_eq!(part, partition_lpt(&costs, 2));
        // Loads must be the per-unit sums of the assignment.
        let mut loads = vec![0u64; 2];
        for (i, &u) in part.assignment.iter().enumerate() {
            loads[u] += costs[i];
        }
        assert_eq!(loads, part.loads);
        // Equal costs tie-break by index: op 0 before op 2.
        assert_eq!(part.assignment[0], 0);
        assert_eq!(part.assignment[2], 1);
    }

    #[test]
    fn plan_matches_charged_makespan() {
        let (m, l, p) = (16usize, 100u64, 4usize);
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(m, l), p);
        let ops: Vec<TensorOp> = (0..8).map(|_| TensorOp::mul(4, 4)).collect();
        let plan = mach.plan(&ops);
        let inputs = batch_inputs(8, 4, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let _ = mach.tensor_mul_batch(&refs);
        assert_eq!(mach.time(), plan.makespan());
    }

    #[test]
    fn equal_calls_split_evenly() {
        let (m, l, p) = (16usize, 100u64, 4usize);
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(m, l), p);
        let inputs = batch_inputs(8, 4, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let out = mach.tensor_mul_batch(&refs);
        assert_eq!(out.len(), 8);
        // 8 calls of cost 16+100 on 4 units: makespan = 2 calls each.
        assert_eq!(mach.time(), 2 * (16 + 100));
        // Work is all 8 calls.
        assert_eq!(mach.tensor_work(), 8 * (16 + 100));
    }

    #[test]
    fn results_match_serial_machine() {
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 5), 3);
        let mut ser = crate::TcuMachine::model(16, 5);
        let inputs = batch_inputs(5, 8, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let out = par.tensor_mul_batch(&refs);
        for (i, (a, b)) in inputs.iter().enumerate() {
            assert_eq!(out[i], ser.tensor_mul(a, b));
        }
        assert!(
            par.time() < ser.time(),
            "3 units must beat 1 on 5 independent calls"
        );
    }

    #[test]
    fn one_unit_equals_serial_time() {
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 7), 1);
        let inputs = batch_inputs(4, 6, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let _ = par.tensor_mul_batch(&refs);
        assert_eq!(par.time(), 4 * (6 * 4 + 7));
    }

    #[test]
    fn speedup_saturates_at_batch_width() {
        // More units than independent calls: no further gain.
        let inputs = batch_inputs(3, 4, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let mut p3 = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 3);
        let _ = p3.tensor_mul_batch(&refs);
        let mut p8 = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 8);
        let refs2: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let _ = p8.tensor_mul_batch(&refs2);
        assert_eq!(p3.time(), p8.time());
    }

    #[test]
    fn weak_units_split_tall_batch_ops_like_serial() {
        use crate::tensor_unit::WeakTensorUnit;
        // One 12-row tall op (3 square tiles) plus one square op = 4
        // invocations, matching the serial weak machine's accounting.
        let inputs = [
            batch_inputs(1, 12, 4).remove(0),
            batch_inputs(1, 4, 4).remove(0),
        ];
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let mut par = ParallelTcuMachine::new(WeakTensorUnit::new(16, 7), 2);
        let out = par.tensor_mul_batch(&refs);
        let mut ser = crate::TcuMachine::weak(16, 7);
        for (i, (a, b)) in inputs.iter().enumerate() {
            assert_eq!(out[i], ser.tensor_mul(a, b));
        }
        assert_eq!(par.stats(), ser.stats());
        assert_eq!(par.stats().tensor_calls, 4);
        // 4 equal invocations on 2 units: makespan = 2 calls.
        assert_eq!(par.time(), 2 * (16 + 7));
        // plan() agrees with what the batch charged.
        let ops = [TensorOp::mul(12, 4), TensorOp::mul(4, 4)];
        assert_eq!(par.plan(&ops).makespan(), par.time());
    }

    #[test]
    fn scalar_work_stays_serial() {
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 8);
        mach.charge(1000);
        assert_eq!(mach.time(), 1000);
    }

    #[test]
    fn scheduled_issue_path_matches_serial_charges_and_numerics() {
        use crate::exec::OperandId;
        // Two independent 8-row ops on 2 units: per-op Stats equal the
        // serial machine's, wall-clock is one wave's makespan.
        let inputs = batch_inputs(2, 8, 4);
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 7), 2);
        par.enable_pack_caches(4);
        let mut ser = crate::TcuMachine::model(16, 7);
        let mut outs = vec![Matrix::<i64>::zeros(8, 4), Matrix::<i64>::zeros(8, 4)];
        for (u, ((a, b), out)) in inputs.iter().zip(&mut outs).enumerate() {
            let id = OperandId {
                buffer: u as u64,
                generation: 0,
                origin: (0, 0),
                extent: (8, 4),
            };
            par.issue_into_on_unit(
                u,
                TensorOp::mul(8, 4),
                a.view(),
                Some(id),
                b.view(),
                &mut out.view_mut(),
            );
        }
        par.complete_wave(8 * 4 + 7);
        for (i, (a, b)) in inputs.iter().enumerate() {
            assert_eq!(outs[i], ser.tensor_mul(a, b));
        }
        assert_eq!(par.stats(), ser.stats());
        assert_eq!(par.time(), 8 * 4 + 7);
        // Each unit packed its own strip once: per-unit caches.
        for u in 0..2 {
            let c = par.unit_executor(u).pack_cache_stats().expect("cache on");
            assert_eq!((c.misses, c.hits), (1, 0), "unit {u}");
        }
    }

    #[test]
    fn recovery_accounting_charges_time_but_never_stats() {
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(16, 7), 2);
        mach.enable_trace();
        let clean_stats = mach.stats().clone();

        mach.record_fault(1, true);
        let b1 = mach.record_retry(1, 2, 8); // first retry: 1× cost
        let b2 = mach.record_retry(1, 3, 8); // second retry: 2× cost
        mach.record_fault(0, false);
        mach.record_quarantine(0, 3);
        mach.charge_recovery(100);

        let cost = 8 * 4 + 7;
        assert_eq!((b1, b2), (cost, 2 * cost));
        assert_eq!(mach.time(), b1 + b2 + 100, "backoff + recovery in time()");
        assert_eq!(mach.stats(), &clean_stats, "Stats must stay untouched");
        let fs = mach.fault_stats();
        assert_eq!(fs.transient_faults, 1);
        assert_eq!(fs.permanent_faults, 1);
        assert_eq!(fs.retries, 2);
        assert_eq!(fs.backoff_time, b1 + b2);
        assert_eq!(fs.quarantined_units, 1);
        assert_eq!(fs.requeued_ops, 3);
        assert_eq!(fs.recovery_makespan, 100);

        let trace = mach.take_trace();
        assert_eq!(trace.fault_events().len(), 5);
        assert_eq!(trace.digest(), TraceLog::new().digest());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scheduled_issue_rejects_bad_unit_index() {
        let inputs = batch_inputs(1, 4, 4);
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 2);
        let mut out = Matrix::<i64>::zeros(4, 4);
        par.issue_into_on_unit(
            2,
            TensorOp::mul(4, 4),
            inputs[0].0.view(),
            None,
            inputs[0].1.view(),
            &mut out.view_mut(),
        );
    }
}
