//! §6 extension: *parallel* tensor units.
//!
//! The paper's conclusion lists "hardware accelerators have parallel
//! tensors … how can we include these features in the TCU model?" as an
//! open question (boards like the Titan RTX carry hundreds of tensor
//! cores, §3.1). This module provides the natural extension: a
//! [`ParallelTcuMachine`] with `p` identical units. A *batch* of
//! independent tensor invocations is scheduled greedily onto the
//! least-loaded unit and the batch charges its **makespan**; scalar CPU
//! work remains serial (the CPU is still one processor). With equal-size
//! invocations the makespan is `⌈k/p⌉` times the per-call cost, so a
//! `p`-unit machine accelerates exactly the tensor-bound portion of an
//! algorithm — an Amdahl decomposition the EP1 experiment measures.

use crate::cost::Stats;
use crate::tensor_unit::TensorUnit;
use tcu_linalg::kernels;
use tcu_linalg::{Matrix, MatrixView, Scalar};

/// A TCU machine with `p` identical tensor units.
#[derive(Clone, Debug)]
pub struct ParallelTcuMachine<U: TensorUnit> {
    unit: U,
    p: usize,
    stats: Stats,
    /// Simulated time spent in batch makespans (subset of
    /// `stats.tensor_time`, which keeps the *work* for utilization
    /// accounting).
    makespan_time: u64,
}

impl<U: TensorUnit> ParallelTcuMachine<U> {
    /// `p ≥ 1` units sharing one costing policy.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(unit: U, p: usize) -> Self {
        assert!(p >= 1, "need at least one unit");
        Self {
            unit,
            p,
            stats: Stats::default(),
            makespan_time: 0,
        }
    }

    /// Number of tensor units.
    #[inline]
    #[must_use]
    pub fn units(&self) -> usize {
        self.p
    }

    /// `√m` of the units.
    #[inline]
    #[must_use]
    pub fn sqrt_m(&self) -> usize {
        self.unit.sqrt_m()
    }

    /// Serial CPU work (1 time unit per op).
    pub fn charge(&mut self, ops: u64) {
        self.stats.record_scalar(ops);
    }

    /// Simulated wall-clock time: serial CPU work plus the makespan of
    /// every tensor batch.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.stats.scalar_ops + self.makespan_time
    }

    /// Total tensor *work* (sum over units) — `time ×` utilization.
    #[must_use]
    pub fn tensor_work(&self) -> u64 {
        self.stats.tensor_time
    }

    /// Detailed counters (tensor_time holds total work, not makespan).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Issue a batch of *independent* tensor invocations
    /// (`Cᵢ = Aᵢ·Bᵢ`, each `Aᵢ : nᵢ × √m`, `Bᵢ : √m × √m`). The batch is
    /// scheduled greedily (each call to the currently least-loaded unit,
    /// longest calls first) and wall-clock advances by the makespan.
    ///
    /// # Panics
    /// Panics if shapes violate the model (same rules as
    /// [`crate::TcuMachine::tensor_mul`]).
    #[must_use]
    pub fn tensor_mul_batch<T: Scalar>(
        &mut self,
        ops: &[(&Matrix<T>, &Matrix<T>)],
    ) -> Vec<Matrix<T>> {
        let views: Vec<(MatrixView<'_, T>, MatrixView<'_, T>)> =
            ops.iter().map(|(a, b)| (a.view(), b.view())).collect();
        self.tensor_mul_batch_views(&views)
    }

    /// [`Self::tensor_mul_batch`] on borrowed operand views — the
    /// zero-copy path used by the §6 parallel algorithms, which carve
    /// every strip and weight block directly out of the input matrices.
    ///
    /// # Panics
    /// Panics if shapes violate the model.
    #[must_use]
    pub fn tensor_mul_batch_views<T: Scalar>(
        &mut self,
        ops: &[(MatrixView<'_, T>, MatrixView<'_, T>)],
    ) -> Vec<Matrix<T>> {
        let s = self.sqrt_m();
        let mut results = Vec::with_capacity(ops.len());
        let mut costs = Vec::with_capacity(ops.len());
        for &(a, b) in ops {
            assert_eq!(a.cols(), s, "left operand must have √m columns");
            assert_eq!(
                (b.rows(), b.cols()),
                (s, s),
                "right operand must be √m × √m"
            );
            assert!(a.rows() >= s, "model requires n ≥ √m rows");
            let cost = self.unit.invocation_cost(a.rows());
            let lat = self.unit.invocation_latency(a.rows());
            self.stats.record_tensor(a.rows() as u64, cost, lat);
            costs.push(cost);
            results.push(kernels::matmul(a, b));
        }
        self.makespan_time += makespan(&costs, self.p);
        results
    }
}

/// Greedy (LPT) makespan of `costs` on `p` identical machines.
fn makespan(costs: &[u64], p: usize) -> u64 {
    let mut sorted: Vec<u64> = costs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; p];
    for c in sorted {
        let min = loads.iter_mut().min().expect("p >= 1");
        *min += c;
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor_unit::ModelTensorUnit;

    fn batch_inputs(k: usize, rows: usize, s: usize) -> Vec<(Matrix<i64>, Matrix<i64>)> {
        (0..k)
            .map(|t| {
                (
                    Matrix::from_fn(rows, s, |i, j| (i + j + t) as i64),
                    Matrix::from_fn(s, s, |i, j| (i * 2 + j + t) as i64),
                )
            })
            .collect()
    }

    #[test]
    fn makespan_basics() {
        assert_eq!(makespan(&[], 4), 0);
        assert_eq!(makespan(&[10], 4), 10);
        assert_eq!(makespan(&[10, 10, 10, 10], 2), 20);
        assert_eq!(makespan(&[10, 10, 10], 2), 20);
        // LPT: 7,5,4,3 on 2 machines -> {7,4}=11 vs {5,3}... LPT gives 11? 7|5 -> 7+3=10, 5+4=9 -> 10.
        assert_eq!(makespan(&[7, 5, 4, 3], 2), 10);
    }

    #[test]
    fn equal_calls_split_evenly() {
        let (m, l, p) = (16usize, 100u64, 4usize);
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(m, l), p);
        let inputs = batch_inputs(8, 4, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let out = mach.tensor_mul_batch(&refs);
        assert_eq!(out.len(), 8);
        // 8 calls of cost 16+100 on 4 units: makespan = 2 calls each.
        assert_eq!(mach.time(), 2 * (16 + 100));
        // Work is all 8 calls.
        assert_eq!(mach.tensor_work(), 8 * (16 + 100));
    }

    #[test]
    fn results_match_serial_machine() {
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 5), 3);
        let mut ser = crate::TcuMachine::model(16, 5);
        let inputs = batch_inputs(5, 8, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let out = par.tensor_mul_batch(&refs);
        for (i, (a, b)) in inputs.iter().enumerate() {
            assert_eq!(out[i], ser.tensor_mul(a, b));
        }
        assert!(
            par.time() < ser.time(),
            "3 units must beat 1 on 5 independent calls"
        );
    }

    #[test]
    fn one_unit_equals_serial_time() {
        let mut par = ParallelTcuMachine::new(ModelTensorUnit::new(16, 7), 1);
        let inputs = batch_inputs(4, 6, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let _ = par.tensor_mul_batch(&refs);
        assert_eq!(par.time(), 4 * (6 * 4 + 7));
    }

    #[test]
    fn speedup_saturates_at_batch_width() {
        // More units than independent calls: no further gain.
        let inputs = batch_inputs(3, 4, 4);
        let refs: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let mut p3 = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 3);
        let _ = p3.tensor_mul_batch(&refs);
        let mut p8 = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 8);
        let refs2: Vec<(&Matrix<i64>, &Matrix<i64>)> = inputs.iter().map(|(a, b)| (a, b)).collect();
        let _ = p8.tensor_mul_batch(&refs2);
        assert_eq!(p3.time(), p8.time());
    }

    #[test]
    fn scalar_work_stays_serial() {
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(16, 0), 8);
        mach.charge(1000);
        assert_eq!(mach.time(), 1000);
    }
}
