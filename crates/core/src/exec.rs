//! Pluggable execution backends for the [`crate::op::TensorOp`] stream.
//!
//! The machine splits a tensor instruction into two orthogonal halves:
//! *accounting* (what the invocation costs in simulated time — decided
//! by the [`crate::TensorUnit`] policy, recorded in [`crate::Stats`] and
//! the trace) and *numerics* (how the host actually computes the
//! product). [`Executor`] abstracts the second half, so the same
//! instruction stream can run on the tiled host kernels
//! ([`HostExecutor`]), the cycle-level systolic array
//! (`tcu_systolic::SystolicExecutor`), or not at all
//! ([`ReplayExecutor`], which re-derives accounting from a recorded
//! trace without touching a single matrix element).
//!
//! Because accounting never flows through the executor, swapping
//! backends can never perturb `Stats` or trace digests — the invariant
//! `tests/cost_invariance.rs` pins. What an executor *returns* from
//! [`Executor::execute`] is its own native cost measure (host flops,
//! counted array cycles, zero for replay); experiments use it to compare
//! backends against the model charge, the machine ignores it.

use crate::op::TensorOp;
use tcu_linalg::kernels;
use tcu_linalg::{MatrixView, MatrixViewMut, Scalar};

/// A numeric backend for tensor instructions.
///
/// `execute` computes `out (+)= a · b` exactly as `op` describes
/// (overwrite vs accumulate per `op.accumulate`; operand shapes are
/// pre-validated by the machine) and returns the backend's native cost
/// of doing so. Implementations must be deterministic: the same op and
/// operands always produce bit-identical output.
pub trait Executor {
    /// Backend name for diagnostics and experiment tables.
    fn name(&self) -> &'static str;

    /// Execute one op numerically; returns the backend-native cost
    /// (host flops, counted cycles, …) — *not* the simulated charge,
    /// which the machine's [`crate::TensorUnit`] policy decides.
    fn execute<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64;
}

/// The default backend: the tiled, register-blocked host kernels of
/// `tcu-linalg` (packed `B` panels, deterministic row-band parallelism).
///
/// Worker count starts at 1 (or `TCU_HOST_THREADS`); it affects host
/// wall-clock only — the row-band split is deterministic, so results are
/// bit-identical for every setting.
#[derive(Clone, Debug)]
pub struct HostExecutor {
    threads: usize,
}

impl HostExecutor {
    /// Single-threaded unless `TCU_HOST_THREADS` requests more workers.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::env::var("TCU_HOST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        Self { threads }
    }

    /// Fixed worker count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Current worker count.
    #[inline]
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Change the worker count (clamped to ≥ 1).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }
}

impl Default for HostExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for HostExecutor {
    fn name(&self) -> &'static str {
        "host"
    }

    fn execute<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        kernels::matmul_into(out, a, b, op.accumulate, self.threads);
        // Native cost: scalar multiply-adds performed.
        (op.rows * op.inner * op.width) as u64
    }
}

/// The accounting-only backend: executes no numerics at all.
///
/// Two uses:
///
/// * plugged into a machine (`TcuMachine::with_executor(unit,
///   ReplayExecutor::default())`), it turns every issued op into pure
///   accounting — the op stream is charged and traced, outputs stay
///   zero;
/// * [`ReplayExecutor::run`] re-runs a recorded [`crate::TraceLog`] as a
///   program, re-deriving [`crate::Stats`] (and an identical fresh
///   trace) from a costing policy without touching numerics — the §5
///   external-memory replays and the trace-invariance property tests
///   are built on this.
#[derive(Clone, Debug, Default)]
pub struct ReplayExecutor {
    trace: crate::trace::TraceLog,
}

impl ReplayExecutor {
    /// Wrap a recorded trace for replay via [`Self::run`].
    #[must_use]
    pub fn new(trace: crate::trace::TraceLog) -> Self {
        Self { trace }
    }

    /// The wrapped trace.
    #[must_use]
    pub fn trace(&self) -> &crate::trace::TraceLog {
        &self.trace
    }

    /// Re-run the recorded op stream under `unit`'s costing policy:
    /// every tensor event is re-charged (per recorded invocation — tall
    /// splits were already applied when the trace was recorded) and
    /// every scalar segment re-billed. Returns the re-derived stats and
    /// the regenerated trace; replaying under the unit that recorded the
    /// trace reproduces both exactly.
    #[must_use]
    pub fn run<U: crate::TensorUnit>(&self, unit: &U) -> (crate::Stats, crate::trace::TraceLog) {
        let mut stats = crate::Stats::default();
        let mut trace = crate::trace::TraceLog::new();
        replay_events(&self.trace, unit, &mut stats, Some(&mut trace));
        (stats, trace)
    }
}

/// The one replay core (shared by [`ReplayExecutor::run`] and
/// `TcuMachine::replay`): re-charge every event of `trace` under `unit`,
/// accumulating into `stats` and — when recording — regenerating the
/// event stream into `out`.
pub(crate) fn replay_events<U: crate::TensorUnit>(
    trace: &crate::trace::TraceLog,
    unit: &U,
    stats: &mut crate::Stats,
    mut out: Option<&mut crate::trace::TraceLog>,
) {
    for ev in trace.events() {
        match *ev {
            crate::trace::TraceEvent::Tensor { op, .. } => {
                let cost = unit.invocation_cost(op.rows);
                let lat = unit.invocation_latency(op.rows);
                stats.record_tensor(op.rows as u64, cost, lat);
                if let Some(t) = out.as_deref_mut() {
                    t.push_tensor(op, cost);
                }
            }
            crate::trace::TraceEvent::Scalar { ops } => {
                stats.record_scalar(ops);
                if let Some(t) = out.as_deref_mut() {
                    t.push_scalar(ops);
                }
            }
        }
    }
}

impl Executor for ReplayExecutor {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn execute<T: Scalar>(
        &mut self,
        _op: &TensorOp,
        _a: MatrixView<'_, T>,
        _b: MatrixView<'_, T>,
        _out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_linalg::ops::matmul_naive;
    use tcu_linalg::Matrix;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| ((i * 5 + j * 3) as i64 + seed) % 17 - 8)
    }

    #[test]
    fn host_executor_overwrites_or_accumulates_per_op() {
        let a = pseudo(8, 4, 1);
        let b = pseudo(4, 4, 2);
        let want = matmul_naive(&a, &b);

        let mut exec = HostExecutor::with_threads(1);
        let mut out = Matrix::from_fn(8, 4, |_, _| 99i64);
        let flops = exec.execute(
            &TensorOp::mul(8, 4),
            a.view(),
            b.view(),
            &mut out.view_mut(),
        );
        assert_eq!(out, want);
        assert_eq!(flops, 8 * 4 * 4);

        let mut acc = want.clone();
        let _ = exec.execute(
            &TensorOp::mul_acc(8, 4),
            a.view(),
            b.view(),
            &mut acc.view_mut(),
        );
        let mut doubled = want.clone();
        doubled.add_assign(&want);
        assert_eq!(acc, doubled);
    }

    #[test]
    fn replay_executor_skips_numerics() {
        let a = pseudo(4, 4, 3);
        let b = pseudo(4, 4, 4);
        let mut out = Matrix::<i64>::zeros(4, 4);
        let cost = ReplayExecutor::default().execute(
            &TensorOp::mul(4, 4),
            a.view(),
            b.view(),
            &mut out.view_mut(),
        );
        assert_eq!(cost, 0);
        assert_eq!(out, Matrix::<i64>::zeros(4, 4));
    }

    #[test]
    fn env_free_constructors() {
        assert_eq!(HostExecutor::with_threads(0).threads(), 1);
        assert_eq!(HostExecutor::with_threads(7).threads(), 7);
        assert_eq!(HostExecutor::with_threads(7).name(), "host");
        assert_eq!(ReplayExecutor::default().name(), "replay");
    }
}
