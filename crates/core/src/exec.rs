//! Pluggable execution backends for the [`crate::op::TensorOp`] stream.
//!
//! The machine splits a tensor instruction into two orthogonal halves:
//! *accounting* (what the invocation costs in simulated time — decided
//! by the [`crate::TensorUnit`] policy, recorded in [`crate::Stats`] and
//! the trace) and *numerics* (how the host actually computes the
//! product). [`Executor`] abstracts the second half, so the same
//! instruction stream can run on the tiled host kernels
//! ([`HostExecutor`]), the cycle-level systolic array
//! (`tcu_systolic::SystolicExecutor`), or not at all
//! ([`ReplayExecutor`], which re-derives accounting from a recorded
//! trace without touching a single matrix element).
//!
//! Because accounting never flows through the executor, swapping
//! backends can never perturb `Stats` or trace digests — the invariant
//! `tests/cost_invariance.rs` pins. What an executor *returns* from
//! [`Executor::execute`] is its own native cost measure (host flops,
//! counted array cycles, zero for replay); experiments use it to compare
//! backends against the model charge, the machine ignores it.

use crate::op::TensorOp;
use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use tcu_linalg::kernels;
use tcu_linalg::{MatrixView, MatrixViewMut, Scalar};

/// Stable identity of a *left-operand region* across invocations: which
/// logical buffer it lives in, which write-generation of that buffer it
/// was read at, and the exact sub-rectangle. Schedulers that know their
/// operands' provenance (the `tcu-sched` op-graph runtime) attach one to
/// each issued op via [`crate::TcuMachine::issue_into_tagged`]; executors
/// may use it as a cache key for derived operand forms (packed strips),
/// because two invocations with equal `OperandId`s are guaranteed to
/// read bit-identical data. Plain `issue_into` passes `None` — untagged
/// ops are never cached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OperandId {
    /// Logical buffer the operand is a region of (caller-assigned).
    pub buffer: u64,
    /// Number of writes the region had absorbed when the op was
    /// recorded; a later write to the region must bump this, which
    /// makes stale cache entries unreachable.
    pub generation: u64,
    /// Top-left corner of the region within the buffer.
    pub origin: (usize, usize),
    /// Region extent (`rows × cols`).
    pub extent: (usize, usize),
}

/// A numeric backend for tensor instructions.
///
/// `execute` computes `out (+)= a · b` exactly as `op` describes
/// (overwrite vs accumulate per `op.accumulate`; operand shapes are
/// pre-validated by the machine) and returns the backend's native cost
/// of doing so. Implementations must be deterministic: the same op and
/// operands always produce bit-identical output.
///
/// Executors are `Send`: the multi-unit wave driver moves each unit's
/// executor into its own worker thread for the duration of a wave
/// (determinism is unaffected — every unit still sees its ops in the
/// schedule's canonical order).
pub trait Executor: Send {
    /// Backend name for diagnostics and experiment tables.
    fn name(&self) -> &'static str;

    /// Execute one op numerically; returns the backend-native cost
    /// (host flops, counted cycles, …) — *not* the simulated charge,
    /// which the machine's [`crate::TensorUnit`] policy decides.
    fn execute<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64;

    /// [`Self::execute`] with the left operand's provenance attached.
    /// Backends that cache derived operand forms (packed strips) key
    /// them by `a_id`; the default implementation ignores the tag, so
    /// every executor works unchanged under a scheduling runtime.
    /// Results must be bit-identical to the untagged path.
    fn execute_tagged<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        a_id: Option<OperandId>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        let _ = a_id;
        self.execute(op, a, b, out)
    }

    /// Counters of the backend's derived-operand cache, when it keeps
    /// one (the host executor's pack cache). `None` for cache-less
    /// backends — the default. Lets generic reporting (the machine's
    /// `stats_summary`, the `--stats` experiment output) surface cache
    /// behaviour without naming a concrete executor type.
    fn cache_stats(&self) -> Option<PackCacheStats> {
        None
    }

    /// Attach an execution-telemetry recorder, identifying this executor
    /// as tensor unit `unit` in the recorded lanes. Backends with
    /// internal events worth a timeline (the host executor's pack-cache
    /// traffic) store the pair and emit onto `Lane::Unit(unit)`; the
    /// default ignores it, so recording stays strictly opt-in and every
    /// executor works unattached. Recording must be unobservable:
    /// attaching may never change results, native costs, or
    /// [`Self::cache_stats`].
    fn attach_recorder(&mut self, recorder: Arc<dyn tcu_obs::Recorder>, unit: u32) {
        let _ = (recorder, unit);
    }
}

/// Derived pack-cache capacity for a blocked flow whose left operands
/// are strips of a `dims = (rows, cols)` buffer on a `√m = sqrt_m`
/// unit, with the cache split across `units` per-unit executors.
///
/// One blocked pass streams at most `⌈cols/√m⌉` distinct left strips
/// (one per block column of the operand); a pipelined flow can keep two
/// stages' strips live at once, and each of `units` executors only ever
/// sees the strips placed on its unit. Hence
/// `⌈2·⌈cols/√m⌉ / units⌉`, clamped to `[2, 1024]` — at least a working
/// pair so ping-pong reuse never thrashes, and a hard ceiling so a huge
/// operand cannot turn the cache into an unbounded retainer.
///
/// The environment variable `TCU_PACK_CACHE_CAP`, when set to a
/// positive integer, overrides the derivation entirely (benchmark
/// ablations sweep it without recompiling).
#[must_use]
pub fn pack_cache_capacity(dims: (usize, usize), sqrt_m: usize, units: usize) -> usize {
    if let Some(cap) = std::env::var("TCU_PACK_CACHE_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
    {
        return cap;
    }
    let strips = dims.1.div_ceil(sqrt_m.max(1));
    (2 * strips).div_ceil(units.max(1)).clamp(2, 1024)
}

/// Running counters of a [`HostExecutor`] pack cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackCacheStats {
    /// Tagged executions that consulted the cache.
    pub lookups: u64,
    /// Lookups served by an already-packed strip.
    pub hits: u64,
    /// Lookups that had to pack (insert) the strip.
    pub misses: u64,
    /// Bytes written into pack buffers across all misses — the "packed
    /// bytes moved" metric of the scheduling benchmarks (a pack-per-
    /// invocation policy pays this once per *lookup* instead).
    pub packed_bytes: u64,
    /// Entries dropped to stay within capacity (FIFO order).
    pub evictions: u64,
}

/// Multiply-mix hasher for pack-cache keys: the key is already a bag of
/// word-sized fields with high entropy in the low bits (buffer ids,
/// generations, rectangle coordinates), so one multiply-xor round per
/// word distributes fine — and the lookup sits on the per-op hot path of
/// scheduled execution, where the default SipHash's setup cost per tiny
/// key is measurable across thousands of small ops.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Keys hash only word-sized fields, but TypeId feeds an opaque
        // blob through here — fold it 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FIFO-bounded map from `(element type, OperandId)` to a packed strip.
///
/// Entries are type-erased (`PackedA<T>` behind `Arc<dyn Any>`) because
/// the executor is monomorphic per *call*, not per machine — one cache
/// serves `f64` ops and `i64` ops side by side. Generation bumps in the
/// key make stale strips unreachable; FIFO eviction bounds memory (the
/// order queue pops from the front, so a full cache evicts in O(1), not
/// O(capacity) — a run that replaces its whole working set every epoch
/// pays per insert, not per insert times capacity).
#[derive(Clone, Default)]
struct PackCache {
    capacity: usize,
    entries: HashMap<(TypeId, OperandId), Arc<dyn Any + Send + Sync>, BuildHasherDefault<FxHasher>>,
    order: VecDeque<(TypeId, OperandId)>,
    stats: PackCacheStats,
}

impl std::fmt::Debug for PackCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PackCache {{ capacity: {}, entries: {}, stats: {:?} }}",
            self.capacity,
            self.entries.len(),
            self.stats
        )
    }
}

impl PackCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::default()
        }
    }

    /// The packed form of `a` under `id`: reused on hit, packed and
    /// inserted on miss (evicting the oldest entry when full).
    fn get_or_pack<T: Scalar>(
        &mut self,
        id: OperandId,
        a: MatrixView<'_, T>,
    ) -> Arc<kernels::PackedA<T>> {
        let key = (TypeId::of::<T>(), id);
        self.stats.lookups += 1;
        if let Some(entry) = self.entries.get(&key) {
            if let Ok(packed) = Arc::clone(entry).downcast::<kernels::PackedA<T>>() {
                if (packed.rows(), packed.cols()) == (a.rows(), a.cols()) {
                    self.stats.hits += 1;
                    return packed;
                }
            }
            // Shape or type disagreement under an equal id is a caller
            // bug, but stay safe: treat as a miss and repack.
            self.entries.remove(&key);
            self.order.retain(|k| *k != key);
        }
        let packed = Arc::new(kernels::pack_a(a));
        self.stats.misses += 1;
        self.stats.packed_bytes += packed.bytes() as u64;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.entries
            .insert(key, Arc::clone(&packed) as Arc<dyn Any + Send + Sync>);
        self.order.push_back(key);
        packed
    }
}

/// The default backend: the tiled, register-blocked host kernels of
/// `tcu-linalg` (packed `B` panels, deterministic row-band parallelism).
///
/// Worker count starts at 1 (or `TCU_HOST_THREADS`); it affects host
/// wall-clock only — the row-band split is deterministic, so results are
/// bit-identical for every setting.
#[derive(Clone, Debug)]
pub struct HostExecutor {
    threads: usize,
    cache: Option<PackCache>,
    /// Telemetry sink plus the unit id this executor records as; set by
    /// [`Executor::attach_recorder`], never consulted unless present.
    recorder: Option<(Arc<dyn tcu_obs::Recorder>, u32)>,
}

impl HostExecutor {
    /// Single-threaded unless `TCU_HOST_THREADS` requests more workers.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::env::var("TCU_HOST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        Self {
            threads,
            cache: None,
            recorder: None,
        }
    }

    /// Fixed worker count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            cache: None,
            recorder: None,
        }
    }

    /// Turn on executor-level strip caching for tagged ops: the packed
    /// form of each distinct left-operand region (keyed by
    /// [`OperandId`], i.e. buffer + generation + rectangle) is kept
    /// across invocations, so a blocked flow that re-streams the same
    /// strip against many weight blocks packs it once instead of once
    /// per invocation. At most `capacity` strips are held (FIFO
    /// eviction, clamped to ≥ 1). Untagged ops are unaffected; results
    /// are bit-identical either way. Note the trade: the packed-strip
    /// kernel is serial, so tagged ops bypass the row-band threaded
    /// path — a multi-threaded executor exchanges its parallelism for
    /// pack reuse on those ops (untagged ops keep their threading).
    /// Resets any previous cache state.
    pub fn enable_pack_cache(&mut self, capacity: usize) {
        self.cache = Some(PackCache::new(capacity));
    }

    /// Drop the pack cache (tagged ops fall back to the plain kernels).
    pub fn disable_pack_cache(&mut self) {
        self.cache = None;
    }

    /// Counters of the pack cache since [`Self::enable_pack_cache`]
    /// (`None` when caching is off).
    #[must_use]
    pub fn pack_cache_stats(&self) -> Option<PackCacheStats> {
        self.cache.as_ref().map(|c| c.stats)
    }

    /// Current worker count.
    #[inline]
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Change the worker count (clamped to ≥ 1).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }
}

impl Default for HostExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for HostExecutor {
    fn name(&self) -> &'static str {
        "host"
    }

    fn execute<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        kernels::matmul_into(out, a, b, op.accumulate, self.threads);
        // Native cost: scalar multiply-adds performed.
        (op.rows * op.inner * op.width) as u64
    }

    fn execute_tagged<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        a_id: Option<OperandId>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        match (a_id, self.cache.as_mut()) {
            (Some(id), Some(cache)) => {
                // The packed band runs serially; that's bit-identical
                // to every threaded band split, so nothing observable
                // changes — only the pack traffic.
                let before = cache.stats;
                let start = self.recorder.as_ref().map(|(r, _)| r.now_ns());
                let packed = cache.get_or_pack(id, a);
                if let (Some((rec, unit)), Some(t0)) = (self.recorder.as_ref(), start) {
                    let after = cache.stats;
                    rec.record(
                        tcu_obs::Lane::Unit(*unit),
                        tcu_obs::SpanEvent {
                            kind: tcu_obs::EventKind::PackLookup {
                                unit: *unit,
                                hit: after.hits > before.hits,
                            },
                            t_ns: t0,
                            dur_ns: rec.now_ns().saturating_sub(t0),
                        },
                    );
                    if after.evictions > before.evictions {
                        let t = rec.now_ns();
                        rec.record(
                            tcu_obs::Lane::Unit(*unit),
                            tcu_obs::SpanEvent {
                                kind: tcu_obs::EventKind::PackEvict { unit: *unit },
                                t_ns: t,
                                dur_ns: 0,
                            },
                        );
                    }
                }
                kernels::matmul_packed_into(out, &packed, b, op.accumulate);
                (op.rows * op.inner * op.width) as u64
            }
            _ => self.execute(op, a, b, out),
        }
    }

    fn cache_stats(&self) -> Option<PackCacheStats> {
        self.pack_cache_stats()
    }

    fn attach_recorder(&mut self, recorder: Arc<dyn tcu_obs::Recorder>, unit: u32) {
        self.recorder = Some((recorder, unit));
    }
}

/// The accounting-only backend: executes no numerics at all.
///
/// Two uses:
///
/// * plugged into a machine (`TcuMachine::with_executor(unit,
///   ReplayExecutor::default())`), it turns every issued op into pure
///   accounting — the op stream is charged and traced, outputs stay
///   zero;
/// * [`ReplayExecutor::run`] re-runs a recorded [`crate::TraceLog`] as a
///   program, re-deriving [`crate::Stats`] (and an identical fresh
///   trace) from a costing policy without touching numerics — the §5
///   external-memory replays and the trace-invariance property tests
///   are built on this.
#[derive(Clone, Debug, Default)]
pub struct ReplayExecutor {
    trace: crate::trace::TraceLog,
}

impl ReplayExecutor {
    /// Wrap a recorded trace for replay via [`Self::run`].
    #[must_use]
    pub fn new(trace: crate::trace::TraceLog) -> Self {
        Self { trace }
    }

    /// The wrapped trace.
    #[must_use]
    pub fn trace(&self) -> &crate::trace::TraceLog {
        &self.trace
    }

    /// Re-run the recorded op stream under `unit`'s costing policy:
    /// every tensor event is re-charged (per recorded invocation — tall
    /// splits were already applied when the trace was recorded) and
    /// every scalar segment re-billed. Returns the re-derived stats and
    /// the regenerated trace; replaying under the unit that recorded the
    /// trace reproduces both exactly.
    #[must_use]
    pub fn run<U: crate::TensorUnit>(&self, unit: &U) -> (crate::Stats, crate::trace::TraceLog) {
        let mut stats = crate::Stats::default();
        let mut trace = crate::trace::TraceLog::new();
        replay_events(&self.trace, unit, &mut stats, Some(&mut trace));
        (stats, trace)
    }
}

/// The one replay core (shared by [`ReplayExecutor::run`] and
/// `TcuMachine::replay`): re-charge every event of `trace` under `unit`,
/// accumulating into `stats` and — when recording — regenerating the
/// event stream into `out`.
pub(crate) fn replay_events<U: crate::TensorUnit>(
    trace: &crate::trace::TraceLog,
    unit: &U,
    stats: &mut crate::Stats,
    mut out: Option<&mut crate::trace::TraceLog>,
) {
    for ev in trace.events() {
        match *ev {
            crate::trace::TraceEvent::Tensor { op, .. } => {
                let cost = unit.invocation_cost(op.rows);
                let lat = unit.invocation_latency(op.rows);
                stats.record_tensor(op.rows as u64, cost, lat);
                if let Some(t) = out.as_deref_mut() {
                    t.push_tensor(op, cost);
                }
            }
            crate::trace::TraceEvent::Scalar { ops } => {
                stats.record_scalar(ops);
                if let Some(t) = out.as_deref_mut() {
                    t.push_scalar(ops);
                }
            }
            // Recovery annotations carry no chargeable work: replay
            // re-derives the fault-free accounting, which is exactly
            // what the recovery contract says the original run charged.
            crate::trace::TraceEvent::Fault { .. }
            | crate::trace::TraceEvent::Retry { .. }
            | crate::trace::TraceEvent::Quarantine { .. } => {}
        }
    }
}

impl Executor for ReplayExecutor {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn execute<T: Scalar>(
        &mut self,
        _op: &TensorOp,
        _a: MatrixView<'_, T>,
        _b: MatrixView<'_, T>,
        _out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_linalg::ops::matmul_naive;
    use tcu_linalg::Matrix;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| ((i * 5 + j * 3) as i64 + seed) % 17 - 8)
    }

    #[test]
    fn host_executor_overwrites_or_accumulates_per_op() {
        let a = pseudo(8, 4, 1);
        let b = pseudo(4, 4, 2);
        let want = matmul_naive(&a, &b);

        let mut exec = HostExecutor::with_threads(1);
        let mut out = Matrix::from_fn(8, 4, |_, _| 99i64);
        let flops = exec.execute(
            &TensorOp::mul(8, 4),
            a.view(),
            b.view(),
            &mut out.view_mut(),
        );
        assert_eq!(out, want);
        assert_eq!(flops, 8 * 4 * 4);

        let mut acc = want.clone();
        let _ = exec.execute(
            &TensorOp::mul_acc(8, 4),
            a.view(),
            b.view(),
            &mut acc.view_mut(),
        );
        let mut doubled = want.clone();
        doubled.add_assign(&want);
        assert_eq!(acc, doubled);
    }

    #[test]
    fn replay_executor_skips_numerics() {
        let a = pseudo(4, 4, 3);
        let b = pseudo(4, 4, 4);
        let mut out = Matrix::<i64>::zeros(4, 4);
        let cost = ReplayExecutor::default().execute(
            &TensorOp::mul(4, 4),
            a.view(),
            b.view(),
            &mut out.view_mut(),
        );
        assert_eq!(cost, 0);
        assert_eq!(out, Matrix::<i64>::zeros(4, 4));
    }

    #[test]
    fn pack_cache_hits_reuse_strips_and_stay_bit_identical() {
        let big = pseudo(24, 12, 5);
        let strip = big.subview(0, 4, 24, 4);
        let b1 = pseudo(4, 4, 6);
        let b2 = pseudo(4, 4, 7);
        let id = OperandId {
            buffer: 3,
            generation: 0,
            origin: (0, 4),
            extent: (24, 4),
        };

        let mut plain = HostExecutor::with_threads(1);
        let mut cached = HostExecutor::with_threads(1);
        cached.enable_pack_cache(8);
        for (i, blk) in [&b1, &b2, &b1].iter().enumerate() {
            let op = if i == 0 {
                TensorOp::mul(24, 4)
            } else {
                TensorOp::mul_acc(24, 4)
            };
            let mut want = Matrix::<i64>::zeros(24, 4);
            let mut got = Matrix::<i64>::zeros(24, 4);
            let _ = plain.execute(&op, strip, blk.view(), &mut want.view_mut());
            let _ = cached.execute_tagged(&op, strip, Some(id), blk.view(), &mut got.view_mut());
            // Overwrite and accumulate modes both served from the cache.
            assert_eq!(got, want, "op {i}");
        }
        let stats = cached.pack_cache_stats().expect("cache enabled");
        assert_eq!((stats.lookups, stats.hits, stats.misses), (3, 2, 1));
        assert_eq!(stats.packed_bytes, 24 * 4 * 8);

        // A new generation is a different key: repack, no stale reuse.
        let next = OperandId {
            generation: 1,
            ..id
        };
        let mut out = Matrix::<i64>::zeros(24, 4);
        let _ = cached.execute_tagged(
            &TensorOp::mul(24, 4),
            strip,
            Some(next),
            b1.view(),
            &mut out.view_mut(),
        );
        assert_eq!(cached.pack_cache_stats().expect("enabled").misses, 2);

        // Untagged ops bypass the cache entirely.
        let _ = cached.execute_tagged(
            &TensorOp::mul(24, 4),
            strip,
            None,
            b1.view(),
            &mut out.view_mut(),
        );
        assert_eq!(cached.pack_cache_stats().expect("enabled").lookups, 4);
    }

    #[test]
    fn pack_cache_evicts_fifo_at_capacity() {
        let a = pseudo(8, 4, 9);
        let b = pseudo(4, 4, 10);
        let mut exec = HostExecutor::with_threads(1);
        exec.enable_pack_cache(2);
        let mut out = Matrix::<i64>::zeros(8, 4);
        let id = |buf: u64| OperandId {
            buffer: buf,
            generation: 0,
            origin: (0, 0),
            extent: (8, 4),
        };
        for buf in [0u64, 1, 2, 0] {
            let _ = exec.execute_tagged(
                &TensorOp::mul(8, 4),
                a.view(),
                Some(id(buf)),
                b.view(),
                &mut out.view_mut(),
            );
        }
        let stats = exec.pack_cache_stats().expect("enabled");
        // Buffer 0 was evicted by buffer 2's insert, so its second use
        // repacks (and evicts buffer 1 in turn): 4 misses, 2 evictions.
        assert_eq!((stats.misses, stats.evictions, stats.hits), (4, 2, 0));
        exec.disable_pack_cache();
        assert!(exec.pack_cache_stats().is_none());
    }

    #[test]
    fn derived_capacity_bounds_the_cache_and_env_overrides_it() {
        // d = 32, √m = 4, 1 unit: ⌈32/4⌉ = 8 strips, two stages → 16.
        assert_eq!(pack_cache_capacity((32, 32), 4, 1), 16);
        // Split across 4 units: ⌈16/4⌉ = 4 per-unit strips.
        assert_eq!(pack_cache_capacity((32, 32), 4, 4), 4);
        // Tiny operands still get a working pair; huge ones hit the cap.
        assert_eq!(pack_cache_capacity((4, 4), 4, 8), 2);
        assert_eq!(pack_cache_capacity((1 << 20, 1 << 20), 4, 1), 1024);

        // Eviction engages exactly at the derived bound: insert one
        // strip per block column twice over — the first pass fills the
        // cache to capacity, one extra distinct strip then evicts FIFO.
        let cap = pack_cache_capacity((8, 8), 4, 1); // 2 strips × 2 = 4
        assert_eq!(cap, 4);
        let a = pseudo(8, 4, 11);
        let b = pseudo(4, 4, 12);
        let mut exec = HostExecutor::with_threads(1);
        exec.enable_pack_cache(cap);
        let mut out = Matrix::<i64>::zeros(8, 4);
        let id = |buf: u64| OperandId {
            buffer: buf,
            generation: 0,
            origin: (0, 0),
            extent: (8, 4),
        };
        for buf in 0..cap as u64 {
            let _ = exec.execute_tagged(
                &TensorOp::mul(8, 4),
                a.view(),
                Some(id(buf)),
                b.view(),
                &mut out.view_mut(),
            );
        }
        assert_eq!(
            exec.pack_cache_stats().expect("enabled").evictions,
            0,
            "the derived bound holds a full pass without eviction"
        );
        let _ = exec.execute_tagged(
            &TensorOp::mul(8, 4),
            a.view(),
            Some(id(cap as u64)),
            b.view(),
            &mut out.view_mut(),
        );
        assert_eq!(
            exec.pack_cache_stats().expect("enabled").evictions,
            1,
            "one strip past the derived bound evicts exactly once"
        );

        // The env override wins over the derivation (checked in-test to
        // keep the process-global variable scoped to one test).
        std::env::set_var("TCU_PACK_CACHE_CAP", "7");
        assert_eq!(pack_cache_capacity((32, 32), 4, 1), 7);
        std::env::set_var("TCU_PACK_CACHE_CAP", "not-a-number");
        assert_eq!(
            pack_cache_capacity((32, 32), 4, 1),
            16,
            "bad values fall back"
        );
        std::env::remove_var("TCU_PACK_CACHE_CAP");
    }

    #[test]
    fn env_free_constructors() {
        assert_eq!(HostExecutor::with_threads(0).threads(), 1);
        assert_eq!(HostExecutor::with_threads(7).threads(), 7);
        assert_eq!(HostExecutor::with_threads(7).name(), "host");
        assert_eq!(ReplayExecutor::default().name(), "replay");
    }
}
