//! Simulated-time accounting for the (m, ℓ)-TCU model.
//!
//! The paper defines the running time of a TCU algorithm as "the total
//! cost of all operations performed by the CPU, including all calls to the
//! tensor unit", with no concurrency between CPU, memory, and tensor unit
//! (§3). [`Stats`] meters that quantity exactly and keeps enough
//! per-component detail for the experiments to decompose time into its
//! bandwidth (`n√m`) and latency (`ℓ`) terms.

/// Running counters for one simulated execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of tensor-unit invocations issued.
    pub tensor_calls: u64,
    /// Total rows streamed through the unit (the sum of each call's `n`).
    pub tensor_rows: u64,
    /// Simulated time spent inside the tensor unit, including latency.
    pub tensor_time: u64,
    /// Simulated time spent on latency alone (the `ℓ` component of
    /// `tensor_time`); lets experiments separate the two terms of
    /// `O(n√m + ℓ)` without re-deriving call counts.
    pub tensor_latency_time: u64,
    /// Scalar CPU operations (1 time unit each).
    pub scalar_ops: u64,
}

impl Stats {
    /// Total simulated time: CPU ops plus tensor-unit time (the model's
    /// components are mutually exclusive in time, so they sum).
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.scalar_ops + self.tensor_time
    }

    /// Tensor time with latency stripped: the pure streaming/bandwidth
    /// component `Σ n·√m` (for the default model-cost policy).
    #[inline]
    #[must_use]
    pub fn tensor_stream_time(&self) -> u64 {
        self.tensor_time - self.tensor_latency_time
    }

    /// Record one tensor invocation.
    pub(crate) fn record_tensor(&mut self, n_rows: u64, cost: u64, latency_part: u64) {
        self.tensor_calls += 1;
        self.tensor_rows += n_rows;
        self.tensor_time += cost;
        self.tensor_latency_time += latency_part;
    }

    /// Record scalar CPU work.
    pub(crate) fn record_scalar(&mut self, ops: u64) {
        self.scalar_ops += ops;
    }
}

/// One-look digest of a machine's activity: the [`Stats`] counters plus
/// the per-op-kind breakdown of the *logical* ops issued (before any
/// tall-split into hardware invocations). Produced by
/// `TcuMachine::stats_summary`; the experiment harness prints it behind
/// `--stats` so scheduler wins (fewer invocations, fewer rows) are
/// visible in every `exp_*` bin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSummary {
    /// Logical tensor ops issued (`issue`/`issue_into` calls).
    pub ops_issued: u64,
    /// Of those: strict overwriting products.
    pub muls: u64,
    /// Strict fused-accumulate products.
    pub mul_accs: u64,
    /// Zero-padded overwriting products.
    pub padded: u64,
    /// Zero-padded fused-accumulate products.
    pub padded_accs: u64,
    /// Hardware invocations charged (≥ `ops_issued`: tall splits).
    pub invocations: u64,
    /// Total rows charged across invocations.
    pub rows_charged: u64,
    /// Simulated time inside the tensor unit (incl. latency).
    pub tensor_time: u64,
    /// Scalar CPU operations charged.
    pub scalar_ops: u64,
    /// Total simulated time.
    pub time: u64,
    /// Counters of the executor's derived-operand (pack) cache, when the
    /// backend keeps one — `None` otherwise. Host-side observability
    /// only: nothing in the cache touches simulated time.
    pub pack_cache: Option<crate::exec::PackCacheStats>,
}

impl std::fmt::Display for StatsSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ops issued {} (mul {}, mul+acc {}, padded {}, padded+acc {}); \
             invocations {}, rows charged {}, tensor time {}, scalar ops {}, total time {}",
            self.ops_issued,
            self.muls,
            self.mul_accs,
            self.padded,
            self.padded_accs,
            self.invocations,
            self.rows_charged,
            self.tensor_time,
            self.scalar_ops,
            self.time,
        )?;
        if let Some(c) = &self.pack_cache {
            write!(
                f,
                "; pack cache: {} lookups, {} hits, {} misses, {} evictions, {} packed bytes",
                c.lookups, c.hits, c.misses, c.evictions, c.packed_bytes,
            )?;
        }
        Ok(())
    }
}

/// Closed-form model cost of a single tensor invocation with an `n`-row
/// left operand on an (m, ℓ)-TCU with `√m = sqrt_m`: exactly `n·√m + ℓ`.
#[inline]
#[must_use]
pub fn model_invocation_cost(n_rows: u64, sqrt_m: u64, latency: u64) -> u64 {
    n_rows * sqrt_m + latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_sum_of_components() {
        let mut s = Stats::default();
        s.record_scalar(100);
        s.record_tensor(16, 16 * 4 + 7, 7);
        s.record_tensor(32, 32 * 4 + 7, 7);
        assert_eq!(s.tensor_calls, 2);
        assert_eq!(s.tensor_rows, 48);
        assert_eq!(s.tensor_time, 48 * 4 + 14);
        assert_eq!(s.tensor_latency_time, 14);
        assert_eq!(s.tensor_stream_time(), 48 * 4);
        assert_eq!(s.time(), 100 + 48 * 4 + 14);
    }

    #[test]
    fn model_cost_formula() {
        assert_eq!(model_invocation_cost(16, 4, 0), 64);
        assert_eq!(model_invocation_cost(16, 4, 1000), 1064);
        assert_eq!(model_invocation_cost(4, 4, 0), 16); // square call: exactly m
    }
}
