//! Tensor-unit cost policies.
//!
//! The numerics of a tensor invocation are the same for every hardware
//! flavour (the unit computes a plain matrix product — "no existing tensor
//! unit implements fast matrix multiplication algorithms", §3); what
//! varies is the *time charged*. [`TensorUnit`] abstracts exactly that:
//! the machine performs the product and asks the policy what it cost.
//!
//! * [`ModelTensorUnit`] — the paper's (m, ℓ)-TCU charge `n·√m + ℓ`.
//! * [`WeakTensorUnit`] — the §5 weak model: only `√m × √m` inputs are
//!   accepted, so tall multiplications decompose into `⌈n/√m⌉` square
//!   invocations, each paying the latency again.
//! * `tcu_systolic::SystolicTensorUnit` — charges the counted step
//!   sequence of the §2.2 weight-stationary array (defined in the
//!   `tcu-systolic` crate, which implements this trait).

/// A costing policy for tensor-unit invocations.
///
/// `sqrt_m` is `√m`: the unit multiplies `n × √m` by `√m × √m` operands.
/// Implementations decide the time charged per invocation and whether tall
/// (`n > √m`) left operands are supported natively.
pub trait TensorUnit {
    /// `√m`, the fixed operand width of the unit.
    fn sqrt_m(&self) -> usize;

    /// The model's per-invocation latency parameter ℓ.
    fn latency(&self) -> u64;

    /// Time charged for one native invocation whose left operand has
    /// `n_rows` rows (the machine guarantees `n_rows ≥ √m` for native
    /// calls, splitting beforehand when [`Self::supports_tall`] is false).
    fn invocation_cost(&self, n_rows: usize) -> u64;

    /// The latency component of [`Self::invocation_cost`] (used to meter
    /// the two terms of `O(n√m + ℓ)` separately).
    fn invocation_latency(&self, n_rows: usize) -> u64 {
        let _ = n_rows;
        self.latency()
    }

    /// Whether the unit natively streams tall left operands (the model's
    /// asymmetric feature, §3 property 3). When `false`, the machine
    /// splits an `n × √m` left operand into `⌈n/√m⌉` square tiles and
    /// issues one invocation per tile — the NVIDIA-style behaviour noted
    /// in §2.2 ("matrix B … is percolated within the array as matrix A").
    fn supports_tall(&self) -> bool {
        true
    }

    /// Hardware capacity `m = sqrt_m²`.
    fn m(&self) -> usize {
        self.sqrt_m() * self.sqrt_m()
    }
}

/// Integer square root with exactness check, for validating `m`.
fn exact_sqrt(m: usize) -> usize {
    let s = (m as f64).sqrt().round() as usize;
    assert!(
        s * s == m,
        "m = {m} must be a perfect square (it is √m × √m hardware)"
    );
    s
}

/// The standard (m, ℓ)-TCU cost policy: an invocation with an `n`-row left
/// operand costs exactly `n·√m + ℓ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelTensorUnit {
    sqrt_m: usize,
    latency: u64,
}

impl ModelTensorUnit {
    /// Build from the paper's parameters `(m, ℓ)`.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn new(m: usize, latency: u64) -> Self {
        assert!(m >= 1, "m must be positive");
        Self {
            sqrt_m: exact_sqrt(m),
            latency,
        }
    }

    /// Build directly from `√m`.
    #[must_use]
    pub fn from_sqrt_m(sqrt_m: usize, latency: u64) -> Self {
        assert!(sqrt_m >= 1, "sqrt_m must be positive");
        Self { sqrt_m, latency }
    }
}

impl TensorUnit for ModelTensorUnit {
    fn sqrt_m(&self) -> usize {
        self.sqrt_m
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn invocation_cost(&self, n_rows: usize) -> u64 {
        crate::cost::model_invocation_cost(n_rows as u64, self.sqrt_m as u64, self.latency)
    }
}

/// The §5 *weak* TCU: multiplies only `√m × √m` by `√m × √m`. Any tall
/// call is decomposed by the machine into square invocations, each charged
/// `m + ℓ` — which is how the weak model loses the `(n/m)·ℓ` → `(n/m)^{3/2}·ℓ`
/// latency advantage (§5: "any algorithm for the original TCU model can be
/// simulated in the weak version with a constant slowdown when ℓ = O(m)").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeakTensorUnit {
    sqrt_m: usize,
    latency: u64,
}

impl WeakTensorUnit {
    /// Build from the paper's parameters `(m, ℓ)`.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn new(m: usize, latency: u64) -> Self {
        assert!(m >= 1, "m must be positive");
        Self {
            sqrt_m: exact_sqrt(m),
            latency,
        }
    }
}

impl TensorUnit for WeakTensorUnit {
    fn sqrt_m(&self) -> usize {
        self.sqrt_m
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn invocation_cost(&self, n_rows: usize) -> u64 {
        debug_assert_eq!(n_rows, self.sqrt_m, "weak unit only takes square operands");
        crate::cost::model_invocation_cost(self.sqrt_m as u64, self.sqrt_m as u64, self.latency)
    }

    fn supports_tall(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_unit_costs() {
        let u = ModelTensorUnit::new(256, 100);
        assert_eq!(u.sqrt_m(), 16);
        assert_eq!(u.m(), 256);
        assert_eq!(u.latency(), 100);
        assert_eq!(u.invocation_cost(16), 256 + 100);
        assert_eq!(u.invocation_cost(1024), 1024 * 16 + 100);
        assert!(u.supports_tall());
    }

    #[test]
    fn weak_unit_is_square_only() {
        let u = WeakTensorUnit::new(64, 5);
        assert!(!u.supports_tall());
        assert_eq!(u.invocation_cost(8), 64 + 5);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_m_rejected() {
        let _ = ModelTensorUnit::new(200, 0);
    }

    #[test]
    fn from_sqrt_m_roundtrip() {
        let u = ModelTensorUnit::from_sqrt_m(10, 3);
        assert_eq!(u.m(), 100);
        assert_eq!(u.invocation_cost(10), 103);
    }
}
