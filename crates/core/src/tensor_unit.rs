//! Tensor-unit cost policies.
//!
//! The numerics of a tensor invocation are the same for every hardware
//! flavour (the unit computes a plain matrix product — "no existing tensor
//! unit implements fast matrix multiplication algorithms", §3); what
//! varies is the *time charged*. [`TensorUnit`] abstracts exactly that:
//! the machine performs the product and asks the policy what it cost.
//!
//! * [`ModelTensorUnit`] — the paper's (m, ℓ)-TCU charge `n·√m + ℓ`.
//! * [`WeakTensorUnit`] — the §5 weak model: only `√m × √m` inputs are
//!   accepted, so tall multiplications decompose into `⌈n/√m⌉` square
//!   invocations, each paying the latency again.
//! * `tcu_systolic::SystolicTensorUnit` — charges the counted step
//!   sequence of the §2.2 weight-stationary array (defined in the
//!   `tcu-systolic` crate, which implements this trait).

/// A costing policy for tensor-unit invocations.
///
/// `sqrt_m` is `√m`: the unit multiplies `n × √m` by `√m × √m` operands.
/// Implementations decide the time charged per invocation and whether tall
/// (`n > √m`) left operands are supported natively.
pub trait TensorUnit {
    /// `√m`, the fixed operand width of the unit.
    fn sqrt_m(&self) -> usize;

    /// The model's per-invocation latency parameter ℓ.
    fn latency(&self) -> u64;

    /// Time charged for one native invocation whose left operand has
    /// `n_rows` rows (the machine guarantees `n_rows ≥ √m` for native
    /// calls, splitting beforehand when [`Self::supports_tall`] is false).
    fn invocation_cost(&self, n_rows: usize) -> u64;

    /// The latency component of [`Self::invocation_cost`] (used to meter
    /// the two terms of `O(n√m + ℓ)` separately).
    fn invocation_latency(&self, n_rows: usize) -> u64 {
        let _ = n_rows;
        self.latency()
    }

    /// Whether the unit natively streams tall left operands (the model's
    /// asymmetric feature, §3 property 3). When `false`, the machine
    /// splits an `n × √m` left operand into `⌈n/√m⌉` square tiles and
    /// issues one invocation per tile — the NVIDIA-style behaviour noted
    /// in §2.2 ("matrix B … is percolated within the array as matrix A").
    fn supports_tall(&self) -> bool {
        true
    }

    /// Hardware capacity `m = sqrt_m²`.
    fn m(&self) -> usize {
        self.sqrt_m() * self.sqrt_m()
    }
}

/// Integer square root with exactness check, for validating `m`.
///
/// Pure-integer Newton iteration — no `f64` round trip. The float trick
/// (`(m as f64).sqrt().round()`) loses integer precision once `m`
/// approaches `2^53`: the cast rounds `m` itself, so the recovered root
/// can be off by one and a genuine perfect square near the cliff gets
/// rejected (and on 32-bit targets the `s * s` check could wrap). The
/// Newton sequence below works in `u128`, converges monotonically from
/// above, and is exact for every `usize`.
///
/// # Panics
/// Panics unless `m` is a perfect square.
pub fn exact_sqrt(m: usize) -> usize {
    let s = isqrt_u128(m as u128) as usize;
    assert!(
        s.checked_mul(s) == Some(m),
        "m = {m} must be a perfect square (it is √m × √m hardware)"
    );
    s
}

/// Floor integer square root by Newton's method: `x_{k+1} = (x_k + v/x_k)/2`
/// starting above the root, strictly decreasing until it crosses it.
fn isqrt_u128(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    // Initial guess ≥ √v: 2^⌈bits/2⌉ where bits = position of the MSB.
    let bits = 128 - v.leading_zeros();
    let mut x = 1u128 << bits.div_ceil(2);
    let mut y = (x + v / x) / 2;
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// The standard (m, ℓ)-TCU cost policy: an invocation with an `n`-row left
/// operand costs exactly `n·√m + ℓ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelTensorUnit {
    sqrt_m: usize,
    latency: u64,
}

impl ModelTensorUnit {
    /// Build from the paper's parameters `(m, ℓ)`.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn new(m: usize, latency: u64) -> Self {
        assert!(m >= 1, "m must be positive");
        Self {
            sqrt_m: exact_sqrt(m),
            latency,
        }
    }

    /// Build directly from `√m`.
    #[must_use]
    pub fn from_sqrt_m(sqrt_m: usize, latency: u64) -> Self {
        assert!(sqrt_m >= 1, "sqrt_m must be positive");
        Self { sqrt_m, latency }
    }
}

impl TensorUnit for ModelTensorUnit {
    fn sqrt_m(&self) -> usize {
        self.sqrt_m
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn invocation_cost(&self, n_rows: usize) -> u64 {
        crate::cost::model_invocation_cost(n_rows as u64, self.sqrt_m as u64, self.latency)
    }
}

/// The §5 *weak* TCU: multiplies only `√m × √m` by `√m × √m`. Any tall
/// call is decomposed by the machine into square invocations, each charged
/// `m + ℓ` — which is how the weak model loses the `(n/m)·ℓ` → `(n/m)^{3/2}·ℓ`
/// latency advantage (§5: "any algorithm for the original TCU model can be
/// simulated in the weak version with a constant slowdown when ℓ = O(m)").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeakTensorUnit {
    sqrt_m: usize,
    latency: u64,
}

impl WeakTensorUnit {
    /// Build from the paper's parameters `(m, ℓ)`.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn new(m: usize, latency: u64) -> Self {
        assert!(m >= 1, "m must be positive");
        Self {
            sqrt_m: exact_sqrt(m),
            latency,
        }
    }
}

impl TensorUnit for WeakTensorUnit {
    fn sqrt_m(&self) -> usize {
        self.sqrt_m
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn invocation_cost(&self, n_rows: usize) -> u64 {
        debug_assert_eq!(n_rows, self.sqrt_m, "weak unit only takes square operands");
        crate::cost::model_invocation_cost(self.sqrt_m as u64, self.sqrt_m as u64, self.latency)
    }

    fn supports_tall(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_unit_costs() {
        let u = ModelTensorUnit::new(256, 100);
        assert_eq!(u.sqrt_m(), 16);
        assert_eq!(u.m(), 256);
        assert_eq!(u.latency(), 100);
        assert_eq!(u.invocation_cost(16), 256 + 100);
        assert_eq!(u.invocation_cost(1024), 1024 * 16 + 100);
        assert!(u.supports_tall());
    }

    #[test]
    fn weak_unit_is_square_only() {
        let u = WeakTensorUnit::new(64, 5);
        assert!(!u.supports_tall());
        assert_eq!(u.invocation_cost(8), 64 + 5);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_m_rejected() {
        let _ = ModelTensorUnit::new(200, 0);
    }

    #[test]
    fn from_sqrt_m_roundtrip() {
        let u = ModelTensorUnit::from_sqrt_m(10, 3);
        assert_eq!(u.m(), 100);
        assert_eq!(u.invocation_cost(10), 103);
    }

    #[test]
    fn exact_sqrt_handles_squares_near_2_pow_53() {
        // 94906267² = 9007199515875089 > 2^53: `(m as f64)` is no longer
        // exact here, so the old float round trip could mis-recover the
        // root. The integer Newton path must accept every true square…
        for s in [94_906_265usize, 94_906_266, 94_906_267, 1 << 31] {
            let m = s * s;
            assert_eq!(exact_sqrt(m), s, "s = {s}");
        }
        // …including the largest square representable in usize.
        let smax = usize::MAX.isqrt();
        assert_eq!(exact_sqrt(smax * smax), smax);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn exact_sqrt_rejects_neighbor_of_large_square() {
        let s = 94_906_267usize;
        let _ = exact_sqrt(s * s - 1);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn exact_sqrt_rejects_neighbor_above_large_square() {
        let s = 94_906_267usize;
        let _ = exact_sqrt(s * s + 1);
    }

    #[test]
    fn exact_sqrt_small_values() {
        for s in 0usize..=64 {
            assert_eq!(exact_sqrt(s * s), s);
        }
    }
}
