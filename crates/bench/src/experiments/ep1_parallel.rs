//! EP1 — §6 extension: parallel tensor units. Sweeps the unit count `p`
//! for the batched Theorem 2 multiplication, with and without fused
//! accumulation (the `D = A·B + C` semantics real tensor cores provide),
//! exposing the Amdahl ceiling of the serial CPU strip-summation.

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::parallel::{multiply_parallel, multiply_parallel_fused};
use tcu_core::parallel::ParallelTcuMachine;
use tcu_core::ModelTensorUnit;
use tcu_linalg::Matrix;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 2_000u64);
    let d: usize = if quick { 128 } else { 512 };
    let a = Matrix::from_fn(d, d, |i, j| ((i * 7 + j) % 11) as i64 - 5);
    let b = Matrix::from_fn(d, d, |i, j| ((i + 3 * j) % 9) as i64 - 4);

    let mut t = Table::new(
        &format!("EP1: p parallel tensor units, d={d}, m={m}, l={l} (batched Theorem 2)"),
        &[
            "p",
            "time (CPU adds serial)",
            "speedup",
            "time (fused accumulate)",
            "speedup fused",
            "utilization",
        ],
    );
    let mut base = 0u64;
    let mut base_fused = 0u64;
    for &p in &[1usize, 2, 4, 8, 16, 64, 256] {
        let mut mach = ParallelTcuMachine::new(ModelTensorUnit::new(m, l), p);
        let _ = multiply_parallel(&mut mach, &a, &b);
        let mut fmach = ParallelTcuMachine::new(ModelTensorUnit::new(m, l), p);
        let _ = multiply_parallel_fused(&mut fmach, &a, &b, true);
        if p == 1 {
            base = mach.time();
            base_fused = fmach.time();
        }
        let util = mach.tensor_work() as f64 / (p as f64 * (mach.time() as f64).max(1.0));
        t.row(vec![
            fmt_u64(p as u64),
            fmt_u64(mach.time()),
            fmt_f(base as f64 / mach.time() as f64, 2),
            fmt_u64(fmach.time()),
            fmt_f(base_fused as f64 / fmach.time() as f64, 2),
            fmt_f(util.min(1.0), 3),
        ]);
    }
    t.print();
    println!(
        "EP1: without fused accumulation the serial CPU summation caps speedup near 2x (Amdahl);\n     with the hardware's D = A·B + C semantics the batch scales to the (n/m)-call width.\n"
    );
}
