//! E7 — Theorem 7: DFT in `O((n + ℓ)·log_m n)`. Size sweep with exponent
//! fit, latency sweep showing ℓ is paid once per recursion level, and the
//! comparison against the host radix-2 FFT (`Θ(n log₂ n)`) and the direct
//! `Θ(n²)` definition.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::fft;
use tcu_algos::workloads::random_vector_c64;
use tcu_core::TcuMachine;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 2_000u64);
    let ns: &[usize] = if quick {
        &[1 << 10, 1 << 12]
    } else {
        &[1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    let mut rng = StdRng::seed_from_u64(13);

    let mut t = Table::new(
        &format!("E7: DFT, m={m}, l={l}"),
        &[
            "n",
            "time",
            "(n+l)·log_m n",
            "ratio",
            "tensor calls",
            "host fft 5n·log2 n",
            "direct n^2",
        ],
    );
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &n in ns {
        let x = random_vector_c64(n, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = fft::dft(&mut mach, &x);
        crate::report_stats(&format!("E7 dft n={n}"), &mach);
        let logm = (n as f64).ln() / (m as f64).ln();
        let bound = (n as u64 + l) as f64 * logm.max(1.0);
        measured.push(mach.time() as f64);
        predicted.push(bound);
        t.row(vec![
            fmt_u64(n as u64),
            fmt_u64(mach.time()),
            fmt_u64(bound as u64),
            fmt_f(mach.time() as f64 / bound, 3),
            fmt_u64(mach.stats().tensor_calls),
            fmt_u64(fft::fft_host_time(n as u64)),
            fmt_u64((n as u64) * (n as u64)),
        ]);
    }
    t.print();
    println!(
        "E7: measured/bound geomean = {:.3} (constant ⇒ the (n+l)·log_m n shape holds).",
        crate::geomean_ratio(&measured, &predicted)
    );

    // Latency sweep: calls (and hence the ℓ share) grow with levels, not
    // with subproblem count — the batching observation.
    let n = if quick { 1 << 12 } else { 1 << 16 };
    let mut t2 = Table::new(
        &format!("E7b: latency sweep at n={n}, m={m}"),
        &["l", "time", "tensor calls", "latency time", "latency share"],
    );
    for &l in &[0u64, 1_000, 100_000, 10_000_000] {
        let x = random_vector_c64(n, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = fft::dft(&mut mach, &x);
        t2.row(vec![
            fmt_u64(l),
            fmt_u64(mach.time()),
            fmt_u64(mach.stats().tensor_calls),
            fmt_u64(mach.stats().tensor_latency_time),
            fmt_f(
                mach.stats().tensor_latency_time as f64 / mach.time() as f64,
                4,
            ),
        ]);
    }
    t2.print();

    // Base-case ablation: the paper's remark that stopping at n ≤ m (two
    // tensor calls) is tighter than stopping at n ≤ √m.
    let mut t3 = Table::new(
        "E7c: m sweep at n=4096, l=2000 (deeper machines, fewer levels)",
        &["m", "time", "tensor calls"],
    );
    for &mm in &[16usize, 64, 256, 1024, 4096] {
        let x = random_vector_c64(4096, &mut rng);
        let mut mach = TcuMachine::model(mm, 2000);
        let _ = fft::dft(&mut mach, &x);
        t3.row(vec![
            fmt_u64(mm as u64),
            fmt_u64(mach.time()),
            fmt_u64(mach.stats().tensor_calls),
        ]);
    }
    t3.print();
    println!();
}
