//! E11 — Theorem 11: batch polynomial evaluation in
//! `O(p·n/√m + p·√m + (n/m)·ℓ)` versus Horner's `Θ(p·n)`.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use tcu_algos::poly::{batch_eval, batch_eval_time, horner_host, horner_time};
use tcu_core::TcuMachine;
use tcu_linalg::Fp61;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 5_000u64);
    let s = 16u64;
    let mut rng = StdRng::seed_from_u64(29);
    let mut rand_fp = |n: usize| -> Vec<Fp61> { (0..n).map(|_| Fp61::new(rng.gen())).collect() };

    let ns: &[usize] = if quick {
        &[1 << 10, 1 << 12]
    } else {
        &[1 << 10, 1 << 12, 1 << 14, 1 << 16]
    };
    let p = if quick { 64 } else { 256 };

    let mut t = Table::new(
        &format!("E11: batch polynomial evaluation over F_p, p={p} points, m={m}, l={l}"),
        &[
            "degree n",
            "tcu time",
            "closed form",
            "horner 2pn",
            "speedup",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let coeffs = rand_fp(n);
        let points = rand_fp(p);
        let mut mach = TcuMachine::model(m, l);
        let got = batch_eval(&mut mach, &coeffs, &points);
        assert_eq!(got, horner_host(&coeffs, &points), "n={n}");
        let closed = batch_eval_time(n as u64, p as u64, s, l);
        assert_eq!(mach.time(), closed);
        xs.push(n as f64);
        ys.push(mach.time() as f64);
        t.row(vec![
            fmt_u64(n as u64),
            fmt_u64(mach.time()),
            fmt_u64(closed),
            fmt_u64(horner_time(n as u64, p as u64)),
            fmt_f(
                horner_time(n as u64, p as u64) as f64 / mach.time() as f64,
                2,
            ),
        ]);
    }
    t.print();
    let (slope, r2) = crate::fit_loglog(&xs, &ys);
    println!(
        "E11: fitted exponent on n = {:.3} (theory 1: the p·n/√m term), r² = {:.4}; speedup tends to √m = {s}.",
        slope, r2
    );

    // Point-count sweep: the p·√m power-table term shows at small n.
    let mut t2 = Table::new(
        &format!("E11b: point sweep at degree n=4096, m={m}, l={l}"),
        &["points p", "tcu time", "horner"],
    );
    for &pp in &[16usize, 64, 256, 1024] {
        let coeffs = rand_fp(4096);
        let points = rand_fp(pp);
        let mut mach = TcuMachine::model(m, l);
        let _ = batch_eval(&mut mach, &coeffs, &points);
        t2.row(vec![
            fmt_u64(pp as u64),
            fmt_u64(mach.time()),
            fmt_u64(horner_time(4096, pp as u64)),
        ]);
    }
    t2.print();
    println!();
}
