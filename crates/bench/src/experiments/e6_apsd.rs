//! E6 — Theorem 6: Seidel's APSD in `O((n²/m)^{ω₀}(m + ℓ)·log n)`
//! (standard-recursion instance: two Theorem 2 products per squaring
//! level). Also reports the BFS-all-pairs CPU baseline.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::apsd;
use tcu_algos::workloads::random_connected_graph;
use tcu_core::TcuMachine;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 5_000u64);
    let ns: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    let mut rng = StdRng::seed_from_u64(11);

    let mut t = Table::new(
        &format!("E6: Seidel APSD, m={m}, l={l} (sparse connected graphs)"),
        &[
            "n",
            "time",
            "levels",
            "per-level MM bound",
            "bfs baseline n^3",
            "time/(MM·levels)",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let adj = random_connected_graph(n, 1.5 / n as f64, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let dist = apsd::seidel_apsd(&mut mach, &adj);
        // Sanity: oracle agreement.
        assert_eq!(dist, apsd::bfs_apsd_host(&adj), "n={n}");
        // Each level costs two rect-multiplies ≈ 2·Theorem 2 time.
        let mm = tcu_algos::dense::multiply_time(n as u64, 16, l);
        let calls_per_level = 2 * ((n as u64).div_ceil(16)).pow(2);
        let levels = mach.stats().tensor_calls / calls_per_level;
        xs.push(n as f64);
        ys.push(mach.time() as f64);
        t.row(vec![
            fmt_u64(n as u64),
            fmt_u64(mach.time()),
            fmt_u64(levels),
            fmt_u64(2 * mm),
            fmt_u64(apsd::bfs_apsd_time(n as u64)),
            fmt_f(
                mach.time() as f64 / (2.0 * mm as f64 * levels.max(1) as f64),
                3,
            ),
        ]);
    }
    t.print();
    let (slope, r2) = crate::fit_loglog(&xs, &ys);
    println!(
        "E6: fitted exponent on n = {:.3} (theory 3 + log factor), r² = {:.4}; time ≈ levels × two MM costs, as Theorem 6 predicts.\n",
        slope, r2
    );
}
