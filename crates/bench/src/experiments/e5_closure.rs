//! E5 — Theorem 5: blocked transitive closure in
//! `Θ(n³/√m + (n²/m)·ℓ + n²√m)` versus the unblocked `Θ(n³)` bit-loop.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::closure;
use tcu_algos::workloads::random_digraph;
use tcu_core::TcuMachine;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 5_000u64);
    let s = 16u64;
    let ns: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    let mut rng = StdRng::seed_from_u64(7);

    let mut t = Table::new(
        &format!("E5: transitive closure, m={m}, l={l}"),
        &[
            "n",
            "time",
            "closed form",
            "unblocked 2n^3",
            "speedup",
            "latency share",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let adj = random_digraph(n, 2.0 / n as f64, &mut rng);
        let mut d = adj.clone();
        let mut mach = TcuMachine::model(m, l);
        closure::transitive_closure(&mut mach, &mut d);
        crate::report_stats(&format!("E5 closure n={n}"), &mach);
        if crate::stats_enabled() {
            // Scheduled fast path: identical charges plus pack-cache
            // counters (one stacked-operand pack per pivot stage).
            let mut smach = TcuMachine::model(m, l);
            smach.executor_mut().enable_pack_cache(2);
            let mut sd = adj;
            closure::transitive_scheduled(&mut smach, &mut sd);
            assert_eq!(sd, d);
            assert_eq!(smach.time(), mach.time());
            crate::report_stats(&format!("E5 closure n={n} scheduled"), &smach);
        }
        let closed = closure::transitive_closure_time(n as u64, s, l);
        assert_eq!(mach.time(), closed);
        let host = closure::host_closure_time(n as u64);
        xs.push(n as f64);
        ys.push(mach.time() as f64);
        t.row(vec![
            fmt_u64(n as u64),
            fmt_u64(mach.time()),
            fmt_u64(closed),
            fmt_u64(host),
            fmt_f(host as f64 / mach.time() as f64, 2),
            fmt_f(
                mach.stats().tensor_latency_time as f64 / mach.time() as f64,
                3,
            ),
        ]);
    }
    t.print();
    let (slope, r2) = crate::fit_loglog(&xs, &ys);
    println!(
        "E5: fitted exponent on n = {:.3} (theory 3), r² = {:.4}; speedup over the unblocked loop approaches √m/(1+…) as n grows.\n",
        slope, r2
    );
}
