//! E1 — Theorem 1: a Strassen-like algorithm with parameters `(n₀, p₀)`
//! runs in `O((n/m)^{ω₀}(m + ℓ))` on the TCU. Standard recursion
//! (`ω₀ = 3/2`) vs Strassen (`ω₀ = log₄7 ≈ 1.4037`): fitted exponents on
//! the call counts, and the crossover (Strassen's base-call advantage vs
//! its 4.5× addition constant).

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::strassen;
use tcu_core::TcuMachine;
use tcu_linalg::Matrix;

fn input(d: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(d, d, |i, j| {
        ((i as i64 * 13 + j as i64 * 29 + seed) % 17) - 8
    })
}

pub fn run(quick: bool) {
    let ds: &[usize] = if quick {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let m = 256usize;

    for &l in &[0u64, 100_000] {
        let mut t = Table::new(
            &format!("E1: Strassen-like recursions, m={m}, l={l}"),
            &[
                "d",
                "standard",
                "strassen",
                "strassen/standard",
                "std calls",
                "str calls",
            ],
        );
        let mut xs = Vec::new();
        let mut std_calls = Vec::new();
        let mut str_calls = Vec::new();
        for &d in ds {
            let a = input(d, 1);
            let b = input(d, 2);
            let mut mach_s = TcuMachine::model(m, l);
            let _ = strassen::multiply_recursive(&mut mach_s, &a, &b);
            let mut mach_t = TcuMachine::model(m, l);
            let _ = strassen::multiply_strassen(&mut mach_t, &a, &b);
            crate::report_stats(&format!("E1 standard d={d} l={l}"), &mach_s);
            crate::report_stats(&format!("E1 strassen d={d} l={l}"), &mach_t);
            assert_eq!(mach_s.time(), strassen::recursive_time(d as u64, 16, l));
            assert_eq!(mach_t.time(), strassen::strassen_time(d as u64, 16, l));
            xs.push((d * d / m) as f64); // n/m
            std_calls.push(mach_s.stats().tensor_calls as f64);
            str_calls.push(mach_t.stats().tensor_calls as f64);
            t.row(vec![
                fmt_u64(d as u64),
                fmt_u64(mach_s.time()),
                fmt_u64(mach_t.time()),
                fmt_f(mach_t.time() as f64 / mach_s.time() as f64, 3),
                fmt_u64(mach_s.stats().tensor_calls),
                fmt_u64(mach_t.stats().tensor_calls),
            ]);
        }
        t.print();
        let (se, _) = crate::fit_loglog(&xs, &std_calls);
        let (te, _) = crate::fit_loglog(&xs, &str_calls);
        println!(
            "E1 fitted call-count exponents on n/m: standard {:.4} (theory 1.5), strassen {:.4} (theory log4 7 = {:.4})\n",
            se,
            te,
            (7f64).ln() / (4f64).ln()
        );
    }

    // Base-case ablation: stop at √m (paper), below it, and above it.
    let d = if quick { 128 } else { 256 };
    let a = input(d, 3);
    let b = input(d, 4);
    let mut t = Table::new(
        &format!("E1b: base-case dimension ablation (Strassen, d={d}, m={m}, l=1000)"),
        &["base dim", "time", "tensor calls"],
    );
    let mut best = (0u64, u64::MAX);
    for base in [4usize, 8, 16, 32, 64] {
        let mut mach = TcuMachine::model(m, 1000);
        let _ = strassen::multiply_strassen_with_base(&mut mach, &a, &b, base);
        if mach.time() < best.1 {
            best = (base as u64, mach.time());
        }
        t.row(vec![
            fmt_u64(base as u64),
            fmt_u64(mach.time()),
            fmt_u64(mach.stats().tensor_calls),
        ]);
    }
    t.print();
    println!(
        "E1b: best base dimension = {} (paper's rule stops at sqrt_m = 16; larger bases finish with the Theorem 2 kernel, which can shave latency).\n",
        best.0
    );
}
