//! E10 — Theorem 10: TCU-Karatsuba `O((n/(κ√m))^{log₂3}·(base))` versus
//! the Theorem 9 schoolbook, with the measured crossover and the
//! base-case-threshold ablation. A real base invocation costs `Θ(m + ℓ)`
//! — not the `√m + ℓ/√m` the paper extrapolates — which pushes the
//! crossover out and makes latency favour schoolbook streaming; both
//! effects are visible below.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::intmul::{
    mul_host, mul_tcu_karatsuba, mul_tcu_karatsuba_with_threshold, mul_tcu_schoolbook, BigNat,
};
use tcu_algos::workloads::random_limbs;
use tcu_core::TcuMachine;

pub fn run(quick: bool) {
    let m = 256usize;
    let s = 16usize;
    let limb_counts: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 16384, 65536]
    };
    let mut rng = StdRng::seed_from_u64(23);

    for &l in &[0u64, 100_000] {
        let mut t = Table::new(
            &format!("E10: Karatsuba vs schoolbook on the TCU, m={m}, l={l}"),
            &[
                "limbs",
                "schoolbook",
                "karatsuba (tuned)",
                "karatsuba (paper th=sqrt_m)",
                "tuned/school",
            ],
        );
        for &limbs in limb_counts {
            let a = BigNat::from_limbs(random_limbs(limbs, &mut rng));
            let b = BigNat::from_limbs(random_limbs(limbs, &mut rng));
            let mut school = TcuMachine::model(m, l);
            let want = mul_tcu_schoolbook(&mut school, &a, &b);
            assert_eq!(want, mul_host(&a, &b));
            let mut kara = TcuMachine::model(m, l);
            let got = mul_tcu_karatsuba(&mut kara, &a, &b);
            assert_eq!(got, want);
            let mut kara_paper = TcuMachine::model(m, l);
            let _ = mul_tcu_karatsuba_with_threshold(&mut kara_paper, &a, &b, s);
            t.row(vec![
                fmt_u64(limbs as u64),
                fmt_u64(school.time()),
                fmt_u64(kara.time()),
                fmt_u64(kara_paper.time()),
                fmt_f(kara.time() as f64 / school.time() as f64, 3),
            ]);
        }
        t.print();
    }
    println!(
        "E10: at l=0 the tuned Karatsuba crosses below schoolbook once (4/3)^(log2(n'/th)) outgrows\n     the base constant; at large l schoolbook wins outright (2^t·l/sqrt_m vs 3^t·l latency)."
    );

    // Threshold ablation at a fixed size.
    let limbs = if quick { 1024 } else { 8192 };
    let a = BigNat::from_limbs(random_limbs(limbs, &mut rng));
    let b = BigNat::from_limbs(random_limbs(limbs, &mut rng));
    let mut t2 = Table::new(
        &format!("E10b: Karatsuba base-threshold ablation, limbs={limbs}, m={m}, l=0"),
        &["threshold (limbs)", "time"],
    );
    let mut best = (0u64, u64::MAX);
    for th in [s, 2 * s, 4 * s, 8 * s, 16 * s, 32 * s, 64 * s] {
        let mut mach = TcuMachine::model(m, 0);
        let _ = mul_tcu_karatsuba_with_threshold(&mut mach, &a, &b, th);
        if mach.time() < best.1 {
            best = (th as u64, mach.time());
        }
        t2.row(vec![fmt_u64(th as u64), fmt_u64(mach.time())]);
    }
    t2.print();
    println!(
        "E10b: best threshold = {} limbs (paper's sqrt_m = {s}).\n",
        best.0
    );
}
