//! E2r — Corollary 1: `√n × r` times `r × √n` multiplies in
//! `Θ(rn/√m + (r√n/m)·ℓ)`. Sweeps the aspect ratio `r/√n` and checks the
//! measured time against the corollary's closed form.

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::dense;
use tcu_core::TcuMachine;
use tcu_linalg::Matrix;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 5_000u64);
    let s = 16u64;
    let d: usize = if quick { 128 } else { 512 };

    let mut t = Table::new(
        &format!("E2r: rectangular (d x r)·(r x d), d={d}, m={m}, l={l}"),
        &["r", "time", "corollary bound", "ratio", "tensor calls"],
    );
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &r in &[d / 8, d / 4, d / 2, d, 2 * d] {
        let a = Matrix::from_fn(d, r, |i, j| ((i * 3 + j) % 7) as i64 - 3);
        let b = Matrix::from_fn(r, d, |i, j| ((i + 5 * j) % 9) as i64 - 4);
        let mut mach = TcuMachine::model(m, l);
        let _ = dense::multiply_rect(&mut mach, &a, &b);
        // Corollary 1: r·n/√m + (r√n/m)·ℓ with n = d².
        let bound =
            (r as u64) * (d as u64) * (d as u64) / s + (r as u64) * (d as u64) / (m as u64) * l;
        measured.push(mach.time() as f64);
        predicted.push(bound as f64);
        t.row(vec![
            fmt_u64(r as u64),
            fmt_u64(mach.time()),
            fmt_u64(bound),
            fmt_f(mach.time() as f64 / bound as f64, 3),
            fmt_u64(mach.stats().tensor_calls),
        ]);
    }
    t.print();
    println!(
        "E2r: geometric-mean measured/bound = {:.3} (constant across aspect ratios ⇒ the corollary's shape holds)\n",
        crate::geomean_ratio(&measured, &predicted)
    );
}
