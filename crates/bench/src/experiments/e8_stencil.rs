//! E8 — Theorem 8: a linear `(n, k)`-stencil in
//! `O(n·log_m k + ℓ·log k)` versus the direct `Θ(n·k)` sweeps. Sweeps `k`
//! at fixed grid size to locate the crossover, and splits the cost into
//! the Lemma 2 (weight construction) and Lemma 1 (application) phases.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::stencil::{run_direct, run_tcu_with_weights, weight_matrix, StencilWeights};
use tcu_algos::workloads::random_grid;
use tcu_core::TcuMachine;
use tcu_linalg::ops::max_abs_diff;

pub fn run(quick: bool) {
    let m = 4096usize;
    let l = 1_000u64;
    let d: usize = if quick { 64 } else { 256 };
    let ks: &[usize] = if quick {
        &[4, 16, 64]
    } else {
        &[4, 16, 64, 128, 256]
    };
    let w = StencilWeights::heat(0.1, 0.1);
    let mut rng = StdRng::seed_from_u64(17);
    let grid = random_grid(d, &mut rng);

    let mut t = Table::new(
        &format!(
            "E8: (n,k)-stencil, grid {d}x{d} (n = {}), m={m}, l={l}",
            d * d
        ),
        &[
            "k",
            "lemma2 (weights)",
            "lemma1 (apply)",
            "tcu total",
            "direct n·k",
            "speedup",
            "max err",
        ],
    );
    for &k in ks {
        if !d.is_multiple_of(k) {
            continue;
        }
        let mut wm = TcuMachine::model(m, l);
        let wk = weight_matrix(&mut wm, &w, k);
        let mut am = TcuMachine::model(m, l);
        let tcu = run_tcu_with_weights(&mut am, &grid, &wk, k);
        let mut dm = TcuMachine::model(m, l);
        let direct = run_direct(&mut dm, &grid, &w, k);
        let total = wm.time() + am.time();
        t.row(vec![
            fmt_u64(k as u64),
            fmt_u64(wm.time()),
            fmt_u64(am.time()),
            fmt_u64(total),
            fmt_u64(dm.time()),
            fmt_f(dm.time() as f64 / total as f64, 3),
            format!("{:.1e}", max_abs_diff(&tcu, &direct)),
        ]);
    }
    t.print();
    println!(
        "E8: the application phase grows ~n·log_m k while direct grows n·k, so the speedup\n    column increases with k; weight construction (ℓ·log k + k²·log_m k) amortizes\n    across grids sharing the same stencil.\n"
    );
}
