//! E2 — Theorem 2: blocked dense multiplication runs in
//! `Θ(n^{3/2}/√m + (n/m)·ℓ)` (`n = d²`), and the tall-operand streaming
//! is what keeps the latency term at `(n/m)·ℓ`: the square-call ablation
//! (naive order) and the weak machine both degrade it to `(n/m)^{3/2}·ℓ`.

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::dense;
use tcu_core::TcuMachine;
use tcu_linalg::Matrix;

fn input(d: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(d, d, |i, j| {
        ((i as i64 * 37 + j as i64 * 11 + seed) % 23) - 11
    })
}

pub fn run(quick: bool) {
    let ds: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let (m, l) = (256usize, 10_000u64);
    let s = 16u64;

    let mut t = Table::new(
        &format!("E2: dense d x d multiply, m={m}, l={l} (predicted exponent on d: 3)"),
        &[
            "d",
            "time",
            "predicted",
            "ratio",
            "tensor calls",
            "latency share",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &d in ds {
        let a = input(d, 1);
        let b = input(d, 2);
        let mut mach = TcuMachine::model(m, l);
        let _ = dense::multiply(&mut mach, &a, &b);
        crate::report_stats(&format!("E2 dense d={d}"), &mach);
        let predicted = dense::multiply_time(d as u64, s, l);
        assert_eq!(mach.time(), predicted, "exact closed form");
        xs.push(d as f64);
        ys.push(mach.time() as f64);
        t.row(vec![
            fmt_u64(d as u64),
            fmt_u64(mach.time()),
            fmt_u64(predicted),
            fmt_f(mach.time() as f64 / predicted as f64, 3),
            fmt_u64(mach.stats().tensor_calls),
            fmt_f(
                mach.stats().tensor_latency_time as f64 / mach.time() as f64,
                3,
            ),
        ]);
    }
    t.print();
    let (slope, r2) = crate::fit_loglog(&xs, &ys);
    println!(
        "E2 fitted exponent on d: {:.3} (theory → 3 as the n^{{3/2}} term dominates; latency flattens it at small d), r² = {:.4}\n",
        slope, r2
    );

    // Latency ablation at fixed size: Theorem 2 order vs naive order vs
    // weak machine.
    let d = if quick { 128 } else { 512 };
    let mut t2 = Table::new(
        &format!("E2b: latency ablation at d={d}, m={m} (who pays l how often)"),
        &[
            "l",
            "thm2 (tall A)",
            "naive order",
            "weak machine",
            "thm2 latency calls",
        ],
    );
    for &l in &[0u64, 1_000, 100_000, 10_000_000] {
        let a = input(d, 3);
        let b = input(d, 4);
        let mut fast = TcuMachine::model(m, l);
        let _ = dense::multiply(&mut fast, &a, &b);
        let mut naive = TcuMachine::model(m, l);
        let _ = dense::multiply_naive_order(&mut naive, &a, &b);
        let mut weak = TcuMachine::weak(m, l);
        let _ = dense::multiply(&mut weak, &a, &b);
        t2.row(vec![
            fmt_u64(l),
            fmt_u64(fast.time()),
            fmt_u64(naive.time()),
            fmt_u64(weak.time()),
            fmt_u64(fast.stats().tensor_calls),
        ]);
    }
    t2.print();

    // Optimality floor: time ≥ d³/√m (semiring lower bound, Theorem 2).
    let d = ds[ds.len() - 1];
    let a = input(d, 5);
    let b = input(d, 6);
    let mut mach = TcuMachine::model(m, 0);
    let _ = dense::multiply(&mut mach, &a, &b);
    let floor = (d as u64).pow(3) / s;
    println!(
        "E2c: semiring floor d³/√m = {} ≤ measured {} ≤ 2·floor = {}  [{}]\n",
        fmt_u64(floor),
        fmt_u64(mach.time()),
        fmt_u64(2 * floor),
        if mach.time() >= floor && mach.time() <= 2 * floor {
            "WITHIN 2x OF OPTIMAL"
        } else {
            "CHECK"
        }
    );
}
