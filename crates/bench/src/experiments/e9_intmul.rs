//! E9 — Theorem 9: schoolbook long-integer multiplication on the tensor
//! unit in `O(n²/(κ²√m) + n·ℓ/(κ·m))` bits (limbs: `n′²/√m + (n′/m)·ℓ`).
//! Size sweep with exponent fit against the host schoolbook baseline.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::intmul::{mul_host, mul_host_time, mul_tcu_schoolbook, BigNat, LIMB_BITS};
use tcu_algos::workloads::random_limbs;
use tcu_core::TcuMachine;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 5_000u64);
    let s = 16u64;
    let limb_counts: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096, 16384]
    };
    let mut rng = StdRng::seed_from_u64(19);

    let mut t = Table::new(
        &format!("E9: schoolbook integer multiply on the TCU, m={m}, l={l}"),
        &[
            "bits",
            "limbs n'",
            "tcu time",
            "thm9 bound",
            "ratio",
            "host schoolbook",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &limbs in limb_counts {
        let a = BigNat::from_limbs(random_limbs(limbs, &mut rng));
        let b = BigNat::from_limbs(random_limbs(limbs, &mut rng));
        let mut mach = TcuMachine::model(m, l);
        let got = mul_tcu_schoolbook(&mut mach, &a, &b);
        assert_eq!(got, mul_host(&a, &b), "limbs={limbs}");
        let np = limbs as u64;
        let bound = np * np / s + np / (m as u64) * l;
        xs.push(np as f64);
        ys.push(mach.time() as f64);
        t.row(vec![
            fmt_u64(np * u64::from(LIMB_BITS)),
            fmt_u64(np),
            fmt_u64(mach.time()),
            fmt_u64(bound),
            fmt_f(mach.time() as f64 / bound as f64, 3),
            fmt_u64(mul_host_time(np, np)),
        ]);
    }
    t.print();
    let (slope, r2) = crate::fit_loglog(&xs, &ys);
    println!(
        "E9: fitted exponent on n' = {:.3} (theory 2: the n'²/√m term), r² = {:.4}; the TCU beats the host CPU baseline by ≈√m once streaming dominates.\n",
        slope, r2
    );
}
