//! EP2 — §6 extension: limited numerical precision. The same generic
//! Theorem 2 multiplication run over fp16-emulating [`Half`] operands vs
//! `f64`, measuring relative error growth with problem size — the
//! quantity the model would need to track to answer the paper's "to what
//! extent do [low-precision units] affect TCU algorithm design?".

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use tcu_algos::dense;
use tcu_core::TcuMachine;
use tcu_linalg::{Half, Matrix};

pub fn run(quick: bool) {
    let m = 256usize;
    let ds: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let mut rng = StdRng::seed_from_u64(31);

    let mut t = Table::new(
        &format!("EP2: fp16-operand multiplication error vs f64 reference, m={m}"),
        &[
            "d",
            "max rel error",
            "mean rel error",
            "err/sqrt(d)",
            "ulp16 = 2^-11",
        ],
    );
    for &d in ds {
        let af = Matrix::from_fn(d, d, |_, _| rng.gen_range(-1.0..1.0f64));
        let bf = Matrix::from_fn(d, d, |_, _| rng.gen_range(-1.0..1.0f64));
        let ah = af.map(Half::new);
        let bh = bf.map(Half::new);

        let mut mach = TcuMachine::model(m, 0);
        let exact = dense::multiply_rect(&mut mach, &af, &bf);
        let mut mach_h = TcuMachine::model(m, 0);
        let approx = dense::multiply_rect(&mut mach_h, &ah, &bh);

        let mut max_rel = 0.0f64;
        let mut sum_rel = 0.0f64;
        let scale: f64 = exact
            .as_slice()
            .iter()
            .fold(0.0f64, |acc, &x| acc.max(x.abs()))
            .max(1e-30);
        for (e, h) in exact.as_slice().iter().zip(approx.as_slice()) {
            let rel = (e - h.value()).abs() / scale;
            max_rel = max_rel.max(rel);
            sum_rel += rel;
        }
        let mean_rel = sum_rel / (d * d) as f64;
        t.row(vec![
            fmt_u64(d as u64),
            format!("{max_rel:.2e}"),
            format!("{mean_rel:.2e}"),
            fmt_f(max_rel / (d as f64).sqrt() * 2048.0, 3),
            format!("{:.2e}", 2.0f64.powi(-11)),
        ]);
    }
    t.print();
    println!(
        "EP2: relative-to-output error sits at ~2 ulp16 across sizes — input quantization\n     dominates and the sqrt(d) accumulation walk is absorbed by the output's own sqrt(d)\n     growth. The practical fp16 hazard in this regime is range (HALF_MAX = 65504), not\n     relative drift; exact integer/F_p workloads (closure, APSD, Thms 9/11) are unaffected\n     by construction. This quantifies the paper's §6 precision question.\n"
    );
}
