//! F1 — §2.2 / Figure 1: cycle-level behaviour of the weight-stationary
//! systolic array. Validates the load/stream/total closed forms against
//! the step-by-step simulation, the per-output exit times, and the
//! amortization of tall streaming (the hardware fact behind the model's
//! asymmetric feature).

use crate::{fmt_f, fmt_u64, Table};
use tcu_linalg::Matrix;
use tcu_systolic::{multiply_cycles, percolating_multiply_cycles, SystolicArray};

pub fn run(quick: bool) {
    let ms: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024, 4096]
    };

    let mut t = Table::new(
        "F1: systolic array cycles (square multiply; counted vs closed form 4√m − 2)",
        &[
            "m",
            "sqrt_m",
            "counted",
            "closed",
            "paper 3√m stream",
            "MACs",
            "MACs/step",
        ],
    );
    for &m in ms {
        let s = (m as f64).sqrt() as usize;
        let a = Matrix::from_fn(s, s, |i, j| ((i * 31 + j * 7) % 13) as i64 - 6);
        let b = Matrix::from_fn(s, s, |i, j| ((i + 3 * j) % 9) as i64 - 4);
        let mut arr = SystolicArray::new(s);
        let (_, rep) = arr.multiply(&a, &b);
        assert_eq!(arr.cycles(), multiply_cycles(s, s), "closed form must hold");
        t.row(vec![
            fmt_u64(m as u64),
            fmt_u64(s as u64),
            fmt_u64(arr.cycles()),
            fmt_u64(multiply_cycles(s, s)),
            fmt_u64(3 * s as u64 - 2),
            fmt_u64(rep.mac_ops),
            fmt_f(rep.mac_ops as f64 / rep.stream_steps as f64, 1),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "F1b: tall streaming vs per-tile percolation (n rows through √m × √m weights)",
        &[
            "sqrt_m",
            "n/sqrt_m",
            "stationary cycles",
            "percolating cycles",
            "ratio",
        ],
    );
    for &m in ms {
        let s = (m as f64).sqrt() as usize;
        for mult in [1usize, 4, 16] {
            let n = mult * s;
            let stationary = tcu_systolic::cpu_time(n, s);
            let percolating = percolating_multiply_cycles(n, s);
            t2.row(vec![
                fmt_u64(s as u64),
                fmt_u64(mult as u64),
                fmt_u64(stationary),
                fmt_u64(percolating),
                fmt_f(percolating as f64 / stationary as f64, 2),
            ]);
        }
    }
    t2.print();

    // Output-timing check on one configuration: c_{r,j} leaves at
    // streaming step r + j + √m − 1 (paper: √m + i + j).
    let s = 8;
    let a = Matrix::from_fn(2 * s, s, |i, j| (i + j) as i64);
    let b = Matrix::<i64>::identity(s);
    let mut arr = SystolicArray::new(s);
    let (_, rep) = arr.multiply(&a, &b);
    let ok =
        (0..2 * s).all(|r| (0..s).all(|j| rep.output_step[r * s + j] == (r + j + s - 1) as u64));
    println!(
        "F1c: output c[r][j] exits at step r + j + sqrt_m - 1: {}",
        if ok { "VERIFIED" } else { "FAILED" }
    );
    println!();
}
