//! E4 — Theorem 4: blocked Gaussian elimination in
//! `Θ(n^{3/2}/√m + (n/m)·ℓ + n·√m)`, matching the dense-multiplication
//! cost once `√n ≥ m`. Sweeps the system size against the exact closed
//! form, the unblocked CPU baseline, and the Theorem 2 reference.

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::gauss;
use tcu_core::TcuMachine;
use tcu_linalg::decomp::{augmented_from, diag_dominant};

pub fn run(quick: bool) {
    let (m, l) = (64usize, 5_000u64);
    let s = 8u64;
    let ds: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };

    let mut t = Table::new(
        &format!("E4: blocked GE forward phase, m={m}, l={l}"),
        &[
            "d=sqrt(n)",
            "time",
            "closed form",
            "unblocked (3 ops/iter)",
            "thm2 MM time",
            "GE/MM",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &d in ds {
        let a = diag_dominant(d - 1, d as u64);
        let b: Vec<f64> = (0..d - 1).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut c = augmented_from(&a, &b);
        let mut mach = TcuMachine::model(m, l);
        gauss::ge_forward(&mut mach, &mut c);
        crate::report_stats(&format!("E4 gauss d={d}"), &mach);
        if crate::stats_enabled() {
            // The scheduled fast path charges identically; its summary
            // line adds the pack-cache counters (each stage's pivot
            // panel packed once, re-streamed per block column).
            let mut smach = TcuMachine::model(m, l);
            smach.executor_mut().enable_pack_cache(2);
            let mut sc = augmented_from(&a, &b);
            gauss::eliminate_scheduled(&mut smach, &mut sc);
            assert_eq!(smach.time(), mach.time());
            crate::report_stats(&format!("E4 gauss d={d} scheduled"), &smach);
        }
        let closed = gauss::ge_forward_time(d as u64, s, l);
        assert_eq!(mach.time(), closed);
        // Unblocked Figure 2 charge: 3 ops per inner iteration.
        let mut unblocked = 0u64;
        for k in 0..d as u64 - 2 {
            unblocked += 3 * (d as u64 - 2 - k) * (d as u64 - 1 - k);
        }
        let mm = tcu_algos::dense::multiply_time(d as u64, s, l);
        xs.push(d as f64);
        ys.push(mach.time() as f64);
        t.row(vec![
            fmt_u64(d as u64),
            fmt_u64(mach.time()),
            fmt_u64(closed),
            fmt_u64(unblocked),
            fmt_u64(mm),
            fmt_f(mach.time() as f64 / mm as f64, 3),
        ]);
    }
    t.print();
    let (slope, r2) = crate::fit_loglog(&xs, &ys);
    println!(
        "E4: fitted exponent on d = {:.3} (theory 3 = the n^{{3/2}} term), r² = {:.4};\n    GE/MM ratio approaches a constant — Theorem 4's \"reduces to the optimal multiplication cost when sqrt(n) >= m\".\n",
        slope, r2
    );
}
