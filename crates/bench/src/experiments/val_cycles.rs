//! VAL — model-validation ablation: the same algorithm costed by the
//! abstract `n√m + ℓ` charge versus the counted systolic-array schedule
//! (`2n√m + m + 2√m − 2` per invocation). If the (m, ℓ)-TCU model is a
//! faithful abstraction of the hardware, the two runtimes must differ by
//! a bounded constant once ℓ is set to the hardware's effective latency —
//! which is what the table shows.

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::dense;
use tcu_core::TcuMachine;
use tcu_linalg::Matrix;
use tcu_systolic::SystolicTensorUnit;

pub fn run(quick: bool) {
    let ds: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    let m = 256usize;
    let eff_l = SystolicTensorUnit::new(m).effective_latency();

    let mut t = Table::new(
        &format!("VAL: model charge vs counted systolic cycles, m={m} (model l set to hardware's {eff_l})"),
        &["d", "model time", "systolic time", "systolic/model", "calls"],
    );
    let mut ratios = Vec::new();
    for &d in ds {
        let a = Matrix::from_fn(d, d, |i, j| ((i * 3 + j * 5) % 15) as i64 - 7);
        let b = Matrix::from_fn(d, d, |i, j| ((2 * i + j) % 9) as i64 - 4);

        let mut model = TcuMachine::model(m, eff_l);
        let _ = dense::multiply(&mut model, &a, &b);
        let mut cyc = TcuMachine::new(SystolicTensorUnit::new(m));
        let _ = dense::multiply(&mut cyc, &a, &b);
        let ratio = cyc.time() as f64 / model.time() as f64;
        ratios.push(ratio);
        t.row(vec![
            fmt_u64(d as u64),
            fmt_u64(model.time()),
            fmt_u64(cyc.time()),
            fmt_f(ratio, 4),
            fmt_u64(model.stats().tensor_calls),
        ]);
    }
    t.print();
    println!(
        "VAL: ratio stays in [{:.3}, {:.3}] — bounded constant (→ ~1.5–2: the hardware writes\n     outputs in addition to the model's single n√m read term), validating the O(n√m + ℓ) charge.\n",
        ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
}
