//! One module per experiment in `DESIGN.md`'s index. Each exposes
//! `run(quick: bool)`: `quick` shrinks the sweeps for smoke tests; the
//! full sweeps are what `EXPERIMENTS.md` records.

pub mod e10_karatsuba;
pub mod e11_poly;
pub mod e12_extmem;
pub mod e1_strassen;
pub mod e2_dense;
pub mod e2_rect;
pub mod e3_sparse;
pub mod e4_gauss;
pub mod e5_closure;
pub mod e6_apsd;
pub mod e7_dft;
pub mod e8_stencil;
pub mod e9_intmul;
pub mod ep1_parallel;
pub mod ep2_precision;
pub mod f1_systolic;
pub mod val_cycles;

/// Run every experiment in index order (the `run_all` binary).
pub fn run_all(quick: bool) {
    f1_systolic::run(quick);
    e1_strassen::run(quick);
    e2_dense::run(quick);
    e2_rect::run(quick);
    e3_sparse::run(quick);
    e4_gauss::run(quick);
    e5_closure::run(quick);
    e6_apsd::run(quick);
    e7_dft::run(quick);
    e8_stencil::run(quick);
    e9_intmul::run(quick);
    e10_karatsuba::run(quick);
    e11_poly::run(quick);
    e12_extmem::run(quick);
    val_cycles::run(quick);
    ep1_parallel::run(quick);
    ep2_precision::run(quick);
}
