//! E12 — §5 / Theorem 12: the weak-TCU ↔ external-memory correspondence.
//! A weak-TCU dense-multiplication trace is replayed as I/Os with
//! `M = 3m`, `B = 1`; the replay must be `Θ(time)`, stay above the
//! Hong–Kung lower bound, and track the blocked EM algorithm's measured
//! I/O count across `m = M/3` sweeps.

use crate::{fmt_f, fmt_u64, Table};
use tcu_algos::dense;
use tcu_core::TcuMachine;
use tcu_extmem::{mm, replay_trace_detailed};
use tcu_linalg::Matrix;

pub fn run(quick: bool) {
    let d: usize = if quick { 64 } else { 256 };
    let ms: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };

    let mut t = Table::new(
        &format!("E12: weak-TCU time vs external-memory I/Os, dense {d}x{d} multiply, l=0"),
        &[
            "m (M=3m)",
            "weak time",
            "replayed I/Os",
            "I/Os/time",
            "EM blocked (LRU sim)",
            "Hong-Kung LB",
        ],
    );
    for &m in ms {
        let a = Matrix::from_fn(d, d, |i, j| ((i * 5 + j) % 13) as i64 - 6);
        let b = Matrix::from_fn(d, d, |i, j| ((i + 7 * j) % 11) as i64 - 5);
        let mut weak = TcuMachine::weak(m, 0);
        weak.enable_trace();
        let _ = dense::multiply(&mut weak, &a, &b);
        let trace = weak.take_trace();
        let replay = replay_trace_detailed(&trace, weak.sqrt_m());
        let em_sim = if d <= 128 || m <= 256 {
            mm::blocked_mm_io(d, 3 * m, 1)
        } else {
            mm::blocked_mm_io_bound(d as u64, 3 * m as u64, 1)
        };
        let lb = mm::mm_io_lower_bound(d as u64, 3 * m as u64, 1);
        assert!(replay.total() >= lb, "Theorem 12 contrapositive must hold");
        t.row(vec![
            fmt_u64(m as u64),
            fmt_u64(weak.time()),
            fmt_u64(replay.total()),
            fmt_f(replay.total() as f64 / weak.time() as f64, 3),
            fmt_u64(em_sim),
            fmt_u64(lb),
        ]);
    }
    t.print();
    println!(
        "E12: I/Os per weak-TCU time unit is a constant (Theorem 12's O(T) simulation);\n     both the replay and the EM blocked algorithm scale as d³/√M, bounded below by Hong–Kung.\n"
    );
}
