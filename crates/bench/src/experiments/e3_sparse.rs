//! E3 — Theorem 3: output-sensitive sparse multiplication in
//! `O(√(n/Z)·(Z/m)^{ω₀}(m + ℓ) + I)`. Sweeps the output size `Z` (via
//! the number of active rows/columns) at fixed dimension, and the input
//! size `I` at fixed `Z`, and compares against the dense Theorem 2 cost.

use crate::{fmt_f, fmt_u64, Table};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::sparse::{multiply_host, multiply_tcu, CsrMatrix};
use tcu_algos::workloads::random_sparse_pair;
use tcu_core::TcuMachine;

pub fn run(quick: bool) {
    let (m, l) = (256usize, 5_000u64);
    let d: usize = if quick { 128 } else { 512 };
    let mut rng = StdRng::seed_from_u64(42);

    let mut t = Table::new(
        &format!("E3: sparse multiply, d={d}, m={m}, l={l} — Z sweep (active rows/cols)"),
        &[
            "active",
            "Z (nnz C)",
            "I (nnz in)",
            "tcu time",
            "thm3 bound",
            "ratio",
            "dense time",
        ],
    );
    let actives: &[usize] = if quick {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let mut measured = Vec::new();
    let mut bounds = Vec::new();
    for &active in actives {
        let (da, db) = random_sparse_pair(d, active, active, 8, &mut rng);
        let a = CsrMatrix::from_dense(&da);
        let b = CsrMatrix::from_dense(&db);
        let (host, _) = multiply_host(&a, &b);
        let z = host.nnz().max(1) as u64;
        let i_nnz = (a.nnz() + b.nnz()) as u64;
        let mut mach = TcuMachine::model(m, l);
        let got = multiply_tcu(&mut mach, &a, &b);
        // The Strassen path leaves epsilon residues on exact zeros, so
        // compare support above a tolerance.
        assert_eq!(
            got.nnz_above(1e-9),
            host.nnz_above(1e-9),
            "output support must match the host SpGEMM"
        );
        // Theorem 3 with the standard recursion (ω₀ = 3/2):
        // √(n/Z)·(Z/m)^{3/2}·(m + ℓ) + I, n = d².
        let zf = z as f64;
        let bound =
            ((d as f64) / zf.sqrt()) * (zf / m as f64).powf(1.5).max(1.0) * (m as u64 + l) as f64
                + i_nnz as f64;
        let dense_cost = tcu_algos::dense::multiply_time(d as u64, 16, l);
        measured.push(mach.time() as f64);
        bounds.push(bound);
        t.row(vec![
            fmt_u64(active as u64),
            fmt_u64(z),
            fmt_u64(i_nnz),
            fmt_u64(mach.time()),
            fmt_u64(bound as u64),
            fmt_f(mach.time() as f64 / bound, 3),
            fmt_u64(dense_cost),
        ]);
    }
    t.print();
    println!(
        "E3: measured/bound geomean = {:.3}; sparse time stays orders below the dense cost until the output fills up.\n",
        crate::geomean_ratio(&measured, &bounds)
    );

    // I sweep at fixed output support: the +I term.
    let mut t2 = Table::new(
        &format!("E3b: input-size sweep at fixed active=8, d={d} (the +I term)"),
        &["nnz/line", "I", "tcu time"],
    );
    for &per in &[2usize, 8, 32, 128] {
        let (da, db) = random_sparse_pair(d, 8, 8, per, &mut rng);
        let a = CsrMatrix::from_dense(&da);
        let b = CsrMatrix::from_dense(&db);
        let mut mach = TcuMachine::model(m, l);
        let _ = multiply_tcu(&mut mach, &a, &b);
        t2.row(vec![
            fmt_u64(per as u64),
            fmt_u64((a.nnz() + b.nnz()) as u64),
            fmt_u64(mach.time()),
        ]);
    }
    t2.print();
}
