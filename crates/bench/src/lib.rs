//! # tcu-bench — experiment harness for the TCU reproduction
//!
//! Shared plumbing for the `exp_*` binaries (one per paper claim — see
//! `DESIGN.md`'s per-experiment index): aligned table rendering, log-log
//! slope fitting (the scaling-exponent check every theorem-validation
//! experiment performs), and geometric-mean ratio summaries.
//!
//! Every binary prints its table to stdout; `EXPERIMENTS.md` is a
//! snapshot of those outputs with commentary. All workloads are seeded,
//! so reruns reproduce the tables bit-for-bit.

pub mod experiments;

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by [`experiment_main`] when `--stats` (or `TCU_STATS=1`) asks
/// for per-machine summaries; read by [`report_stats`].
static STATS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Shared CLI entry point for every experiment binary: parses the flags
/// the harness supports (`--quick`, the reduced smoke-test sweep;
/// `--stats`, per-machine [`tcu_core::StatsSummary`] lines) and invokes
/// the experiment. The `exp_*` binaries and `run_all` are one-line
/// wrappers over this, so flag handling and any future harness plumbing
/// live in exactly one place.
pub fn experiment_main(run: fn(bool)) {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--stats") || std::env::var_os("TCU_STATS").is_some() {
        STATS_ENABLED.store(true, Ordering::Relaxed);
    }
    run(quick);
}

/// `true` when the harness was asked for per-machine stats summaries.
#[must_use]
pub fn stats_enabled() -> bool {
    STATS_ENABLED.load(Ordering::Relaxed)
}

/// Print `mach`'s [`tcu_core::StatsSummary`] under `label` when the
/// binary ran with `--stats` (or `TCU_STATS=1`); no-op otherwise.
/// Experiments call this after each workload, which is how scheduler
/// wins (fewer invocations, fewer charged rows) become visible in any
/// `exp_*` table without changing the tables themselves.
pub fn report_stats<U: tcu_core::TensorUnit, E: tcu_core::Executor>(
    label: &str,
    mach: &tcu_core::TcuMachine<U, E>,
) {
    if stats_enabled() {
        println!("[stats] {label}: {}", mach.stats_summary());
        if let Some(t) = mach.trace_log() {
            println!("[stats] {label}: {}", t.summary());
        }
    }
}

/// [`report_stats`] for a [`tcu_core::ParallelTcuMachine`]: the summed
/// per-unit [`tcu_core::StatsSummary`], the machine's
/// [`tcu_core::FaultStats`] when any recovery happened, and the trace
/// summary when tracing is on — so pack-cache and fault lines print in
/// one uniform format for every experiment case.
pub fn report_parallel_stats<U: tcu_core::TensorUnit, E: tcu_core::Executor>(
    label: &str,
    mach: &tcu_core::ParallelTcuMachine<U, E>,
) {
    if stats_enabled() {
        println!("[stats] {label}: {}", mach.stats_summary());
        if mach.fault_stats().any() {
            println!("[stats] {label}: {}", mach.fault_stats());
        }
        if let Some(t) = mach.trace_log() {
            println!("[stats] {label}: {}", t.summary());
        }
    }
}

/// Best-of-3-runs wall-clock of `f` in ns per call, after one warmup
/// call (the minimum filters scheduler noise on shared machines). The
/// one timing methodology every wall-clock bench bin uses, so a change
/// here changes them all consistently.
pub fn time_ns<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    std::hint::black_box(f());
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(reps));
    }
    best
}

/// Paired wall-clock of two rivals in ns per call, for cases whose
/// *ratio* is the reported number (eager vs scheduled). Rounds
/// interleave the rivals — `a b`, `b a`, `a b`, … — so a
/// frequency-drift or noisy-neighbour episode lands on both sides
/// instead of whichever rival happened to own that window (which is
/// what makes a ratio of two separate [`time_ns`] calls swing ±10% on
/// shared machines), and the slot *order* flips each round because an
/// identical-workload A/B on this class of box shows the first slot of
/// a pair measuring 1–3% slower than the second. Each side reports its
/// best round, like [`time_ns`].
pub fn time_pair_ns<RA, RB>(
    reps: u32,
    mut a: impl FnMut() -> RA,
    mut b: impl FnMut() -> RB,
) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    std::hint::black_box(a());
    std::hint::black_box(b());
    let mut time_a = |best: &mut f64| {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(a());
        }
        *best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(reps));
    };
    let mut time_b = |best: &mut f64| {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(b());
        }
        *best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(reps));
    };
    for round in 0..6 {
        if round % 2 == 0 {
            time_a(&mut best_a);
            time_b(&mut best_b);
        } else {
            time_b(&mut best_b);
            time_a(&mut best_a);
        }
    }
    (best_a, best_b)
}

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title line and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Least-squares fit of `ln y = slope·ln x + intercept`; returns
/// `(slope, r²)`. The slope is the empirical scaling exponent compared
/// against each theorem's predicted exponent.
///
/// # Panics
/// Panics unless `xs` and `ys` have equal length ≥ 2 and positive values.
#[must_use]
pub fn fit_loglog(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "log-log fit needs positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let slope = sxy / sxx;
    // r².
    let syy: f64 = ly.iter().map(|&y| (y - my) * (y - my)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, r2)
}

/// Geometric mean of `measured/predicted` ratios — the "fitted constant"
/// reported next to each theorem's closed form.
///
/// # Panics
/// Panics on empty or non-positive input.
#[must_use]
pub fn geomean_ratio(measured: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(measured.len(), predicted.len());
    assert!(!measured.is_empty());
    let s: f64 = measured
        .iter()
        .zip(predicted)
        .map(|(&m, &p)| {
            assert!(m > 0.0 && p > 0.0, "ratios need positive data");
            (m / p).ln()
        })
        .sum();
    (s / measured.len() as f64).exp()
}

/// Format a `u64` with thin thousands separators for readability.
#[must_use]
pub fn fmt_u64(x: u64) -> String {
    let raw = x.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, ch) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

/// Shorthand for `f64` cells with fixed precision.
#[must_use]
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.row(vec!["8".into(), "100".into()]);
        t.row(vec!["1024".into(), "9".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("   n"));
        // All data lines equal length.
        let lines: Vec<&str> = r.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn loglog_fit_recovers_exponent() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let (slope, r2) = fit_loglog(&xs, &ys);
        assert!((slope - 1.5).abs() < 1e-9);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn loglog_fit_handles_noise() {
        let xs: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x.powi(2) * (1.0 + 0.01 * i as f64))
            .collect();
        let (slope, r2) = fit_loglog(&xs, &ys);
        assert!((slope - 2.0).abs() < 0.02);
        assert!(r2 > 0.999);
    }

    #[test]
    fn geomean_of_equal_series_is_one() {
        let a = [3.0, 5.0, 7.0];
        assert!((geomean_ratio(&a, &a) - 1.0).abs() < 1e-12);
        let doubled: Vec<f64> = a.iter().map(|x| 2.0 * x).collect();
        assert!((geomean_ratio(&doubled, &a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn u64_formatting() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1000), "1_000");
        assert_eq!(fmt_u64(1234567890), "1_234_567_890");
    }
}
