//! Regenerates the val_cycles experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    tcu_bench::experiments::val_cycles::run(quick);
}
