//! Regenerates the ep1_parallel experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    tcu_bench::experiment_main(tcu_bench::experiments::ep1_parallel::run);
}
