//! Regenerates the ep1_parallel experiment table (see DESIGN.md's index).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    tcu_bench::experiments::ep1_parallel::run(quick);
}
