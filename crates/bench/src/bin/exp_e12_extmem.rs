//! Regenerates the e12_extmem experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    tcu_bench::experiment_main(tcu_bench::experiments::e12_extmem::run);
}
