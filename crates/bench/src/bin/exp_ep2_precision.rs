//! Regenerates the ep2_precision experiment table (see DESIGN.md's index).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    tcu_bench::experiments::ep2_precision::run(quick);
}
