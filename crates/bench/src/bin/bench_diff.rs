//! Compare a freshly measured bench JSON (`BENCH_matmul.json` or
//! `BENCH_sched.json`) against the committed baseline and flag
//! regressions.
//!
//! Usage: `bench_diff <fresh.json> <baseline.json> [--threshold <pct>]
//! [--informational]`
//!
//! Three per-case metrics are diffed, each only when present in both
//! files (matched by case name):
//!
//! * `speedup_tiled` — the seed-kernel-vs-tiled-kernel ratio measured
//!   on the *same* machine in the same run, so the check is meaningful
//!   across hosts of different absolute speed. Regression = fresh ratio
//!   more than `threshold` percent *below* baseline.
//! * `speedup_parallel` — compared **only when both files were measured
//!   with the same `available_parallelism`**: a parallel-path ratio
//!   from a 1-core runner says nothing about a multi-core baseline, so
//!   mismatched core counts skip the comparison entirely rather than
//!   annotating noise.
//! * `speedup_wall` — gated only for thread-parallel cases (those
//!   emitted with `threads > 1`, i.e. `exp_sched`'s `parwave`
//!   `run_parallel` cases), and like `speedup_parallel` only when core
//!   counts match; otherwise an explicit "skipped (cores N vs M)" line
//!   is printed instead of a silent skip. Serial cases' wall ratios
//!   remain informational table columns, not gates.
//! * `plan_ms` — scheduler planning wall time (the `exp_sched` cases).
//!   Lower is better: regression = fresh time more than `threshold`
//!   percent *above* baseline. This is the gate that pins the
//!   bucketed-hazard-index + batched-merge planning cost (the all-pairs
//!   scan it replaced took ≈92 ms on the shared 1024-op case).
//! * `sched_efficiency` — for the `dataflow` cases only: the structural
//!   lower bound over the barrier-free placement's makespan. Lower is
//!   worse; a drop of more than 10% vs baseline fails **even in
//!   `--informational` mode**, because the number is pure simulation
//!   (no wall-clock noise) — a regression means the placement itself
//!   got worse, not the runner.
//!
//! Cases present in only one file (the CI smoke run sweeps fewer sizes
//! than the committed full run) are reported and skipped.
//!
//! Exit status is non-zero when any case regresses, unless
//! `--informational` is passed — the mode CI uses on small shared
//! runners, where wall-clock noise makes a hard gate counterproductive;
//! there the findings surface as GitHub warning annotations instead.

use std::process::ExitCode;

/// Serial scheduled cases whose wall-clock ratio is gated as an
/// *absolute floor* rather than a baseline-relative delta: ROADMAP item
/// 2's target is that the scheduled gauss/closure paths do not lose to
/// eager at the reference size, so a fresh recording below 1.0× fails
/// regardless of what the baseline said. Quick (CI smoke) runs sweep
/// smaller sizes and simply don't emit these case names, so the floor
/// only fires on full recordings.
const WALL_FLOOR_CASES: [&str; 2] = ["gauss d=256", "closure n=256"];
const WALL_FLOOR: f64 = 1.0;

/// Relative drop in the `dataflow` cases' `sched_efficiency` that fails
/// the diff. Deliberately tighter than the wall-clock `--threshold` and
/// never downgraded to informational: the metric is deterministic.
const EFFICIENCY_DROP_PCT: f64 = 10.0;

struct CaseSpeedup {
    name: String,
    speedup_tiled: Option<f64>,
    speedup_parallel: Option<f64>,
    /// Wall-clock speedup of the case's fast path over its reference.
    /// Gated only for thread-parallel cases (`threads > 1`), and only
    /// when core counts match — serial wall ratios stay informational.
    speedup_wall: Option<f64>,
    /// Worker threads the case ran with (`exp_sched`'s `parwave` cases
    /// emit > 1; absent or 1 marks a serial case).
    threads: Option<f64>,
    plan_ms: Option<f64>,
    /// Structural efficiency of the planned schedule; gated hard for
    /// the `dataflow` cases (see [`EFFICIENCY_DROP_PCT`]).
    sched_efficiency: Option<f64>,
}

impl CaseSpeedup {
    /// `true` when this case exercised real thread parallelism, making
    /// its wall-clock ratio a core-count-sensitive metric.
    fn is_parallel(&self) -> bool {
        self.threads.is_some_and(|t| t > 1.0)
    }
}

/// One parsed bench file: its cases plus the core count it ran with
/// (`available_parallelism`, falling back to the pre-PR-4 field
/// `host_threads` for older baselines).
struct BenchFile {
    cases: Vec<CaseSpeedup>,
    cores: Option<f64>,
}

/// Extract `(name, speedup_tiled)` pairs from the bench JSON. The file
/// is machine-written by `bench_matmul` with one case object per line,
/// so a line-oriented field scan is exact for it (no general JSON
/// parser needed — the workspace is dependency-free by design).
fn parse_file(text: &str) -> BenchFile {
    let mut cases = Vec::new();
    let mut cores = None;
    for line in text.lines() {
        if cores.is_none() {
            cores = field_num(line, "available_parallelism")
                .or_else(|| field_num(line, "host_threads"));
        }
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let speedup_tiled = field_num(line, "speedup_tiled");
        let plan_ms = field_num(line, "plan_ms").filter(|&ms| ms > 0.0);
        let speedup_wall = field_num(line, "speedup_wall");
        let threads = field_num(line, "threads");
        let sched_efficiency = field_num(line, "sched_efficiency");
        let parallel_wall = threads.is_some_and(|t| t > 1.0) && speedup_wall.is_some();
        let floor_gated = WALL_FLOOR_CASES.contains(&name.as_str()) && speedup_wall.is_some();
        let efficiency_gated = name.contains("dataflow") && sched_efficiency.is_some();
        if speedup_tiled.is_none()
            && plan_ms.is_none()
            && !parallel_wall
            && !floor_gated
            && !efficiency_gated
        {
            continue;
        }
        cases.push(CaseSpeedup {
            name,
            speedup_tiled,
            speedup_parallel: field_num(line, "speedup_parallel"),
            speedup_wall,
            threads,
            plan_ms,
            sched_efficiency,
        });
    }
    BenchFile { cases, cores }
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let tail = line.split(&format!("\"{key}\": \"")).nth(1)?;
    Some(tail.split('"').next()?.to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let tail = line.split(&format!("\"{key}\": ")).nth(1)?;
    tail.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let informational = args.iter().any(|a| a == "--informational");
    let mut threshold = 20.0f64;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--informational" => {}
            "--threshold" => {
                threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or(threshold);
            }
            _ => files.push(arg.clone()),
        }
    }
    let [fresh_path, base_path] = files.as_slice() else {
        eprintln!(
            "usage: bench_diff <fresh.json> <baseline.json> [--threshold <pct>] [--informational]"
        );
        return ExitCode::from(2);
    };

    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let fresh_file = parse_file(&read(fresh_path));
    let base_file = parse_file(&read(base_path));
    let (fresh, base) = (&fresh_file.cases, &base_file.cases);
    if fresh.is_empty() || base.is_empty() {
        eprintln!(
            "bench_diff: no cases parsed (fresh: {}, baseline: {})",
            fresh.len(),
            base.len()
        );
        return ExitCode::from(2);
    }
    let same_cores = match (fresh_file.cores, base_file.cores) {
        (Some(f), Some(b)) => f == b,
        _ => false,
    };
    if !same_cores {
        println!(
            "bench_diff: core counts differ (fresh {:?}, baseline {:?}); \
             parallel-path comparisons skipped",
            fresh_file.cores, base_file.cores
        );
    }

    let mut regressions = 0u32;
    // Regressions that fail the run even in `--informational` mode:
    // deterministic simulation metrics where "runner noise" is not a
    // possible explanation.
    let mut hard_regressions = 0u32;
    let mut compared = 0u32;
    // Absolute wall floors first: these don't need a baseline
    // counterpart — the contract is "scheduled must not lose to eager",
    // measured within the fresh run itself.
    for f in fresh {
        if !WALL_FLOOR_CASES.contains(&f.name.as_str()) {
            continue;
        }
        let Some(fw) = f.speedup_wall else { continue };
        compared += 1;
        let regressed = fw < WALL_FLOOR;
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "{:<20}  wall floor {fw:.2}x (must be >= {WALL_FLOOR:.2}x)  {verdict}",
            f.name
        );
        if regressed {
            regressions += 1;
            let level = if informational { "warning" } else { "error" };
            println!(
                "::{level}::bench {}: scheduled wall speedup {fw:.2}x is below the {WALL_FLOOR:.2}x \
                 floor (scheduled path must not lose to eager)",
                f.name
            );
        }
    }
    for f in fresh {
        let Some(b) = base.iter().find(|b| b.name == f.name) else {
            println!("{:<20}  fresh-only case, skipped", f.name);
            continue;
        };
        compared += 1;
        // (kind, fresh, baseline, higher_is_better, unit suffix)
        let mut checks: Vec<(&str, f64, f64, bool, &str)> = Vec::new();
        if let (Some(ft), Some(bt)) = (f.speedup_tiled, b.speedup_tiled) {
            checks.push(("tiled speedup", ft, bt, true, "x"));
        }
        let cores_note = || {
            let show = |c: Option<f64>| c.map_or_else(|| "?".to_string(), |v| format!("{v}"));
            format!(
                "skipped (cores {} vs {})",
                show(fresh_file.cores),
                show(base_file.cores)
            )
        };
        match (f.speedup_parallel, b.speedup_parallel) {
            (Some(fp), Some(bp)) if same_cores => {
                checks.push(("parallel speedup", fp, bp, true, "x"));
            }
            (Some(_), Some(_)) => {
                println!("{:<20}  parallel comparison {}", f.name, cores_note());
            }
            _ => {}
        }
        // Thread-parallel cases (exp_sched's `parwave`): their wall
        // ratio is the tentpole metric, gated exactly like any other
        // when the runner matches the baseline's core count.
        match (f.speedup_wall, b.speedup_wall) {
            (Some(fw), Some(bw)) if f.is_parallel() || b.is_parallel() => {
                if same_cores {
                    checks.push(("wall speedup", fw, bw, true, "x"));
                } else {
                    println!("{:<20}  wall speedup {}", f.name, cores_note());
                }
            }
            _ => {}
        }
        if let (Some(fp), Some(bp)) = (f.plan_ms, b.plan_ms) {
            checks.push(("plan time", fp, bp, false, "ms"));
        }
        // The dataflow cases' structural efficiency: pure simulation,
        // so it gates hard regardless of `--informational`.
        if f.name.contains("dataflow") {
            if let (Some(fe), Some(be)) = (f.sched_efficiency, b.sched_efficiency) {
                let delta_pct = (fe / be - 1.0) * 100.0;
                let regressed = delta_pct < -EFFICIENCY_DROP_PCT;
                let verdict = if regressed { "REGRESSED (hard)" } else { "ok" };
                println!(
                    "{:<20}  sched efficiency {fe:.3} vs baseline {be:.3}  ({delta_pct:+.1}%)  {verdict}",
                    f.name
                );
                if regressed {
                    hard_regressions += 1;
                    println!(
                        "::error::bench {}: dataflow sched_efficiency {fe:.3} dropped {:.1}% \
                         below the committed baseline {be:.3} (hard limit \
                         {EFFICIENCY_DROP_PCT}%; this metric is deterministic — the placement \
                         regressed, not the runner)",
                        f.name,
                        delta_pct.abs()
                    );
                }
            }
        }
        for (kind, fs, bs, higher_better, unit) in checks {
            let delta_pct = (fs / bs - 1.0) * 100.0;
            let regressed = if higher_better {
                delta_pct < -threshold
            } else {
                delta_pct > threshold
            };
            let verdict = if regressed { "REGRESSED" } else { "ok" };
            println!(
                "{:<20}  {kind} {fs:.2}{unit} vs baseline {bs:.2}{unit}  ({delta_pct:+.1}%)  {verdict}",
                f.name
            );
            if regressed {
                regressions += 1;
                // GitHub annotation: warning in informational mode, error
                // when the gate is hard.
                let level = if informational { "warning" } else { "error" };
                let dir = if higher_better { "below" } else { "above" };
                println!(
                    "::{level}::bench {}: {kind} {fs:.2}{unit} moved {:.1}% {dir} the committed \
                     baseline {bs:.2}{unit} (threshold {threshold}%)",
                    f.name,
                    delta_pct.abs()
                );
            }
        }
    }
    for b in base {
        if !fresh.iter().any(|f| f.name == b.name) {
            println!("{:<20}  baseline-only case, skipped", b.name);
        }
    }
    println!(
        "bench_diff: {compared} case(s) compared, {} regression(s) ({hard_regressions} hard), \
         threshold {threshold}%{}",
        regressions + hard_regressions,
        if informational {
            " (informational)"
        } else {
            ""
        }
    );
    if compared == 0 {
        // No overlap means the gate checked nothing — a case rename or
        // sweep change, not noise, so it fails even in informational mode.
        println!("::error::bench_diff compared zero cases: fresh and baseline share no case names");
        return ExitCode::from(2);
    }
    if hard_regressions > 0 || (regressions > 0 && !informational) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
