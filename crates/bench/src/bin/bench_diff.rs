//! Compare a freshly measured `BENCH_matmul.json` against the committed
//! baseline and flag speedup regressions.
//!
//! Usage: `bench_diff <fresh.json> <baseline.json> [--threshold <pct>]
//! [--informational]`
//!
//! Comparison is on `speedup_tiled` per case (matched by name): the
//! seed-kernel-vs-tiled-kernel ratio measured on the *same* machine in
//! the same run, so the check is meaningful across hosts of different
//! absolute speed. Cases present in only one file (the CI smoke run
//! sweeps fewer sizes than the committed full run) are reported and
//! skipped. A case regresses when its fresh speedup falls more than
//! `threshold` percent (default 20) below the baseline's.
//!
//! Exit status is non-zero when any case regresses, unless
//! `--informational` is passed — the mode CI uses on small shared
//! runners, where wall-clock noise makes a hard gate counterproductive;
//! there the findings surface as GitHub warning annotations instead.

use std::process::ExitCode;

struct CaseSpeedup {
    name: String,
    speedup_tiled: f64,
}

/// Extract `(name, speedup_tiled)` pairs from the bench JSON. The file
/// is machine-written by `bench_matmul` with one case object per line,
/// so a line-oriented field scan is exact for it (no general JSON
/// parser needed — the workspace is dependency-free by design).
fn parse_cases(text: &str) -> Vec<CaseSpeedup> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(speedup_tiled) = field_num(line, "speedup_tiled") else {
            continue;
        };
        out.push(CaseSpeedup {
            name,
            speedup_tiled,
        });
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let tail = line.split(&format!("\"{key}\": \"")).nth(1)?;
    Some(tail.split('"').next()?.to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let tail = line.split(&format!("\"{key}\": ")).nth(1)?;
    tail.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let informational = args.iter().any(|a| a == "--informational");
    let mut threshold = 20.0f64;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--informational" => {}
            "--threshold" => {
                threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or(threshold);
            }
            _ => files.push(arg.clone()),
        }
    }
    let [fresh_path, base_path] = files.as_slice() else {
        eprintln!(
            "usage: bench_diff <fresh.json> <baseline.json> [--threshold <pct>] [--informational]"
        );
        return ExitCode::from(2);
    };

    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let fresh = parse_cases(&read(fresh_path));
    let base = parse_cases(&read(base_path));
    if fresh.is_empty() || base.is_empty() {
        eprintln!(
            "bench_diff: no cases parsed (fresh: {}, baseline: {})",
            fresh.len(),
            base.len()
        );
        return ExitCode::from(2);
    }

    let mut regressions = 0u32;
    let mut compared = 0u32;
    for f in &fresh {
        let Some(b) = base.iter().find(|b| b.name == f.name) else {
            println!("{:<20}  fresh-only case, skipped", f.name);
            continue;
        };
        compared += 1;
        let delta_pct = (f.speedup_tiled / b.speedup_tiled - 1.0) * 100.0;
        let regressed = delta_pct < -threshold;
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "{:<20}  speedup {:.2}x vs baseline {:.2}x  ({:+.1}%)  {verdict}",
            f.name, f.speedup_tiled, b.speedup_tiled, delta_pct
        );
        if regressed {
            regressions += 1;
            // GitHub annotation: warning in informational mode, error
            // when the gate is hard.
            let level = if informational { "warning" } else { "error" };
            println!(
                "::{level}::bench {}: tiled speedup {:.2}x fell {:.1}% below the committed \
                 baseline {:.2}x (threshold {threshold}%)",
                f.name, f.speedup_tiled, -delta_pct, b.speedup_tiled
            );
        }
    }
    for b in &base {
        if !fresh.iter().any(|f| f.name == b.name) {
            println!("{:<20}  baseline-only case, skipped", b.name);
        }
    }
    println!(
        "bench_diff: {compared} case(s) compared, {regressions} regression(s), threshold {threshold}%{}",
        if informational { " (informational)" } else { "" }
    );
    if compared == 0 {
        // No overlap means the gate checked nothing — a case rename or
        // sweep change, not noise, so it fails even in informational mode.
        println!("::error::bench_diff compared zero cases: fresh and baseline share no case names");
        return ExitCode::from(2);
    }
    if regressions > 0 && !informational {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
